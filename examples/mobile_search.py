"""The mobile interface flow (paper §4, Figures 2–4).

A user opens the mobile web interface near the Mole Antonelliana. The
search box is AJAX-debounced (2 seconds after the last keystroke); each
fired query shows candidate LOD resources; tapping a result lists the
associated content; tapping "About" renders the LOD mashup — city
abstract, nearby restaurants, tourist attractions and other UGC.

Run with::

    python examples/mobile_search.py
"""

from repro.core import run_mashup
from repro.platform import (
    Capture,
    Debouncer,
    Platform,
    SearchInterface,
)
from repro.sparql import Point
from repro.workloads import WorkloadConfig, generate_workload, \
    populate_platform

USER_POSITION = Point(7.6931, 45.0691)  # standing by the Mole


def main() -> None:
    platform = Platform()
    workload = generate_workload(
        WorkloadConfig(n_users=6, n_contents=40, cities=("Turin",),
                       seed=7)
    )
    populate_platform(platform, workload)
    platform.semanticize()
    search = SearchInterface(platform.union_graph(), platform.contents())

    # --- Figure 2: the search box, with geolocation ---------------------
    print("mobile interface opened; location acquired:",
          USER_POSITION.wkt())

    # --- the 2-second AJAX debounce ---------------------------------------
    debouncer = Debouncer()
    keystrokes = [("m", 0.0), ("mo", 0.4), ("mol", 0.8), ("mole", 1.2)]
    for text, at in keystrokes:
        debouncer.keystroke(text, at)
    query = debouncer.poll(3.3)  # 2.1s after the last keystroke
    print(f"\nquery fired after debounce: {query!r}")

    # --- Figure 3: candidate results --------------------------------------
    suggestions = search.suggest(query, user_point=USER_POSITION,
                                 limit=5)
    print("candidate resources:")
    for suggestion in suggestions:
        print(f"  {suggestion.label:30s} {suggestion.resource}")

    # --- Figure 4: content list for the selected resource ------------------
    selected = suggestions[0]
    print(f"\nselected: {selected.label}")
    items = search.content_for_resource(selected.resource,
                                        radius_km=0.3)
    print(f"{len(items)} associated content item(s):")
    for item in items[:5]:
        print(f"  #{item.pid} {item.title!r} by {item.owner}")

    # --- the About button: the LOD mashup ----------------------------------
    if items:
        pid = items[0].pid
        print(f"\n[About] mashup for content #{pid}:")
        view = run_mashup(platform.evaluator(), pid=pid, language="it")
        for kind in ("city", "restaurant", "tourism", "ugc"):
            sections = view[kind]
            if not sections:
                continue
            print(f"  {kind}:")
            for section in sections:
                line = f"    {section.label}"
                if section.description:
                    line += f" — {section.description[:60]}"
                print(line)


if __name__ == "__main__":
    main()
