"""Semanticizing the relational database (paper §2.1).

Shows the D2R-style lifting step by step: the Coppermine-like relational
schema, the mapping (table → class, PK → URI, column → predicate,
FK → object property), the space-separated keyword column split into one
triple per keyword (§2.1.1), and SPARQL running over the resulting dump.

Run with::

    python examples/lodify_dump.py
"""

from repro.d2r import dump_graph, dump_ntriples
from repro.platform import Capture, Platform
from repro.sparql import Evaluator
from repro.sparql.geo import Point


def main() -> None:
    platform = Platform()
    platform.register_user("oscar", "Oscar Rodriguez")
    platform.register_user("walter", "Walter Goix")
    platform.add_friendship("oscar", "walter")
    platform.upload(Capture(
        username="walter",
        title="Coliseum interior",
        tags=("coliseum", "rome", "ancient"),
        timestamp=1_325_376_000,
        point=Point(12.4924, 41.8902),
    ))

    print("relational rows")
    print("-" * 60)
    for table in ("users", "pictures", "friends"):
        print(f"[{table}]")
        for row in platform.db.table(table).scan():
            print("  ", row)

    print("\nD2R dump (N-Triples, truncated)")
    print("-" * 60)
    dump = platform.dump_ntriples()
    for line in dump.splitlines()[:18]:
        print(line)
    print(f"... {len(dump.splitlines())} triples total")

    # the keyword column produced one triple per keyword
    graph = dump_graph(platform.db, platform.mapping)
    evaluator = Evaluator(graph)
    result = evaluator.evaluate("""
        PREFIX tlv: <http://beta.teamlife.it/vocab#>
        SELECT ?pic ?kw WHERE { ?pic tlv:keyword ?kw } ORDER BY ?kw
    """)
    print("\nper-keyword triples (§2.1.1):")
    for row in result:
        print(f"  {row['pic']} -> {row['kw'].lexical!r}")

    # cross-table information became foaf:knows links
    result = evaluator.evaluate("""
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        SELECT ?a ?b WHERE { ?a foaf:knows ?b } ORDER BY ?a
    """)
    print("\nfriendships as foaf:knows:")
    for row in result:
        print(f"  {row['a']} knows {row['b']}")


if __name__ == "__main__":
    main()
