"""Quickstart: share a photo, LODify it, retrieve it semantically.

Run with::

    python examples/quickstart.py
"""

from repro.core import geo_album
from repro.platform import Capture, Platform
from repro.sparql import Point

NEAR_MOLE = Point(7.6930, 45.0690)  # a few meters from the monument


def main() -> None:
    # 1. The platform, backed by the synthetic LOD corpus
    #    (DBpedia + Geonames + LinkedGeoData).
    platform = Platform()
    platform.register_user("walter", "Walter Goix")

    # 2. A mobile capture: title, tags, timestamp, GPS.
    item = platform.upload(
        Capture(
            username="walter",
            title="Tramonto sulla Mole Antonelliana",
            tags=("mole", "tramonto"),
            timestamp=1_325_376_000,
            point=NEAR_MOLE,
        )
    )
    print(f"uploaded content #{item.pid}: {item.title!r}")
    print("context tags:", ", ".join(item.context_tags))

    # 3. LODify: D2R lifting + automatic semantic annotation.
    platform.semanticize()
    result = platform.annotation_result(item.pid)
    print(f"\ndetected language: {result.language}")
    for annotation in result.annotations:
        print(
            f"annotated {annotation.word!r} -> {annotation.resource} "
            f"({annotation.graph})"
        )

    # 4. Retrieve through a semantic virtual album (the paper's query 1).
    album = geo_album("Mole Antonelliana", radius_km=0.3)
    links = album.links(platform.evaluator())
    print(f"\nvirtual album '{album.name}': {len(links)} item(s)")
    for link in links:
        print("  ", link)


if __name__ == "__main__":
    main()
