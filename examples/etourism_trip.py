"""The paper's eTourism scenario, end to end.

Three users spend a day in Turin. Their photos are contextualized,
automatically annotated against Linked Open Data, and then retrieved
through the three semantic virtual albums of §2.3 — including the
social and rating filters — exactly as the paper walks through them.

Run with::

    python examples/etourism_trip.py
"""

from repro.core import geo_album, rated_album, social_album
from repro.platform import Capture, Platform
from repro.sparql import Point

NEAR_MOLE = Point(7.6930, 45.0690)
NEAR_MOLE_2 = Point(7.6938, 45.0695)
PERIPHERY = Point(7.6500, 45.0300)


def show_pipeline(platform: Platform, pid: int) -> None:
    """Print the Figure 1 pipeline stages for one content."""
    result = platform.annotation_result(pid)
    print(f"  title      : {result.title!r}")
    print(f"  language   : {result.language}")
    print(f"  NP lemmas  : {result.np_lemmas}")
    print(f"  tf words   : {result.frequency_words}")
    print(f"  word list  : {result.words}")
    for word in result.words:
        outcome = result.outcome_for(word)
        if outcome is None:
            continue
        if outcome.annotated:
            print(f"    {word!r} -> {outcome.chosen.resource} "
                  f"[{outcome.chosen.graph}]")
        else:
            print(f"    {word!r} -> ({outcome.reason.value})")


def main() -> None:
    platform = Platform()
    platform.register_user("oscar", "Oscar Rodriguez")
    platform.register_user("walter", "Walter Goix")
    platform.register_user("carmen", "Carmen Criminisi")
    platform.add_friendship("oscar", "walter")

    uploads = [
        Capture("walter", "Tramonto sulla Mole Antonelliana",
                ("mole", "tramonto"), 1_325_376_000, NEAR_MOLE),
        Capture("carmen", "Mole Antonelliana by night",
                ("night",), 1_325_376_600, NEAR_MOLE_2),
        Capture("walter", "periferia di Torino", (),
                1_325_380_000, PERIPHERY),
        Capture("walter", "another Mole picture", ("mole",),
                1_325_390_000, NEAR_MOLE),
    ]
    for capture in uploads:
        platform.upload(capture)
    for pid, rating in ((1, 5.0), (2, 3.0), (3, 4.0), (4, 2.0)):
        platform.rate(pid, rating)

    platform.semanticize()

    print("=" * 70)
    print("Automatic semantic annotation (Figure 1 pipeline)")
    print("=" * 70)
    for item in platform.contents():
        print(f"\ncontent #{item.pid} by {item.owner}")
        show_pipeline(platform, item.pid)

    evaluator = platform.evaluator()
    print("\n" + "=" * 70)
    print("Semantic virtual albums (§2.3)")
    print("=" * 70)

    q1 = geo_album("Mole Antonelliana", radius_km=0.3)
    print(f"\n[Q1] {q1.name}")
    for link in q1.links(evaluator):
        print("   ", link)

    q2 = social_album("Mole Antonelliana", friend_of="oscar")
    print(f"\n[Q2] {q2.name}")
    for link in q2.links(evaluator):
        print("   ", link)

    q3 = rated_album("Mole Antonelliana", friend_of="oscar")
    print(f"\n[Q3] {q3.name} (rating-ordered)")
    for row in q3.fetch(evaluator):
        print(f"    {row['link'].lexical}  rating={row['points'].value}")


if __name__ == "__main__":
    main()
