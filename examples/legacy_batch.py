"""Batch-annotating legacy content + the human-in-the-loop extensions.

The paper's conclusion: "there's a huge amount of content already
present in our platform that remains to be semantically annotated.
Solving this issue requires to create and introduce new automatic batch
processing mechanisms. As the user-assisted disambiguation is not used,
it becomes more challenging to guarantee the right semantical meaning
extraction."

This example runs the batch annotator over a legacy back catalog with a
progress checkpoint, routes the ambiguous leftovers through the
user-assisted disambiguator, and shows sparqlPuSH notifying a watcher as
the batch lands new annotations in the store.

Run with::

    python examples/legacy_batch.py
"""

from repro.core import (
    BatchAnnotator,
    Reason,
    UserAssistedDisambiguator,
)
from repro.platform import Capture, Platform, SparqlPushService
from repro.sparql import Point
from repro.workloads import WorkloadConfig, generate_workload, \
    populate_platform


def main() -> None:
    # a platform with a legacy back catalog of 60 items
    platform = Platform()
    workload = generate_workload(
        WorkloadConfig(n_users=8, n_contents=60, cities=("Turin",),
                       seed=21)
    )
    populate_platform(platform, workload)
    # plus a genuinely ambiguous legacy item: the bare tag "mole" can be
    # the Turin monument, the animal or the disambiguation page
    platform.upload(Capture(
        username=workload.usernames[0],
        title="that famous building",
        tags=("mole",),
        timestamp=1_330_000_000,
        point=Point(7.6934, 45.0692),
    ))

    # a watcher subscribes to "content annotated with anything" updates
    from repro.rdf import Graph

    target = Graph()
    push = SparqlPushService(target)
    sub_id = push.register(
        "PREFIX dcterms: <http://purl.org/dc/terms/> "
        "SELECT ?pic ?concept WHERE "
        "{ ?pic dcterms:subject ?concept }"
    )
    notifications = []
    push.listen(sub_id, "curator",
                lambda topic, payload: notifications.append(payload))

    # run the batch in chunks of 20 with checkpointing
    batch = BatchAnnotator(
        platform, target, batch_size=20,
        on_progress=lambda cp: (
            push.notify_update(),
            print(f"  checkpoint: pid {cp.last_pid}, "
                  f"{cp.stats.annotated} annotated, "
                  f"{cp.stats.triples_added} triples"),
        ),
    )
    print("batch run #1 (first 30 items):")
    batch.run(max_items=30)
    print("batch run #2 (resume to completion):")
    batch.run()
    stats = batch.checkpoint.stats
    print(f"done: {stats.processed} processed, "
          f"{stats.annotated} annotated, {stats.failed} failed")
    print(f"curator received {len(notifications)} push notification(s)")

    # route ambiguous outcomes through user-assisted disambiguation
    disambiguator = UserAssistedDisambiguator()
    ambiguous = []
    for item in platform.contents():
        result = platform.annotator.annotate(item.title,
                                             item.plain_tags)
        for word, outcome in result.outcomes.items():
            if outcome.reason is Reason.AMBIGUOUS:
                ambiguous.append(outcome)
    print(f"\n{len(ambiguous)} ambiguous word(s) need a human:")
    for outcome in ambiguous[:3]:
        prompt = disambiguator.prompt_for(outcome)
        print(f"  {prompt.word!r}: {prompt.option_labels()}")
        # the user picks the first option; future runs auto-resolve
        disambiguator.record_choice(
            prompt.word, prompt.options[0].resource
        )
        resolved = disambiguator.resolve(outcome)
        print(f"    -> learned, now resolves to "
              f"{resolved.chosen.resource}")


if __name__ == "__main__":
    main()
