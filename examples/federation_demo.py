"""The federated architecture of §6: two family home servers.

The Rossi family and the Goix family each run the platform on a NAS in
their home network. Oscar Rossi follows Walter Goix across networks
(WebFinger discovery + PubSubHubbub subscription); Walter's holiday
pictures appear near-instantly on the Rossi home timeline and on the
living-room photo frame; Oscar's comment swims upstream via Salmon.

Run with::

    python examples/federation_demo.py
"""

from repro.federation import Federation, PhotoFrame


def main() -> None:
    federation = Federation()

    rossi = federation.create_node("rossi.example.net", b"rossi-secret")
    rossi.add_member("oscar", "Oscar Rossi")
    rossi.add_member("anna", "Anna Rossi")

    goix = federation.create_node("goix.example.org", b"goix-secret")
    goix.add_member("walter", "Walter Goix")

    # WebFinger discovery and identity validation
    descriptor = federation.directory.lookup(
        "acct:walter@goix.example.org"
    )
    print("discovered:", descriptor.subject)
    for rel, href in descriptor.links.items():
        print(f"  {rel}: {href}")

    # Cross-network following (hub subscription with verification)
    rossi.follow("oscar", "acct:walter@goix.example.org")
    print("\noscar now follows:", rossi.follows("oscar"))

    # The living-room photo frame discovers the Rossi media server and
    # subscribes to walter's feed for real-time updates
    frame = PhotoFrame(federation.ssdp)
    federation.hub.subscribe(
        "livingroom-frame", goix.topic("walter"),
        frame.on_new_content, verify=lambda c: c,
    )

    # Walter publishes from his holidays
    pic1 = goix.publish("walter", "Spiaggia al tramonto",
                        "http://goix.example.org/m/1.jpg", 1000)
    goix.publish("walter", "Cena di pesce",
                 "http://goix.example.org/m/2.jpg", 1100)

    print("\nrossi home timeline:")
    for activity in rossi.home_timeline():
        print(f"  {activity.published}: {activity.actor} "
              f"{activity.verb} {activity.summary!r}")

    print("\nphoto frame slideshow:", frame.slideshow)

    # Oscar comments; the slap swims upstream to the Goix node
    rossi.comment("oscar", pic1.url, "Che meraviglia!", 1200)
    comments = goix.content(pic1.url).comments
    print(f"\ncomments on {pic1.url}:")
    for slap in comments:
        print(f"  {slap.author}: {slap.content!r}")

    # OEmbed lets other sites embed the picture
    embed = goix.oembed(pic1.url)
    print("\noembed html:", embed["html"])

    # FOAF profile documents expose the cross-network relationships
    print("\nrossi FOAF document (turtle):")
    print(rossi.foaf_graph().serialize("turtle"))


if __name__ == "__main__":
    main()
