"""FIG23 — incremental mobile search (Figures 2–3).

The AJAX search box fires one suggestion query per debounce window; we
measure suggestion latency per prefix length (the user typing "t", "tu",
"tur", ... as in the paper's "Turin" walkthrough), with and without the
geographic ranking the mobile interface applies.
"""

from __future__ import annotations

import pytest

from repro.platform import SearchInterface
from repro.sparql.geo import Point

USER_POSITION = Point(7.6931, 45.0691)
PREFIXES = ["t", "tu", "tur", "turi", "turin"]


@pytest.fixture(scope="module")
def search(small_platform):
    return SearchInterface(
        small_platform.union_graph(), small_platform.contents()
    )


def bench_suggest_prefix_series(benchmark, search):
    """The full typing session: one query per prefix."""

    def run():
        return [search.suggest(p, limit=10) for p in PREFIXES]

    results = benchmark(run)
    benchmark.extra_info["candidates_per_prefix"] = {
        p: len(r) for p, r in zip(PREFIXES, results)
    }
    # "Turin" must be suggested once the prefix is long enough
    assert any("Turin" in s.label for s in results[-1])


def bench_suggest_with_geo_ranking(benchmark, search):
    def run():
        return search.suggest(
            "mole", user_point=USER_POSITION, limit=10
        )

    suggestions = benchmark(run)
    assert suggestions
    assert any("Mole" in s.label for s in suggestions[:3])


def bench_content_for_selected_resource(benchmark, search,
                                        small_platform):
    """Figure 4's list view: content associated to the tapped result."""
    from repro.rdf import DBPR

    items = benchmark(
        lambda: search.content_for_resource(
            DBPR.Mole_Antonelliana, radius_km=0.3
        )
    )
    benchmark.extra_info["associated_items"] = len(items)


def bench_index_construction(benchmark, small_platform):
    """Cost of (re)building the label index after a store update."""

    def run():
        return SearchInterface(
            small_platform.union_graph(), small_platform.contents()
        )

    benchmark(run)
