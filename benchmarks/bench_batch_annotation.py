"""BATCH — legacy-content batch annotation throughput (paper §6).

The paper's conclusion calls for "automatic batch processing mechanisms"
to annotate the back catalog. We measure batch throughput at three
catalog sizes and the checkpoint/resume overhead.
"""

from __future__ import annotations

import pytest

from repro.core import BatchAnnotator
from repro.rdf import Graph


def bench_batch_throughput(benchmark, sized_platform):
    size, platform = sized_platform

    def run():
        batch = BatchAnnotator(platform, Graph(), batch_size=100)
        return batch.run()

    stats = benchmark(run)
    benchmark.extra_info["contents"] = size
    benchmark.extra_info["annotated"] = stats.annotated
    benchmark.extra_info["triples"] = stats.triples_added
    assert stats.failed == 0


def bench_batch_resume_overhead(benchmark, small_platform):
    """Running in two halves must cost about the same as one pass; the
    checkpoint bookkeeping is the delta being measured."""

    def run():
        batch = BatchAnnotator(small_platform, Graph(), batch_size=10)
        batch.run(max_items=50)
        return batch.run()

    stats = benchmark(run)
    assert stats.processed == 100
