"""BATCH — legacy-content batch annotation throughput (paper §6).

The paper's conclusion calls for "automatic batch processing mechanisms"
to annotate the back catalog. We measure batch throughput at three
catalog sizes, the checkpoint/resume overhead, and the parallel
speedup: with a 5 ms simulated latency on the DBpedia resolver (the
hot term resolver — every word hits it), a 4-worker run must beat the
sequential one by >= 2x while producing the identical triple set.
"""

from __future__ import annotations

import time

import pytest

from _harness import record
from repro.core import BatchAnnotator
from repro.core.annotator import SemanticAnnotator
from repro.core.filtering import SemanticFilter
from repro.lod import build_lod_corpus
from repro.platform import Platform
from repro.rdf import Graph
from repro.resolvers import (
    FlakyResolver,
    SemanticBroker,
    default_resolvers,
)
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    populate_platform,
)


def bench_batch_throughput(benchmark, sized_platform):
    size, platform = sized_platform

    def run():
        batch = BatchAnnotator(platform, Graph(), batch_size=100)
        return batch.run()

    stats = benchmark(run)
    benchmark.extra_info["contents"] = size
    benchmark.extra_info["annotated"] = stats.annotated
    benchmark.extra_info["triples"] = stats.triples_added
    assert stats.failed == 0


def bench_batch_resume_overhead(benchmark, small_platform):
    """Running in two halves must cost about the same as one pass; the
    checkpoint bookkeeping is the delta being measured."""

    def run():
        batch = BatchAnnotator(small_platform, Graph(), batch_size=10)
        batch.run(max_items=50)
        return batch.run()

    stats = benchmark(run)
    assert stats.processed == 100


@pytest.fixture(scope="module")
def latency_platform():
    """A 500-item catalog whose DBpedia resolver sleeps 5 ms per call —
    the simulated remote LOD endpoint of the speedup guard."""
    platform = Platform()
    workload = generate_workload(WorkloadConfig(
        n_users=10, n_contents=500, cities=("Turin",), seed=7,
    ))
    populate_platform(platform, workload)
    corpus = build_lod_corpus()
    resolvers = [
        FlakyResolver(r, failure_rate=0.0, latency=0.005)
        if r.name == "dbpedia" else r
        for r in default_resolvers(corpus)
    ]
    platform.annotator = SemanticAnnotator(
        SemanticBroker(resolvers), SemanticFilter(corpus)
    )
    return platform


def bench_batch_parallel_speedup(benchmark, latency_platform):
    """4 workers must be >= 2x faster than sequential on 500 items with
    5 ms simulated resolver latency — and triple-identical."""

    def timed_run(workers):
        target = Graph()
        batch = BatchAnnotator(
            latency_platform, target, batch_size=100, workers=workers
        )
        start = time.perf_counter()
        stats = batch.run()
        return (time.perf_counter() - start) * 1000.0, stats, target

    sequential_ms, seq_stats, seq_graph = timed_run(1)
    parallel_ms, par_stats, par_graph = timed_run(4)

    assert seq_stats.summary() == par_stats.summary()
    assert seq_stats.failed == 0
    assert set(seq_graph) == set(par_graph)
    assert len(seq_graph) == len(par_graph)

    benchmark.extra_info["contents"] = 500
    benchmark.extra_info["sequential_ms"] = round(sequential_ms, 1)
    benchmark.extra_info["parallel_ms"] = round(parallel_ms, 1)
    benchmark.extra_info["speedup"] = round(
        sequential_ms / parallel_ms, 2
    )
    record(
        "batch_parallel_speedup",
        [parallel_ms],
        extra={
            "contents": 500,
            "workers": 4,
            "sequential_ms": round(sequential_ms, 1),
            "speedup": round(sequential_ms / parallel_ms, 2),
        },
    )
    assert sequential_ms >= 2.0 * parallel_ms, (
        f"batch at 500 items: parallel {parallel_ms:.0f} ms vs "
        f"sequential {sequential_ms:.0f} ms — speedup below the 2x bar"
    )

    benchmark.pedantic(
        lambda: timed_run(4)[1], rounds=1, iterations=1
    )


def bench_batch_fault_degradation(benchmark, latency_platform):
    """With DBpedia failing 100% of calls behind the resilience layer,
    the batch still annotates everything the healthy resolvers can."""
    corpus = build_lod_corpus()
    from repro.resolvers.resilience import RetryPolicy, wrap_resilient

    resolvers = [
        FlakyResolver(r, failure_rate=1.0, seed=3)
        if r.name == "dbpedia" else r
        for r in default_resolvers(corpus)
    ]
    resolvers = wrap_resilient(
        resolvers,
        retry=RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0),
        reset_timeout=3600.0,
    )
    platform = Platform()
    workload = generate_workload(WorkloadConfig(
        n_users=10, n_contents=100, cities=("Turin",), seed=7,
    ))
    populate_platform(platform, workload)
    platform.annotator = SemanticAnnotator(
        SemanticBroker(resolvers), SemanticFilter(corpus)
    )

    def run():
        batch = BatchAnnotator(
            platform, Graph(), batch_size=50, workers=4
        )
        return batch.run()

    stats = benchmark(run)
    assert stats.failed == 0  # no exception escapes a single item
    assert stats.processed == 100
    assert stats.annotated > 0  # healthy resolvers still deliver
    benchmark.extra_info["degraded_items"] = stats.degraded_items
    benchmark.extra_info["breaker_trips"] = stats.breaker_trips
    benchmark.extra_info["annotated"] = stats.annotated


def bench_sanitizer_overhead(benchmark, small_platform):
    """A *disabled* lock sanitizer must be free: its ``installed()``
    context patches nothing, so batch annotation inside it must stay
    within 1.10x of the plain run.  The enabled-mode cost is recorded
    for the history but not gated — it is a debug/CI tool, not a
    production default."""
    from repro.analysis.sanitizer import LockSanitizer

    def timed_run(sanitizer=None):
        start = time.perf_counter()
        if sanitizer is None:
            stats = BatchAnnotator(
                small_platform, Graph(), batch_size=25, workers=4
            ).run()
        else:
            with sanitizer.installed():
                stats = BatchAnnotator(
                    small_platform, Graph(), batch_size=25, workers=4
                ).run()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert stats.failed == 0
        return elapsed_ms

    timed_run()  # warm caches before any timed sample
    rounds = 5
    plain = [timed_run() for _ in range(rounds)]
    disabled = [
        timed_run(LockSanitizer(enabled=False)) for _ in range(rounds)
    ]
    enabled = [
        timed_run(LockSanitizer(long_hold_threshold=None))
        for _ in range(rounds)
    ]

    import statistics

    plain_ms = statistics.median(plain)
    disabled_ms = statistics.median(disabled)
    enabled_ms = statistics.median(enabled)
    # small absolute floor keeps the ratio meaningful on very fast runs
    ratio = disabled_ms / max(plain_ms, 1.0)

    benchmark.extra_info["plain_ms"] = round(plain_ms, 1)
    benchmark.extra_info["disabled_ms"] = round(disabled_ms, 1)
    benchmark.extra_info["enabled_ms"] = round(enabled_ms, 1)
    benchmark.extra_info["disabled_ratio"] = round(ratio, 3)
    record(
        "sanitizer_overhead",
        disabled,
        extra={
            "plain_ms": round(plain_ms, 1),
            "enabled_ms": round(enabled_ms, 1),
            "disabled_ratio": round(ratio, 3),
        },
    )
    assert ratio <= 1.10, (
        f"disabled sanitizer costs {ratio:.2f}x over plain "
        f"({disabled_ms:.0f} ms vs {plain_ms:.0f} ms)"
    )

    benchmark.pedantic(timed_run, rounds=1, iterations=1)
