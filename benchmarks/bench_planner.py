"""Planner ablation: Q1-Q3 with the static optimizer on vs. off.

Every benchmark first asserts that the optimized and naive paths return
byte-identical result rows, then times one of the two. At the largest
workload size the Q3 guard additionally requires the optimized path to
be at least 2x faster than the naive one — the planner must pay for
itself where it matters.
"""

from __future__ import annotations

import pytest

from _harness import record, timed_samples
from repro.core import geo_album, rated_album, social_album
from repro.sparql import Evaluator

ALBUMS = [
    pytest.param("Q1", geo_album, id="Q1"),
    pytest.param("Q2", social_album, id="Q2"),
    pytest.param("Q3", rated_album, id="Q3"),
]


def _rows(result):
    return sorted(
        tuple(sorted((str(k), str(v)) for k, v in row.items()))
        for row in result
    )


def _prime(graph):
    """Collect the statistics snapshot outside the timed region."""
    Evaluator(graph)._statistics()


@pytest.mark.parametrize("optimize", [True, False],
                         ids=["opt", "naive"])
@pytest.mark.parametrize("name,album", ALBUMS)
def bench_planner_query(benchmark, sized_union_graph, name, album,
                        optimize):
    size, graph = sized_union_graph
    _prime(graph)
    text = album().query
    evaluator = Evaluator(graph, optimize=optimize)
    reference = Evaluator(graph, optimize=not optimize)
    assert _rows(evaluator.evaluate(text)) == _rows(
        reference.evaluate(text)
    )

    result = benchmark(lambda: evaluator.evaluate(text))

    benchmark.extra_info["contents"] = size
    benchmark.extra_info["query"] = name
    benchmark.extra_info["optimize"] = optimize
    benchmark.extra_info["rows"] = len(result)


def bench_q3_speedup_guard(benchmark, sized_union_graph):
    """At 5000 contents Q3 must run >= 2x faster optimized."""
    size, graph = sized_union_graph
    _prime(graph)
    text = rated_album().query
    optimized = Evaluator(graph, optimize=True)
    naive = Evaluator(graph, optimize=False)

    opt_rows = optimized.evaluate(text)
    naive_rows = naive.evaluate(text)
    assert _rows(opt_rows) == _rows(naive_rows)
    # ORDER BY DESC(?points): the rating sequences must match (ties may
    # order differently between the two paths; both sorts are stable
    # over their own row production order)
    assert (
        [r["points"].value for r in opt_rows]
        == [r["points"].value for r in naive_rows]
    )

    opt_samples = timed_samples(
        lambda: optimized.evaluate(text), repeats=3
    )
    naive_samples = timed_samples(
        lambda: naive.evaluate(text), repeats=3
    )
    opt_ms = sorted(opt_samples)[len(opt_samples) // 2]
    naive_ms = sorted(naive_samples)[len(naive_samples) // 2]
    benchmark.extra_info["contents"] = size
    benchmark.extra_info["optimized_ms"] = round(opt_ms, 2)
    benchmark.extra_info["naive_ms"] = round(naive_ms, 2)
    record(
        f"planner_q3_n{size}",
        opt_samples,
        extra={
            "contents": size,
            "naive_median_ms": round(naive_ms, 2),
            "speedup": round(naive_ms / max(opt_ms, 1e-9), 2),
        },
    )
    if size >= 5000:
        assert naive_ms >= 2.0 * opt_ms, (
            f"Q3 at {size}: optimized {opt_ms:.1f} ms vs naive "
            f"{naive_ms:.1f} ms — speedup below the 2x bar"
        )

    benchmark(lambda: optimized.evaluate(text))
