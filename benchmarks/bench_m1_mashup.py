"""M1 — the 4-branch "About" mashup query (§4.1).

The most complex query in the paper: a UNION of four sub-SELECTs with
per-branch LIMIT 5 combining DBpedia (city abstract), LinkedGeoData
(restaurants with websites, tourism) and platform UGC. Measured across
platform sizes; the benchmark asserts every branch yields results on the
Turin workload and respects the per-branch limit.
"""

from __future__ import annotations

from repro.core import run_mashup


def _pid_near_mole(platform) -> int:
    from repro.sparql.geo import Point, haversine_km

    mole = Point(7.6934, 45.0692)
    for item in platform.contents():
        if item.point is not None and haversine_km(
            item.point, mole
        ) <= 0.15:
            return item.pid
    return platform.contents()[0].pid


def bench_m1_mashup(benchmark, sized_platform):
    size, platform = sized_platform
    evaluator = platform.evaluator()
    pid = _pid_near_mole(platform)

    view = benchmark(
        lambda: run_mashup(evaluator, pid=pid, language="it")
    )

    benchmark.extra_info["contents"] = size
    benchmark.extra_info["sections"] = {
        kind: len(view[kind])
        for kind in ("city", "restaurant", "tourism", "ugc")
    }
    assert view["city"], "city branch must resolve"
    assert view["tourism"], "tourism branch must resolve"
    for kind in ("city", "restaurant", "tourism", "ugc"):
        assert len(view[kind]) <= 5


def bench_m1_branch_profile(benchmark, small_platform):
    """Relative branch costs: each UNION branch run standalone."""
    from repro.core.mashup import mashup_query

    evaluator = small_platform.evaluator()
    pid = _pid_near_mole(small_platform)
    full = mashup_query(pid, "it")

    def run():
        return evaluator.evaluate(full)

    result = benchmark(run)
    benchmark.extra_info["rows"] = len(result)
