"""ABL-FT — full-text resolvers on/off (§2.2.2).

"We further realized that in some cases Named Entity Recognition would
benefit from the original context (the whole title) to help
disambiguation. As such we also rely on full-text based resolvers such
as Evri and Zemanta to derive additional candidates."

This ablation measures what the whole-title pass buys: recall on the
gold corpus (which contains lowercase multiword probes that NP
extraction misses) and its latency cost.
"""

from __future__ import annotations

import pytest

from repro.core.annotator import SemanticAnnotator
from repro.core.filtering import SemanticFilter
from repro.resolvers import SemanticBroker, default_resolvers
from repro.workloads import score_pipeline


def _annotator(corpus, **kwargs):
    broker = SemanticBroker(default_resolvers(corpus))
    return SemanticAnnotator(broker, SemanticFilter(corpus), **kwargs)


def test_full_text_improves_recall(corpus):
    with_ft = score_pipeline(_annotator(corpus, use_full_text=True))
    without = score_pipeline(_annotator(corpus, use_full_text=False))
    print(
        f"\nABL-FT: recall with full-text={with_ft.recall:.3f}, "
        f"without={without.recall:.3f}"
    )
    assert with_ft.recall > without.recall, (
        "the lowercase-multiword probes require the whole-title pass"
    )


def bench_with_full_text(benchmark, corpus):
    annotator = _annotator(corpus, use_full_text=True)
    score = benchmark(lambda: score_pipeline(annotator))
    benchmark.extra_info["recall"] = round(score.recall, 3)


def bench_without_full_text(benchmark, corpus):
    annotator = _annotator(corpus, use_full_text=False)
    score = benchmark(lambda: score_pipeline(annotator))
    benchmark.extra_info["recall"] = round(score.recall, 3)
