"""STORE ENGINE — snapshot restart guard + MVCC reader throughput.

Two numbers pin the storage engine's reason to exist:

* ``bench_snapshot_restart_speedup`` — restarting from a snapshot must
  be at least 2x faster than replaying an equivalent WAL.  The WAL
  records *history* — an update-churn workload (re-annotation batches
  that retract the previous annotations before asserting new ones)
  writes many more delta ops than the live set it converges to, while
  a snapshot holds the live set only.  Compaction's write
  amplification is only worth paying if the recovery path cashes that
  cheque; this guard asserts the ratio.
* ``bench_reader_throughput_with_writer`` — snapshot reads are
  lock-free, so read throughput should *not* collapse while a writer
  commits batches.  Recorded for the history (machine-dependent), not
  gated.

Results persist to ``BENCH_store.json`` via :mod:`_harness`.
"""

from __future__ import annotations

import statistics
import threading
import time

from _harness import record, timed_samples
from repro.rdf import Literal, URIRef
from repro.store import QuadStore

EX = "http://example.org/"
P = URIRef(EX + "p")

#: Update churn: each commit asserts PER_BATCH new quads and retracts
#: the batch from KEEP commits ago, so the live set converges to
#: KEEP * PER_BATCH while the WAL accumulates the whole history.
N_BATCHES = 800
PER_BATCH = 5
KEEP = 40

LIVE_QUADS = KEEP * PER_BATCH


def _batch_triples(b):
    return [
        (URIRef(f"{EX}s{b}_{j}"), P, Literal(str(b)))
        for j in range(PER_BATCH)
    ]


def _populate(directory):
    with QuadStore(directory) as store:
        for b in range(N_BATCHES):
            batch = store.batch()
            for triple in _batch_triples(b):
                batch.insert(triple)
            if b >= KEEP:
                for triple in _batch_triples(b - KEEP):
                    batch.remove(triple)
            store.commit(batch)
        return store.generation


def bench_snapshot_restart_speedup(benchmark, tmp_path):
    wal_dir = tmp_path / "wal-only"
    snap_dir = tmp_path / "snapshotted"
    generation = _populate(wal_dir)
    assert _populate(snap_dir) == generation
    with QuadStore(snap_dir) as store:
        store.compact()  # snapshot written, WAL pruned

    def open_store(directory):
        with QuadStore(directory) as store:
            assert store.generation >= generation
            assert store.size == LIVE_QUADS
            return store.generation

    open_store(wal_dir)  # warm the page cache before timing
    open_store(snap_dir)
    replay = timed_samples(lambda: open_store(wal_dir), repeats=5)
    snapshot = timed_samples(lambda: open_store(snap_dir), repeats=5)

    replay_ms = statistics.median(replay)
    snapshot_ms = statistics.median(snapshot)
    speedup = replay_ms / max(snapshot_ms, 1e-6)

    benchmark.extra_info["wal_replay_ms"] = round(replay_ms, 1)
    benchmark.extra_info["snapshot_ms"] = round(snapshot_ms, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    record(
        "store",
        snapshot,
        extra={
            "section": "snapshot_restart",
            "batches": N_BATCHES,
            "live_quads": LIVE_QUADS,
            "wal_replay_ms": round(replay_ms, 1),
            "snapshot_restart_ms": round(snapshot_ms, 1),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= 2.0, (
        f"snapshot restart is only {speedup:.2f}x faster than WAL "
        f"replay ({snapshot_ms:.0f} ms vs {replay_ms:.0f} ms)"
    )

    benchmark.pedantic(
        lambda: open_store(snap_dir), rounds=1, iterations=1
    )


def bench_reader_throughput_with_writer(benchmark):
    """Pattern scans over pinned snapshots while a writer commits."""
    store = QuadStore()
    store.commit(store.batch().add_all(
        (URIRef(f"{EX}seed{i}"), P, Literal("seed"))
        for i in range(500)
    ))
    stop = threading.Event()

    def writer():
        b = 0
        while not stop.is_set():
            batch = store.batch()
            for j in range(PER_BATCH):
                batch.insert(
                    (URIRef(f"{EX}w{b}_{j}"), P, Literal(str(b)))
                )
            store.commit(batch)
            b += 1

    def read_burst(duration_s=0.25):
        scans = 0
        deadline = time.perf_counter() + duration_s
        while time.perf_counter() < deadline:
            view = store.head()
            matched = sum(
                1 for _ in view.triples((None, P, None))
            )
            assert matched >= 500
            scans += 1
        return scans, duration_s

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        read_burst(0.05)  # warm-up
        bursts = [read_burst() for _ in range(4)]
    finally:
        stop.set()
        thread.join()

    rates = [scans / duration for scans, duration in bursts]
    samples_ms = [
        (duration / scans) * 1000.0 for scans, duration in bursts
    ]
    benchmark.extra_info["scans_per_s"] = round(
        statistics.median(rates), 1
    )
    benchmark.extra_info["writer_generations"] = store.generation
    record(
        "store",
        samples_ms,
        extra={
            "section": "reader_throughput_with_writer",
            "scans_per_s": round(statistics.median(rates), 1),
            "writer_generations": store.generation,
            "final_quads": store.size,
        },
    )

    benchmark.pedantic(
        lambda: read_burst(0.05), rounds=1, iterations=1
    )
