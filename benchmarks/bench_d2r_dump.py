"""D2R — relational→RDF lifting throughput (§2.1).

Measures the dump-rdf step (the offline lifting the paper runs before
bulk-loading Virtuoso) at three database sizes, plus the share of
triples produced by keyword splitting (§2.1.1).
"""

from __future__ import annotations

import pytest

from repro.d2r import dump_graph, dump_ntriples
from repro.platform import TLV


def bench_dump_graph(benchmark, sized_platform):
    size, platform = sized_platform

    graph = benchmark(
        lambda: dump_graph(platform.db, platform.mapping)
    )

    keyword_triples = sum(
        1 for _ in graph.triples((None, TLV.keyword, None))
    )
    benchmark.extra_info["contents"] = size
    benchmark.extra_info["triples"] = len(graph)
    benchmark.extra_info["keyword_triples"] = keyword_triples
    assert keyword_triples > 0


def bench_dump_ntriples_serialization(benchmark, small_platform):
    """Serialization to the N-Triples interchange document."""
    text = benchmark(
        lambda: dump_ntriples(small_platform.db, small_platform.mapping)
    )
    benchmark.extra_info["lines"] = text.count("\n")


def bench_dump_roundtrip(benchmark, small_platform):
    """Dump + reload: the full path into the triple store."""
    from repro.rdf import load_ntriples

    text = dump_ntriples(small_platform.db, small_platform.mapping)

    graph = benchmark(lambda: load_ntriples(text))
    assert len(graph) == text.count("\n")
