"""ABL-PRI — the graph-priority ordering ablation (§2.2.2).

The paper justifies Geonames > DBpedia > Evri: Geonames is exhaustive on
locations with little type overlap; DBpedia covers generic concepts.
We score the gold corpus under every permutation of the three graphs and
verify the paper's ordering is (one of) the best, and that disabling the
priority mechanism altogether collapses recall (cross-graph candidates
make every location ambiguous).
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.annotator import SemanticAnnotator
from repro.core.filtering import SemanticFilter
from repro.resolvers import SemanticBroker, default_resolvers
from repro.workloads import score_pipeline

ORDERS = list(itertools.permutations(("geonames", "dbpedia", "evri")))


def _annotator(corpus, **filter_kwargs):
    broker = SemanticBroker(default_resolvers(corpus))
    return SemanticAnnotator(
        broker, SemanticFilter(corpus, **filter_kwargs)
    )


@pytest.fixture(scope="module")
def permutation_scores(corpus):
    return {
        order: score_pipeline(_annotator(corpus, priority=order))
        for order in ORDERS
    }


def test_paper_order_is_best(permutation_scores):
    paper = permutation_scores[("geonames", "dbpedia", "evri")]
    print("\nABL-PRI priority permutations:")
    for order, score in permutation_scores.items():
        print(
            f"  {'>'.join(order):28s} precision={score.precision:.3f} "
            f"recall={score.recall:.3f} f1={score.f1:.3f}"
        )
    best_f1 = max(s.f1 for s in permutation_scores.values())
    assert paper.f1 >= best_f1 - 1e-9, (
        "the paper's ordering must be among the best permutations"
    )


def test_no_priority_collapses_recall(corpus, permutation_scores):
    paper = permutation_scores[("geonames", "dbpedia", "evri")]
    without = score_pipeline(_annotator(corpus, use_priority=False))
    print(
        f"\nABL-PRI no-priority: recall {without.recall:.3f} vs "
        f"{paper.recall:.3f} with priority"
    )
    assert without.recall < paper.recall


def bench_paper_priority(benchmark, corpus):
    annotator = _annotator(
        corpus, priority=("geonames", "dbpedia", "evri")
    )
    score = benchmark(lambda: score_pipeline(annotator))
    benchmark.extra_info["f1"] = round(score.f1, 3)


def bench_inverted_priority(benchmark, corpus):
    annotator = _annotator(
        corpus, priority=("evri", "dbpedia", "geonames")
    )
    score = benchmark(lambda: score_pipeline(annotator))
    benchmark.extra_info["f1"] = round(score.f1, 3)
