"""Shared benchmark fixtures.

Platforms are built once per size and cached for the whole benchmark
session; the timed sections are the queries/pipelines themselves.
"""

from __future__ import annotations

import pytest

from repro.core import build_default_annotator
from repro.lod import build_lod_corpus
from repro.platform import Platform
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    populate_platform,
)

#: Content-population sizes the scaling benchmarks sweep.
SIZES = (100, 1000, 5000)

_platform_cache = {}


def build_platform(n_contents: int, cities=("Turin",), seed=42) -> Platform:
    """A semanticized platform with ``n_contents`` synthetic uploads."""
    key = (n_contents, tuple(cities), seed)
    if key not in _platform_cache:
        platform = Platform()
        workload = generate_workload(
            WorkloadConfig(
                n_users=max(10, n_contents // 50),
                n_contents=n_contents,
                cities=cities,
                seed=seed,
            )
        )
        populate_platform(platform, workload)
        platform.semanticize()
        # force the union graph + evaluator construction out of the
        # timed region
        platform.union_graph()
        _platform_cache[key] = platform
    return _platform_cache[key]


@pytest.fixture(scope="session")
def corpus():
    return build_lod_corpus()


@pytest.fixture(scope="session")
def annotator(corpus):
    return build_default_annotator(corpus)


@pytest.fixture(scope="session", params=SIZES)
def sized_platform(request):
    """One semanticized platform per size in :data:`SIZES`."""
    return request.param, build_platform(request.param)


@pytest.fixture(scope="session")
def small_platform():
    return build_platform(100)


@pytest.fixture(scope="session", params=SIZES, ids=lambda n: f"n{n}")
def sized_union_graph(request):
    """``(size, union graph)`` built once per size.

    Sharing one graph object means the planner's statistics snapshot
    (cached on the graph) is collected once and reused by every
    evaluator, mirroring a long-lived deployment.
    """
    platform = build_platform(request.param)
    return request.param, platform.union_graph()
