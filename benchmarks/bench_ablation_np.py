"""ABL-NP — the NP-score ≥ 0.2 threshold ablation (§2.2.2).

"At this time, non-numeric NP lemmas with a score of at least 0.2 are
preserved." We sweep the threshold and record how many words reach the
broker (candidate volume — each extra word costs resolver calls) versus
the resulting annotation quality, and measure the term-frequency
fallback's contribution.
"""

from __future__ import annotations

import pytest

from repro.core.annotator import SemanticAnnotator
from repro.core.filtering import SemanticFilter
from repro.resolvers import SemanticBroker, default_resolvers
from repro.workloads import GOLD_CORPUS, score_pipeline

THRESHOLDS = (0.0, 0.2, 0.6, 0.9)


def _annotator(corpus, **kwargs):
    broker = SemanticBroker(default_resolvers(corpus))
    return SemanticAnnotator(
        broker, SemanticFilter(corpus), **kwargs
    )


@pytest.fixture(scope="module")
def sweep(corpus):
    rows = {}
    for threshold in THRESHOLDS:
        annotator = _annotator(corpus, np_min_score=threshold)
        words = 0
        for example in GOLD_CORPUS:
            result = annotator.annotate(example.title, example.tags)
            words += len(result.words)
        rows[threshold] = (words, score_pipeline(annotator))
    return rows


def test_sweep_shape(sweep):
    """Raising the NP threshold must shrink the broker's word volume;
    the paper's 0.2 keeps quality while cutting sentence-initial
    common-word noise."""
    volumes = [sweep[t][0] for t in THRESHOLDS]
    assert all(a >= b for a, b in zip(volumes, volumes[1:]))
    print("\nABL-NP threshold sweep:")
    for threshold in THRESHOLDS:
        words, score = sweep[threshold]
        print(
            f"  np>={threshold:.1f}: words-to-broker={words:4d} "
            f"precision={score.precision:.3f} recall={score.recall:.3f}"
        )
    paper_words, paper_score = sweep[0.2]
    loose_words, loose_score = sweep[0.0]
    assert paper_words <= loose_words
    assert paper_score.f1 >= loose_score.f1 - 0.05


def test_high_threshold_hurts_recall(sweep):
    _, paper = sweep[0.2]
    _, strict = sweep[0.9]
    assert strict.recall <= paper.recall


def bench_paper_np_threshold(benchmark, corpus):
    annotator = _annotator(corpus, np_min_score=0.2)
    benchmark(lambda: score_pipeline(annotator))


def bench_term_frequency_fallback_off(benchmark, corpus):
    """The tf fallback's cost/benefit (§2.2.2 uses it to 'extract other
    potential relevant words')."""
    annotator = _annotator(corpus, term_freq_top_k=0)
    score = benchmark(lambda: score_pipeline(annotator))
    benchmark.extra_info["recall_without_tf"] = round(score.recall, 3)
