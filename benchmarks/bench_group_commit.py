"""STORE WRITE PATH — group commit throughput + checkpoint-bounded WAL.

Two numbers pin this PR's write-path machinery:

* ``bench_group_commit_speedup`` — 8 concurrent single-triple writers
  against a ``sync=True`` store must run at least 2x faster with group
  commit than with per-write commits.  Group commit coalesces the
  batches queued behind the commit lock into one WAL append and one
  fsync, so the fsync count drops from one-per-write to
  one-per-group; the guard asserts the wall-clock ratio.
* ``bench_checkpoint_bounds_wal`` — a 10k-commit run under an op-count
  checkpoint watermark must keep the WAL tail bounded *without any
  explicit ``compact()``*: the background checkpointer absorbs the
  tail into snapshots as the policy trips.  Recorded alongside the
  unbounded tail the same run would have produced.

Results persist to ``BENCH_group_commit.json`` via :mod:`_harness`.
"""

from __future__ import annotations

import statistics
import threading
import time

from _harness import record
from repro.rdf import Literal, URIRef
from repro.store import CheckpointPolicy, QuadStore

EX = "http://example.org/"
P = URIRef(EX + "p")

WRITERS = 8
OPS_PER_WRITER = 100
REPEATS = 3


def _run_writers(directory, group_commit):
    """Wall-clock seconds for 8 writers of single-triple commits.

    The per-writer op lists are built before the clock starts — the
    timed section is the commit path, not RDF term construction."""
    store = QuadStore(directory, sync=True, group_commit=group_commit)
    barrier = threading.Barrier(WRITERS + 1)
    ops = [
        [
            [("+", (URIRef(f"{EX}t{t}_{i}"), P, Literal(str(i))), None)]
            for i in range(OPS_PER_WRITER)
        ]
        for t in range(WRITERS)
    ]

    def writer(t):
        barrier.wait()
        for op in ops[t]:
            store.apply(op)

    threads = [
        threading.Thread(target=writer, args=(t,)) for t in range(WRITERS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert store.size == WRITERS * OPS_PER_WRITER
    generations = store.generation
    stats = store.info()["group_commit"]
    store.close()
    return elapsed, generations, stats


def bench_group_commit_speedup(benchmark, tmp_path):
    direct_ms, grouped_ms = [], []
    grouped_stats = None
    for r in range(REPEATS):
        elapsed, generations, _ = _run_writers(
            tmp_path / f"direct{r}", group_commit=False
        )
        direct_ms.append(elapsed * 1000.0)
        assert generations == WRITERS * OPS_PER_WRITER
        elapsed, generations, grouped_stats = _run_writers(
            tmp_path / f"grouped{r}", group_commit=True
        )
        grouped_ms.append(elapsed * 1000.0)
        # coalescing happened: strictly fewer flushes than writes
        assert generations < WRITERS * OPS_PER_WRITER

    direct = statistics.median(direct_ms)
    grouped = statistics.median(grouped_ms)
    speedup = direct / max(grouped, 1e-6)

    benchmark.extra_info["per_write_ms"] = round(direct, 1)
    benchmark.extra_info["grouped_ms"] = round(grouped, 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    record(
        "group_commit",
        grouped_ms,
        extra={
            "section": "many_writer_speedup",
            "writers": WRITERS,
            "ops_per_writer": OPS_PER_WRITER,
            "per_write_ms": round(direct, 1),
            "grouped_ms": round(grouped, 1),
            "speedup": round(speedup, 2),
            "batched": grouped_stats["batched"],
            "largest_group": grouped_stats["largest_group"],
        },
    )
    assert speedup >= 2.0, (
        f"group commit is only {speedup:.2f}x faster than per-write "
        f"commits ({grouped:.0f} ms vs {direct:.0f} ms)"
    )

    benchmark.pedantic(
        lambda: _run_writers(tmp_path / "timed", group_commit=True),
        rounds=1,
        iterations=1,
    )


COMMITS = 10_000
WATERMARK_OPS = 500


def bench_checkpoint_bounds_wal(benchmark, tmp_path):
    """10k commits; the op-count watermark must bound the WAL tail."""
    store = QuadStore(
        tmp_path / "s",
        checkpoint_policy=CheckpointPolicy(ops=WATERMARK_OPS),
    )
    max_tail = 0
    total_appended = 0
    start = time.perf_counter()
    for i in range(COMMITS):
        before = store._wal.tail_bytes
        store.insert((URIRef(f"{EX}s{i}"), P, Literal(str(i))))
        after = store._wal.tail_bytes
        # reset() zeroes the tail mid-run; count only fresh bytes
        total_appended += after - before if after >= before else after
        max_tail = max(max_tail, after)
    assert store.wait_for_checkpoints()
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    runs = store._checkpointer.stats()["runs"]
    settled_tail = store._wal.tail_bytes
    store.close()

    with QuadStore(tmp_path / "s") as reopened:
        assert reopened.size == COMMITS
        assert reopened.recovery.snapshot_generation > 0

    benchmark.extra_info["max_tail_bytes"] = max_tail
    benchmark.extra_info["unbounded_bytes"] = total_appended
    benchmark.extra_info["checkpoint_runs"] = runs
    record(
        "group_commit",
        [elapsed_ms],
        extra={
            "section": "checkpoint_bounds_wal",
            "commits": COMMITS,
            "watermark_ops": WATERMARK_OPS,
            "checkpoint_runs": runs,
            "max_tail_bytes": max_tail,
            "settled_tail_bytes": settled_tail,
            "unbounded_bytes": total_appended,
        },
    )
    assert runs >= 2, f"watermark never tripped ({runs} runs)"
    # the observed high-water mark must stay a small multiple of one
    # watermark window, nowhere near the unbounded 10k-commit tail
    assert max_tail < total_appended / 4, (
        f"WAL tail reached {max_tail} of {total_appended} unbounded "
        f"bytes — the op-count watermark is not bounding the log"
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
