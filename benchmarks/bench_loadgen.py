"""OBSERVABILITY HARNESS — SLO-guarded load run + profiler overhead.

Two guards pin this PR's observability machinery:

* ``bench_loadgen_slo`` — a small closed-loop run of the default
  traffic mix (uploads, incremental search, virtual albums, mashups,
  browsing, store writes) must meet the *default SLO spec*: per-op
  p95/p99 latency ceilings, the upload-to-queryable freshness bound,
  the error-rate budget, and the throughput floor.  A breach fails the
  benchmark with the rendered SLO report in the assertion message.
* ``bench_profiler_overhead`` — the same run with the sampling
  profiler attached must stay within 1.10x of the unprofiled
  wall-clock median: observing the workload may not meaningfully
  perturb it.

Results persist to ``BENCH_loadgen.json`` via :mod:`_harness`; each
record carries the measured throughput and per-op p95s so CI artifacts
show the latency trajectory against the committed baseline.
"""

from __future__ import annotations

import statistics

from _harness import record
from repro.obs import MetricsRegistry, SamplingProfiler, set_registry
from repro.obs.slo import default_slo, evaluate_slo
from repro.workloads import LoadConfig, LoadGenerator

# 48 ops at seed 7 draws every op kind of the default mix, so every
# objective of the default SLO spec has data to judge
CONFIG = dict(
    mix="default", seed=7, ops=48, workers=4,
    base_contents=15, sync_every=3,
)
REPEATS = 3


def _run_once():
    """One isolated load run: fresh registry in, report out."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        return LoadGenerator(LoadConfig(**CONFIG)).run()
    finally:
        set_registry(previous)


def bench_loadgen_slo(benchmark):
    """The default mix must meet the default SLO spec end to end."""
    walls_ms = []
    report = None
    slo = None
    for _ in range(REPEATS):
        report = _run_once()
        walls_ms.append(report.wall_seconds * 1000.0)
        slo = evaluate_slo(
            default_slo(), report.metrics,
            wall_seconds=report.wall_seconds,
        )
        assert report.errors == 0, report.error_samples
        assert slo.passed, "SLO breach:\n" + slo.render()

    p95s = {
        op: round(row["p95_ms"], 2)
        for op, row in sorted(report.per_op.items())
    }
    benchmark.extra_info["throughput_ops_per_s"] = round(
        report.throughput, 1
    )
    benchmark.extra_info["per_op_p95_ms"] = p95s
    record(
        "loadgen",
        walls_ms,
        extra={
            "section": "default_mix_slo",
            **CONFIG,
            "throughput_ops_per_s": round(report.throughput, 1),
            "per_op_p95_ms": p95s,
            "freshness_p95_ms": round(
                report.freshness.get("p95_ms", 0.0), 1
            ),
            "slo_objectives": len(slo.results),
            "slo_passed": slo.passed,
        },
    )

    benchmark.pedantic(_run_once, rounds=1, iterations=1)


OVERHEAD_CEILING = 1.10


OVERHEAD_REPEATS = 5


def bench_profiler_overhead(benchmark):
    """Attaching the sampler may not slow the workload past 1.10x."""
    _run_once()  # warm caches so the first pair is not skewed
    plain_ms, profiled_ms = [], []
    samples = 0
    for _ in range(OVERHEAD_REPEATS):
        report = _run_once()
        plain_ms.append(report.wall_seconds * 1000.0)
        with SamplingProfiler(hz=67) as profiler:
            report = _run_once()
        profiled_ms.append(report.wall_seconds * 1000.0)
        samples += profiler.stats().samples

    plain = statistics.median(plain_ms)
    profiled = statistics.median(profiled_ms)
    ratio = profiled / max(plain, 1e-6)

    benchmark.extra_info["plain_ms"] = round(plain, 1)
    benchmark.extra_info["profiled_ms"] = round(profiled, 1)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 3)
    record(
        "loadgen",
        profiled_ms,
        extra={
            "section": "profiler_overhead",
            "plain_ms": round(plain, 1),
            "profiled_ms": round(profiled, 1),
            "overhead_ratio": round(ratio, 3),
            "profiler_samples": samples,
        },
    )
    assert samples > 0, "profiler collected no samples"
    assert ratio <= OVERHEAD_CEILING, (
        f"profiler overhead {ratio:.3f}x exceeds the "
        f"{OVERHEAD_CEILING:.2f}x ceiling "
        f"({profiled:.0f} ms vs {plain:.0f} ms)"
    )

    benchmark.pedantic(_run_once, rounds=1, iterations=1)
