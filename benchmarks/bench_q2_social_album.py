"""Q2 — virtual album with social filtering (§2.3 query 2).

Adds the friend-of-"oscar" restriction to Q1. The social join must
*narrow* the result (friendship filters only remove makers), and the
benchmark records the narrowing factor alongside latency.
"""

from __future__ import annotations

from repro.core import geo_album, social_album


def bench_q2_album(benchmark, sized_platform):
    size, platform = sized_platform
    evaluator = platform.evaluator()
    album = social_album(
        "Mole Antonelliana", friend_of="oscar", radius_km=0.3
    )

    links = benchmark(lambda: album.links(evaluator))

    geo_links = geo_album("Mole Antonelliana", radius_km=0.3).links(
        evaluator
    )
    benchmark.extra_info["contents"] = size
    benchmark.extra_info["q1_matches"] = len(geo_links)
    benchmark.extra_info["q2_matches"] = len(links)
    assert set(links) <= set(geo_links), "social filter must narrow Q1"


def bench_q2_vs_q1_overhead(benchmark, small_platform):
    """The marginal cost of the social join on the small platform."""
    evaluator = small_platform.evaluator()
    q1 = geo_album("Mole Antonelliana", radius_km=0.3)
    q2 = social_album("Mole Antonelliana", friend_of="oscar",
                      radius_km=0.3)

    def run():
        return q1.links(evaluator), q2.links(evaluator)

    benchmark(run)
