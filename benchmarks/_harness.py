"""Shared benchmark-result harness.

Guard benchmarks that hand-time their critical sections (the Q3 planner
speedup, the parallel batch speedup, the tracing-overhead gate) persist
their numbers through :func:`record`: one ``BENCH_<name>.json`` file per
benchmark holding the run history as a JSON array.  Each record carries
the latency summary (median/p95/min/max over the timed samples) plus
enough run metadata (UTC timestamp, interpreter, platform) to compare
numbers across machines and commits.  CI uploads the result directory
as an artifact.

The destination defaults to ``bench-results/`` under the current
working directory; set ``REPRO_BENCH_DIR`` to redirect it.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["percentile", "record", "results_dir", "timed_samples"]


def results_dir() -> Path:
    """Directory that receives ``BENCH_<name>.json`` files."""
    return Path(os.environ.get("REPRO_BENCH_DIR", "bench-results"))


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of ``samples``."""
    if not samples:
        raise ValueError("percentile() of empty sample set")
    ordered = sorted(samples)
    rank = max(int(round(q * len(ordered) + 0.5)) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


def timed_samples(
    fn: Callable[[], object], repeats: int = 5
) -> List[float]:
    """``repeats`` wall-clock samples of ``fn()`` in milliseconds."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return samples


def record(
    name: str,
    samples_ms: Sequence[float],
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Append one result record to ``BENCH_<name>.json``.

    Returns the record written.  The file holds a JSON array so that
    repeated local runs accumulate a comparable history; CI starts from
    a clean directory and uploads single-record files.
    """
    samples = [float(s) for s in samples_ms]
    entry: Dict[str, object] = {
        "bench": name,
        "median_ms": round(statistics.median(samples), 3),
        "p95_ms": round(percentile(samples, 0.95), 3),
        "min_ms": round(min(samples), 3),
        "max_ms": round(max(samples), 3),
        "samples": len(samples),
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
    }
    if extra:
        entry["extra"] = dict(extra)

    path = results_dir() / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    history: List[Dict[str, object]] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            loaded = []
        if isinstance(loaded, list):
            history = [e for e in loaded if isinstance(e, dict)]
        elif isinstance(loaded, dict):
            history = [loaded]
    history.append(entry)
    path.write_text(
        json.dumps(history, indent=2) + "\n", encoding="utf-8"
    )
    return entry
