"""Shared benchmark-result harness.

Guard benchmarks that hand-time their critical sections (the Q3 planner
speedup, the parallel batch speedup, the tracing-overhead gate) persist
their numbers through :func:`record`: one ``BENCH_<name>.json`` file per
benchmark holding the run history as a JSON array.  Each record carries
the latency summary (median/p95/min/max over the timed samples) plus
enough run metadata (UTC timestamp, interpreter, platform) to compare
numbers across machines and commits.  CI uploads the result directory
as an artifact.

The destination defaults to ``bench-results/`` under the current
working directory; set ``REPRO_BENCH_DIR`` to redirect it.

Checked-in seed baselines live in ``benchmarks/baselines/`` (override
with ``REPRO_BENCH_BASELINE_DIR``): when ``BENCH_<name>.json`` exists
there, :func:`record` adds a ``delta_vs_baseline`` block to the new
record — percentage change of median and p95 against the *first*
baseline entry — so every run (and the CI artifact) shows the perf
trajectory against the committed reference instead of an empty
history.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "baseline_dir",
    "baseline_for",
    "percentile",
    "record",
    "results_dir",
    "timed_samples",
]


def results_dir() -> Path:
    """Directory that receives ``BENCH_<name>.json`` files."""
    return Path(os.environ.get("REPRO_BENCH_DIR", "bench-results"))


def baseline_dir() -> Path:
    """Directory holding the checked-in seed baseline records."""
    override = os.environ.get("REPRO_BENCH_BASELINE_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "baselines"


def baseline_for(name: str) -> Optional[Dict[str, object]]:
    """The committed baseline record for ``name`` (first entry), or
    ``None`` when no readable baseline file exists."""
    path = baseline_dir() / f"BENCH_{name}.json"
    try:
        loaded = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if isinstance(loaded, list):
        entries = [e for e in loaded if isinstance(e, dict)]
        return entries[0] if entries else None
    if isinstance(loaded, dict):
        return loaded
    return None


def _delta_pct(current: float, baseline: float) -> Optional[float]:
    if baseline <= 0:
        return None
    return round((current - baseline) / baseline * 100.0, 1)


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of ``samples``."""
    if not samples:
        raise ValueError("percentile() of empty sample set")
    ordered = sorted(samples)
    rank = max(int(round(q * len(ordered) + 0.5)) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


def timed_samples(
    fn: Callable[[], object], repeats: int = 5
) -> List[float]:
    """``repeats`` wall-clock samples of ``fn()`` in milliseconds."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return samples


def record(
    name: str,
    samples_ms: Sequence[float],
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Append one result record to ``BENCH_<name>.json``.

    Returns the record written.  The file holds a JSON array so that
    repeated local runs accumulate a comparable history; CI starts from
    a clean directory and uploads single-record files.
    """
    samples = [float(s) for s in samples_ms]
    entry: Dict[str, object] = {
        "bench": name,
        "median_ms": round(statistics.median(samples), 3),
        "p95_ms": round(percentile(samples, 0.95), 3),
        "min_ms": round(min(samples), 3),
        "max_ms": round(max(samples), 3),
        "samples": len(samples),
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
    }
    if extra:
        entry["extra"] = dict(extra)

    baseline = baseline_for(name)
    if baseline is not None:
        deltas: Dict[str, object] = {
            "baseline_recorded_at": baseline.get("recorded_at"),
        }
        for key in ("median_ms", "p95_ms"):
            base_value = baseline.get(key)
            if isinstance(base_value, (int, float)):
                deltas[f"baseline_{key}"] = base_value
                pct = _delta_pct(float(entry[key]), float(base_value))
                if pct is not None:
                    deltas[key.replace("_ms", "_pct")] = pct
        entry["delta_vs_baseline"] = deltas

    path = results_dir() / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    history: List[Dict[str, object]] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            loaded = []
        if isinstance(loaded, list):
            history = [e for e in loaded if isinstance(e, dict)]
        elif isinstance(loaded, dict):
            history = [loaded]
    history.append(entry)
    path.write_text(
        json.dumps(history, indent=2) + "\n", encoding="utf-8"
    )
    return entry
