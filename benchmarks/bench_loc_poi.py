"""LOC — location analysis and POI→DBpedia resolution (§2.2.1).

Two measurements: (1) contextualization latency — GPS → civil address +
Geonames reference + nearby buddies; (2) POI association accuracy — the
``poi:recs_id`` → DBpedia SPARQL resolution over the whole synthetic
world, verifying every non-commercial POI category resolves and every
commercial one is excluded, as the paper specifies.
"""

from __future__ import annotations

import pytest

from repro.context import ContextPlatform, Gazetteer, TripleTag
from repro.core import LocationAnalyzer
from repro.core.location import COMMERCIAL_CATEGORIES
from repro.lod import POIS, build_lod_corpus
from repro.rdf import DBPR
from repro.sparql.geo import Point


@pytest.fixture(scope="module")
def analyzer(corpus):
    return LocationAnalyzer(corpus, Gazetteer())


@pytest.fixture(scope="module")
def busy_context():
    context = ContextPlatform()
    for i in range(30):
        name = f"user{i}"
        context.register_user(name, f"User {i}")
    for i in range(29):
        context.add_friendship(f"user{i}", f"user{i + 1}")
    base = Point(7.6934, 45.0692)
    for i in range(30):
        context.report_position(
            f"user{i}", 1000,
            Point(base.longitude + i * 1e-4, base.latitude),
        )
    return context


def bench_contextualize(benchmark, busy_context):
    context = benchmark(
        lambda: busy_context.contextualize("user5", 1010)
    )
    assert context.location is not None
    assert context.location.address.city == "Turin"
    benchmark.extra_info["nearby_buddies"] = len(context.buddies)


def bench_reverse_geocode_grid(benchmark):
    """Reverse geocoding across a grid spanning the synthetic world."""
    gazetteer = Gazetteer()
    points = [
        Point(2.0 + dx * 1.3, 41.5 + dy * 1.2)
        for dx in range(9)
        for dy in range(9)
    ]

    addresses = benchmark(
        lambda: [gazetteer.reverse_geocode(p) for p in points]
    )
    benchmark.extra_info["points"] = len(addresses)


def bench_poi_resolution(benchmark, analyzer):
    gazetteer = analyzer.gazetteer
    tags = [
        TripleTag("poi", "recs_id", str(gazetteer.recs_id_for(poi)))
        for poi in POIS
    ]

    resolved = benchmark(
        lambda: [analyzer.resolve_poi_tag(tag) for tag in tags]
    )
    hits = sum(1 for r in resolved if r is not None)
    benchmark.extra_info["pois"] = len(POIS)
    benchmark.extra_info["resolved"] = hits


def test_poi_resolution_accuracy(analyzer):
    """Every mapped non-commercial POI resolves to its own DBpedia
    resource; every commercial POI is excluded."""
    resolvable = 0
    correct = 0
    for poi in POIS:
        resource = analyzer.resolve_poi(poi)
        if poi.category in COMMERCIAL_CATEGORIES:
            assert resource is None, f"{poi.key} must be excluded"
            continue
        if not poi.in_dbpedia:
            assert resource is None
            continue
        resolvable += 1
        if resource == DBPR[poi.key]:
            correct += 1
    print(f"\nLOC: POI resolution {correct}/{resolvable} correct, "
          f"commercial excluded")
    assert correct == resolvable
