"""RET — keyword vs. semantic retrieval effectiveness (§1.2 / §2).

The paper's motivating claim: "Keyword-based searches, especially when
relying on user-generated tags with wild-free vocabulary, restrict the
amount of retrievable content [...] the main problem of such approach is
the ambiguity".

Setup: a multi-city workload where titles are written in five languages.
A user searches for content about *Turin*. Ground truth = contents
captured in Turin (known from the generator). The keyword baseline
matches the English token "turin" only; the semantic path resolves the
concept (Geonames Turin) and retrieves by annotation + location, which
also covers "Torino"/"Turín" titles. The *shape* the paper predicts:
semantic recall ≫ keyword recall at comparable precision.
"""

from __future__ import annotations

import pytest

from repro.lod.geonames import geonames_uri
from repro.platform import Platform, SearchInterface
from repro.sparql.geo import Point, haversine_km
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    populate_platform,
)

TURIN_CENTER = Point(7.6869, 45.0703)
GN_TURIN = geonames_uri(3165524)


@pytest.fixture(scope="module")
def retrieval_world():
    platform = Platform()
    workload = generate_workload(
        WorkloadConfig(
            n_users=12,
            n_contents=300,
            cities=("Turin", "Rome", "Paris"),
            seed=13,
        )
    )
    pids = populate_platform(platform, workload)
    platform.semanticize()
    search = SearchInterface(
        platform.union_graph(), platform.contents()
    )
    # ground truth: pids captured within 25 km of Turin's center
    relevant = {
        pid
        for pid, capture in zip(pids, workload.captures)
        if haversine_km(capture.point, TURIN_CENTER) <= 25.0
    }
    return platform, search, relevant


def _prf(retrieved, relevant):
    retrieved = set(retrieved)
    tp = len(retrieved & relevant)
    precision = tp / len(retrieved) if retrieved else 1.0
    recall = tp / len(relevant) if relevant else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def bench_keyword_baseline(benchmark, retrieval_world):
    _, search, relevant = retrieval_world

    items = benchmark(lambda: search.keyword_search("turin"))

    precision, recall, f1 = _prf({i.pid for i in items}, relevant)
    benchmark.extra_info["precision"] = round(precision, 3)
    benchmark.extra_info["recall"] = round(recall, 3)
    benchmark.extra_info["f1"] = round(f1, 3)
    benchmark.extra_info["retrieved"] = len(items)


def bench_semantic_retrieval(benchmark, retrieval_world):
    _, search, relevant = retrieval_world

    items = benchmark(
        lambda: search.content_for_resource(GN_TURIN, radius_km=25.0)
    )

    precision, recall, f1 = _prf({i.pid for i in items}, relevant)
    benchmark.extra_info["precision"] = round(precision, 3)
    benchmark.extra_info["recall"] = round(recall, 3)
    benchmark.extra_info["f1"] = round(f1, 3)
    benchmark.extra_info["retrieved"] = len(items)


def test_semantic_beats_keyword(retrieval_world):
    """The headline comparison the paper motivates semantics with."""
    _, search, relevant = retrieval_world
    keyword = {i.pid for i in search.keyword_search("turin")}
    semantic = {
        i.pid
        for i in search.content_for_resource(GN_TURIN, radius_km=25.0)
    }
    _, keyword_recall, _ = _prf(keyword, relevant)
    semantic_precision, semantic_recall, _ = _prf(semantic, relevant)
    print(
        f"\nRET: keyword recall={keyword_recall:.3f} "
        f"semantic recall={semantic_recall:.3f} "
        f"semantic precision={semantic_precision:.3f}"
    )
    assert semantic_recall > keyword_recall, (
        "semantic retrieval must dominate the wild-vocabulary keyword "
        "baseline on recall"
    )
    assert semantic_precision >= 0.9
