"""ABL-JW — the Jaro-Winkler 0.8 cutoff ablation (§2.2.2).

The paper: "after initial empirical tests, candidates with Jaro-Winkler
distance lower than 0.8 are discarded at this stage unless their DBpedia
score is maximum." We sweep the threshold over the gold corpus and
record the precision / recall / acceptance trade-off, plus the effect of
removing the max-DBpedia-score escape hatch.
"""

from __future__ import annotations

import pytest

from repro.core.annotator import SemanticAnnotator
from repro.core.filtering import SemanticFilter
from repro.resolvers import SemanticBroker, default_resolvers
from repro.workloads import score_pipeline

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def _annotator(corpus, **filter_kwargs):
    broker = SemanticBroker(default_resolvers(corpus))
    return SemanticAnnotator(
        broker, SemanticFilter(corpus, **filter_kwargs)
    )


@pytest.fixture(scope="module")
def sweep(corpus):
    rows = {}
    for threshold in THRESHOLDS:
        annotator = _annotator(corpus, jw_threshold=threshold)
        score = score_pipeline(annotator)
        rows[threshold] = score
    return rows


def test_sweep_shape(sweep):
    """Recall cannot increase as the threshold rises; the paper's 0.8
    must sit at (or near) the precision/recall sweet spot."""
    recalls = [sweep[t].recall for t in THRESHOLDS]
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    paper = sweep[0.8]
    print("\nABL-JW threshold sweep:")
    for threshold in THRESHOLDS:
        s = sweep[threshold]
        print(
            f"  jw>={threshold:.2f}: precision={s.precision:.3f} "
            f"recall={s.recall:.3f} f1={s.f1:.3f}"
        )
    assert paper.f1 >= max(s.f1 for s in sweep.values()) - 0.05


def bench_pipeline_at_paper_threshold(benchmark, corpus):
    annotator = _annotator(corpus, jw_threshold=0.8)
    score = benchmark(lambda: score_pipeline(annotator))
    benchmark.extra_info["precision"] = round(score.precision, 3)
    benchmark.extra_info["recall"] = round(score.recall, 3)


def bench_pipeline_loose_threshold(benchmark, corpus):
    annotator = _annotator(corpus, jw_threshold=0.5)
    score = benchmark(lambda: score_pipeline(annotator))
    benchmark.extra_info["precision"] = round(score.precision, 3)
    benchmark.extra_info["recall"] = round(score.recall, 3)


def test_escape_hatch_effect(corpus):
    """Removing the max-DBpedia-score exception must not improve
    recall (it only ever rescues candidates)."""
    with_hatch = score_pipeline(_annotator(corpus))
    without = score_pipeline(
        _annotator(corpus, jw_escape_on_max_dbpedia_score=False)
    )
    print(
        f"\nABL-JW escape hatch: with={with_hatch.recall:.3f} "
        f"without={without.recall:.3f} (recall)"
    )
    assert with_hatch.recall >= without.recall
