"""Q1 — the paper's first virtual-album query (§2.3).

"Select the set of user generated content, taken near to the monument
'Mole Antonelliana'" — measured across content populations of 100, 1000
and 5000 items, radius 0.3 km as in the paper.
"""

from __future__ import annotations

from repro.core import geo_album


def bench_q1_album(benchmark, sized_platform):
    size, platform = sized_platform
    evaluator = platform.evaluator()
    album = geo_album("Mole Antonelliana", radius_km=0.3)

    links = benchmark(lambda: album.links(evaluator))

    benchmark.extra_info["contents"] = size
    benchmark.extra_info["matches"] = len(links)
    benchmark.extra_info["store_triples"] = len(platform.union_graph())
    assert links, "the Turin workload always has content near the Mole"


def bench_q1_radius_sweep(benchmark, small_platform):
    """Radius sensitivity: the paper uses 0.3 near monuments, 1.0 at
    city level, 0.2 for same-location UGC."""
    evaluator = small_platform.evaluator()
    albums = {
        radius: geo_album("Mole Antonelliana", radius_km=radius)
        for radius in (0.2, 0.3, 1.0, 5.0)
    }

    def run():
        return {
            radius: len(album.links(evaluator))
            for radius, album in albums.items()
        }

    counts = benchmark(run)
    benchmark.extra_info["matches_by_radius"] = counts
    # monotone: a larger radius can only add content
    radii = sorted(counts)
    assert all(
        counts[a] <= counts[b] for a, b in zip(radii, radii[1:])
    )
