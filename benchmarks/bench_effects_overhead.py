"""EFFECTS — store-sanitizer overhead gate.

The runtime store sanitizer (:mod:`repro.analysis.store_sanitizer`)
wraps every ``Graph`` read and write while installed. That is an
opt-in debugging mode (``REPRO_SANITIZE=1``, ``repro sanitize
--store``) — production runs never pay for it, which this gate pins: a
*disabled* sanitizer's ``installed()`` patches nothing, so a
store-heavy workload (SPARQL evaluation + bulk writes) inside it must
stay within 1.10x of the plain run. The enabled-mode cost is recorded
for the history but not gated.
"""

from __future__ import annotations

import statistics
import time

from _harness import record
from repro.analysis.store_sanitizer import StoreSanitizer
from repro.rdf import FOAF, Graph, Literal, RDF, SIOCT, URIRef
from repro.sparql import Evaluator

EX = "http://example.org/"
QUERY = (
    "PREFIX sioct: <http://rdfs.org/sioc/types#> "
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
    "SELECT ?p ?n WHERE { ?p a sioct:MicroblogPost . "
    "?p foaf:maker ?u . ?u foaf:name ?n }"
)


def _store_workload():
    """Bulk-load a graph, evaluate a join-heavy query, scan it back."""
    graph = Graph()
    graph.add_all(
        (URIRef(f"{EX}u{i}"), FOAF.name, Literal(f"user {i}"))
        for i in range(50)
    )
    for i in range(600):
        pic = URIRef(f"{EX}pic{i}")
        graph.add((pic, RDF.type, SIOCT.MicroblogPost))
        graph.add((pic, FOAF.maker, URIRef(f"{EX}u{i % 50}")))
    rows = list(Evaluator(graph).evaluate(QUERY))
    scanned = sum(1 for _ in graph.triples((None, None, None)))
    assert len(rows) == 600 and scanned == len(graph)
    return rows


def bench_effects_overhead(benchmark):
    def timed_run(sanitizer=None):
        start = time.perf_counter()
        if sanitizer is None:
            _store_workload()
        else:
            with sanitizer.installed():
                _store_workload()
        return (time.perf_counter() - start) * 1000.0

    timed_run()  # warm caches before any timed sample
    rounds = 5
    plain = [timed_run() for _ in range(rounds)]
    disabled = [
        timed_run(StoreSanitizer(enabled=False)) for _ in range(rounds)
    ]
    enabled = [
        timed_run(StoreSanitizer()) for _ in range(rounds)
    ]

    plain_ms = statistics.median(plain)
    disabled_ms = statistics.median(disabled)
    enabled_ms = statistics.median(enabled)
    # small absolute floor keeps the ratio meaningful on very fast runs
    ratio = disabled_ms / max(plain_ms, 1.0)

    benchmark.extra_info["plain_ms"] = round(plain_ms, 1)
    benchmark.extra_info["disabled_ms"] = round(disabled_ms, 1)
    benchmark.extra_info["enabled_ms"] = round(enabled_ms, 1)
    benchmark.extra_info["disabled_ratio"] = round(ratio, 3)
    record(
        "effects_overhead",
        disabled,
        extra={
            "plain_ms": round(plain_ms, 1),
            "enabled_ms": round(enabled_ms, 1),
            "disabled_ratio": round(ratio, 3),
        },
    )
    assert ratio <= 1.10, (
        f"disabled store sanitizer costs {ratio:.2f}x over plain "
        f"({disabled_ms:.0f} ms vs {plain_ms:.0f} ms)"
    )

    benchmark.pedantic(timed_run, rounds=1, iterations=1)
