"""STORE — triple-store substrate scaling.

Sanity-scaling of the Virtuoso stand-in: bulk insert throughput,
indexed pattern matching and SPARQL BGP evaluation at 10k–100k triples.
Not a paper artifact per se, but the substrate every experiment stands
on; EXPERIMENTS.md records the numbers so regressions are visible.
"""

from __future__ import annotations

import pytest

from repro.rdf import FOAF, Graph, Literal, RDF, URIRef
from repro.sparql import Evaluator

SIZES = (10_000, 50_000, 100_000)

EX = "http://example.org/"


def _triples(n):
    person_type = FOAF.Person
    for i in range(n):
        subject = URIRef(f"{EX}person/{i}")
        kind = i % 3
        if kind == 0:
            yield (subject, RDF.type, person_type)
        elif kind == 1:
            yield (subject, FOAF.name, Literal(f"name {i}"))
        else:
            yield (subject, FOAF.knows, URIRef(f"{EX}person/{i - 1}"))


@pytest.fixture(scope="module", params=SIZES)
def filled_graph(request):
    graph = Graph()
    graph.add_all(_triples(request.param))
    return request.param, graph


def bench_bulk_insert(benchmark, filled_graph):
    size, _ = filled_graph
    triples = list(_triples(size))

    def run():
        g = Graph()
        g.add_all(triples)
        return g

    graph = benchmark(run)
    benchmark.extra_info["triples"] = len(graph)


def bench_pattern_match_by_predicate(benchmark, filled_graph):
    size, graph = filled_graph

    count = benchmark(
        lambda: sum(1 for _ in graph.triples((None, FOAF.name, None)))
    )
    benchmark.extra_info["triples"] = size
    benchmark.extra_info["matches"] = count


def bench_fully_bound_lookups(benchmark, filled_graph):
    size, graph = filled_graph
    probes = [
        (URIRef(f"{EX}person/{i}"), RDF.type, FOAF.Person)
        for i in range(0, size, max(1, size // 1000))
    ]

    hits = benchmark(
        lambda: sum(1 for t in probes if t in graph)
    )
    benchmark.extra_info["probes"] = len(probes)
    benchmark.extra_info["hits"] = hits


def bench_sparql_join(benchmark, filled_graph):
    size, graph = filled_graph
    evaluator = Evaluator(graph)
    query = """
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        SELECT ?a ?b WHERE {
          ?a foaf:knows ?b .
          ?a a foaf:Person .
        }
    """

    result = benchmark(lambda: evaluator.evaluate(query))
    benchmark.extra_info["triples"] = size
    benchmark.extra_info["rows"] = len(result)
