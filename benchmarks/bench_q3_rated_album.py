"""Q3 — virtual album with rating ordering (§2.3 query 3).

Q2 plus ``rev:rating`` retrieval and ``ORDER BY DESC(?points)``. The
benchmark asserts the ordering invariant and records result sizes.
"""

from __future__ import annotations

from repro.core import rated_album, social_album


def bench_q3_album(benchmark, sized_platform):
    size, platform = sized_platform
    evaluator = platform.evaluator()
    album = rated_album(
        "Mole Antonelliana", friend_of="oscar", radius_km=0.3
    )

    result = benchmark(lambda: album.fetch(evaluator))

    ratings = [row["points"].value for row in result]
    assert ratings == sorted(ratings, reverse=True)
    benchmark.extra_info["contents"] = size
    benchmark.extra_info["q3_matches"] = len(result)

    # Q3 requires a rating: unrated content drops relative to Q2
    q2 = social_album("Mole Antonelliana", friend_of="oscar",
                      radius_km=0.3)
    benchmark.extra_info["q2_matches"] = len(q2.fetch(evaluator))
