"""FED — the federated architecture extension (paper §6).

Measures the federation primitives: publish→notify fan-out through the
PubSubHubbub-style hub ("near-instant notifications"), federated home
timeline merging across nodes, Salmon round trips and WebFinger lookup
throughput.
"""

from __future__ import annotations

import pytest

from repro.federation import Federation, PhotoFrame

N_NODES = 4
MEMBERS_PER_NODE = 3
POSTS_PER_MEMBER = 20


@pytest.fixture(scope="module")
def federation_world():
    federation = Federation()
    nodes = []
    for n in range(N_NODES):
        node = federation.create_node(
            f"family{n}.example.net", f"key{n}".encode()
        )
        for m in range(MEMBERS_PER_NODE):
            node.add_member(f"user{m}", f"User {n}.{m}")
        nodes.append(node)
    # everyone on node 0 follows everyone on the other nodes
    for m in range(MEMBERS_PER_NODE):
        for other in nodes[1:]:
            for remote_member in other.members():
                nodes[0].follow(
                    f"user{m}", other.acct(remote_member)
                )
    # publish a history
    timestamp = 1000
    for node in nodes:
        for member in node.members():
            for p in range(POSTS_PER_MEMBER):
                timestamp += 1
                node.publish(
                    member, f"post {p}",
                    f"http://{node.domain}/m/{member}/{p}.jpg",
                    timestamp,
                )
    return federation, nodes


def bench_publish_fanout(benchmark, federation_world):
    """One publish delivered to all cross-node subscribers."""
    federation, nodes = federation_world
    source = nodes[1]
    counter = [2000]

    def run():
        counter[0] += 1
        return source.publish(
            "user0", "fanout probe",
            f"http://x/{counter[0]}.jpg", counter[0],
        )

    benchmark(run)
    subscribers = federation.hub.subscribers(source.topic("user0"))
    benchmark.extra_info["subscribers"] = len(subscribers)


def bench_home_timeline_merge(benchmark, federation_world):
    _, nodes = federation_world
    home = benchmark(lambda: nodes[0].home_timeline(limit=50))
    assert len(home) == 50
    benchmark.extra_info["sources"] = (
        MEMBERS_PER_NODE + 1  # local timelines + federated inbox
    )


def bench_salmon_roundtrip(benchmark, federation_world):
    _, nodes = federation_world
    target_content = nodes[1].contents()[0]
    counter = [0]

    def run():
        counter[0] += 1
        return nodes[0].comment(
            "user0", target_content.url, f"comment {counter[0]}",
            5000 + counter[0],
        )

    benchmark(run)
    assert nodes[1].content(target_content.url).comments


def bench_webfinger_lookup(benchmark, federation_world):
    federation, nodes = federation_world
    accounts = [
        node.acct(member)
        for node in nodes
        for member in node.members()
    ]

    descriptors = benchmark(
        lambda: [federation.directory.lookup(a) for a in accounts]
    )
    assert len(descriptors) == N_NODES * MEMBERS_PER_NODE


def bench_photoframe_refresh(benchmark, federation_world):
    federation, nodes = federation_world
    frame = PhotoFrame(federation.ssdp)
    count = benchmark(lambda: frame.refresh("family"))
    benchmark.extra_info["slideshow_items"] = count
