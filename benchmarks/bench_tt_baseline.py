"""TT — legacy triple-tag navigation vs. SPARQL virtual albums (§1.1).

The platform's pre-semantic navigation filtered content by triple-tag
namespace/predicate/value (e.g. ``people:fn=Walter+Goix``). We measure
that baseline against the semantic album answering the corresponding
richer question, and record the expressiveness gap: the tag album can
only match exact tag strings, the SPARQL album composes geo + social +
rating criteria the tag system cannot express at all.
"""

from __future__ import annotations

import pytest

from repro.core import rated_album
from repro.platform import TagAlbum, by_place_type


def bench_tag_album_filter(benchmark, sized_platform):
    size, platform = sized_platform
    contents = platform.contents()
    album = TagAlbum(namespace="address", predicate="city",
                     value="Turin")

    items = benchmark(lambda: album.select(contents))

    benchmark.extra_info["contents"] = size
    benchmark.extra_info["matches"] = len(items)
    assert items, "Turin workload content carries address:city=Turin"


def bench_tag_album_by_namespace_only(benchmark, small_platform):
    contents = small_platform.contents()
    album = TagAlbum(namespace="cell")
    items = benchmark(lambda: album.select(contents))
    benchmark.extra_info["matches"] = len(items)


def bench_sparql_album_equivalent(benchmark, sized_platform):
    """The semantic album answering the composite question the tag
    system cannot: near a monument, by friends, rating-ordered."""
    size, platform = sized_platform
    evaluator = platform.evaluator()
    album = rated_album("Mole Antonelliana", friend_of="oscar",
                        radius_km=0.3)

    result = benchmark(lambda: album.fetch(evaluator))

    benchmark.extra_info["contents"] = size
    benchmark.extra_info["matches"] = len(result)


def test_expressiveness_gap(small_platform):
    """The tag system cannot express 'near monument X' at all — its
    closest proxy (exact city tag) over-selects relative to the geo
    album."""
    from repro.core import geo_album

    contents = small_platform.contents()
    tag_proxy = TagAlbum(
        namespace="address", predicate="city", value="Turin"
    ).select(contents)
    geo_links = geo_album("Mole Antonelliana", radius_km=0.3).links(
        small_platform.evaluator()
    )
    print(
        f"\nTT: city-tag proxy selects {len(tag_proxy)} items; geo "
        f"album selects {len(geo_links)} near the monument"
    )
    assert len(tag_proxy) > len(geo_links)
