"""INF — RDFS inference materialization (§2.3's "inference
capabilities").

Measures the closure cost over the LOD corpus + platform triples and
the query-side payoff: with inference on, class-hierarchy queries
(``?p a dbpo:Place``) match subclasses without enumerating them.
"""

from __future__ import annotations

import pytest

from repro.lod import build_lod_corpus, build_ontology
from repro.rdf import DBPO, RDF
from repro.rdf.inference import rdfs_closure
from repro.sparql import Evaluator


def bench_closure_over_corpus(benchmark):
    schema = build_ontology()

    def run():
        corpus = build_lod_corpus(cached=False)
        union = corpus.union()
        added = rdfs_closure(union, schema)
        return union, added

    union, added = benchmark(run)
    benchmark.extra_info["triples_before"] = len(union) - added
    benchmark.extra_info["triples_added"] = added
    assert added > 0


def bench_inferred_class_query(benchmark):
    """Query over the materialized closure."""
    corpus = build_lod_corpus(cached=False)
    union = corpus.union()
    # strip the redundant explicit typing: inference must supply it
    union.remove((None, RDF.type, DBPO.Place))
    rdfs_closure(union, build_ontology())
    evaluator = Evaluator(union)

    result = benchmark(
        lambda: evaluator.evaluate(
            "PREFIX dbpo: <http://dbpedia.org/ontology/> "
            "SELECT ?p WHERE { ?p a dbpo:Place }"
        )
    )
    benchmark.extra_info["places"] = len(result)
    assert len(result) > 10


def test_platform_inference_flag():
    """Platform(inference=True) materializes the closure in its union
    graph, so sioc:Post queries see the platform's MicroblogPosts."""
    from repro.platform import Capture, Platform
    from repro.sparql import Point

    platform = Platform(inference=True)
    platform.register_user("walter", "Walter Goix")
    platform.upload(Capture(
        username="walter", title="Mole", tags=(),
        timestamp=1000, point=Point(7.6930, 45.0690),
    ))
    result = platform.evaluator().evaluate(
        "PREFIX sioc: <http://rdfs.org/sioc/ns#> "
        "SELECT ?p WHERE { ?p a sioc:Post }"
    )
    print(f"\nINF: sioc:Post matches via inference: {len(result)}")
    assert len(result) == 1
