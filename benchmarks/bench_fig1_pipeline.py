"""FIG1 — the semantic annotation pipeline (paper Figure 1).

Reproduces the pipeline as a measurable artifact: end-to-end latency per
title, per-stage latencies (language id, morphological analysis,
brokering+filtering) and the acceptance/abstention statistics over the
gold corpus. The paper gives no numbers for this figure; EXPERIMENTS.md
records what we measure.
"""

from __future__ import annotations

import pytest

from _harness import record, timed_samples
from repro.nlp import MorphologicalAnalyzer, default_detector
from repro.obs import InMemorySpanExporter, Tracer, set_tracer
from repro.workloads import GOLD_CORPUS, score_pipeline

TITLES = [example.title for example in GOLD_CORPUS]


def test_pipeline_quality_headline(annotator):
    """The summary row: precision/recall over the gold corpus."""
    score = score_pipeline(annotator)
    assert score.precision >= 0.9
    assert score.recall >= 0.9
    print(
        f"\nFIG1 gold-corpus quality: precision={score.precision:.3f} "
        f"recall={score.recall:.3f} f1={score.f1:.3f} "
        f"language-accuracy={score.language_accuracy:.3f} "
        f"abstention={score.abstain_correct}/{score.abstain_expected}"
    )


def bench_full_pipeline(benchmark, annotator):
    """End-to-end annotation latency over the whole gold corpus."""

    def run():
        return [annotator.annotate(t) for t in TITLES]

    results = benchmark(run)
    annotated = sum(1 for r in results if r.annotations)
    benchmark.extra_info["titles"] = len(TITLES)
    benchmark.extra_info["titles_with_annotations"] = annotated


def bench_tracing_overhead(benchmark, annotator):
    """The observability tax gate: running the full gold-corpus
    pipeline with an enabled tracer (in-memory exporter) must stay
    within 1.10x of the uninstrumented run (measured ~1.05x).

    Plain and traced rounds are interleaved and compared on their
    best-of-N times so scheduler noise and machine-load drift cancel
    instead of deciding the verdict."""

    def run():
        for title in TITLES:
            annotator.annotate(title)

    run()
    run()  # warm resolver caches out of the timed region

    buffer = InMemorySpanExporter(capacity=1 << 16)
    plain_samples = []
    traced_samples = []
    for _ in range(15):
        plain_samples.extend(timed_samples(run, repeats=1))
        previous = set_tracer(
            Tracer(enabled=True, exporters=[buffer])
        )
        try:
            traced_samples.extend(timed_samples(run, repeats=1))
        finally:
            set_tracer(previous)

    plain_ms = min(plain_samples)
    traced_ms = min(traced_samples)
    ratio = traced_ms / plain_ms
    benchmark.extra_info["plain_ms"] = round(plain_ms, 2)
    benchmark.extra_info["traced_ms"] = round(traced_ms, 2)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 3)
    benchmark.extra_info["spans"] = len(buffer.spans())
    record(
        "tracing_overhead",
        traced_samples,
        extra={
            "plain_median_ms": round(plain_ms, 2),
            "overhead_ratio": round(ratio, 3),
            "spans": len(buffer.spans()),
        },
    )
    assert ratio <= 1.10, (
        f"tracing overhead {ratio:.3f}x exceeds the 1.10x budget "
        f"(plain {plain_ms:.2f} ms, traced {traced_ms:.2f} ms)"
    )

    benchmark(run)


def bench_stage_language_detection(benchmark):
    detector = default_detector()
    benchmark(lambda: [detector.detect(t) for t in TITLES])


def bench_stage_morphology(benchmark):
    analyzer = MorphologicalAnalyzer("it")
    benchmark(lambda: [analyzer.proper_nouns(t) for t in TITLES])


def bench_stage_broker_and_filter(benchmark, annotator):
    """Brokering+filtering isolated: pre-computed word lists."""
    word_lists = []
    for title in TITLES:
        result = annotator.annotate(title)
        word_lists.append((result.words, title, result.language))

    def run():
        outcomes = []
        for words, title, language in word_lists:
            broker_result = annotator.broker.resolve(
                words, text=title, language=language
            )
            for word, candidates in broker_result.per_word.items():
                outcomes.append(
                    annotator.filter.filter_word(word, candidates)
                )
        return outcomes

    benchmark(run)
