PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint-tools self-check lint-concurrency lint-effects \
	sanitize sanitize-store benchmarks bench-store bench-loadgen \
	slo-smoke

## The CI gate: tier-1 tests + static analysis + the repo's own lint.
check: test lint-tools self-check lint-concurrency lint-effects

test:
	$(PYTHON) -m pytest -x -q

## ruff/mypy run when installed (the `lint` extra); skipped with a
## notice otherwise so `make check` works in minimal containers.
lint-tools:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src/repro; \
	else \
		echo "ruff not installed — skipping (pip install -e '.[lint]')"; \
	fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed — skipping (pip install -e '.[lint]')"; \
	fi

self-check:
	$(PYTHON) -m repro lint --self-check
	$(PYTHON) -m repro lint examples/ benchmarks/

## CC-rule lock-discipline lint over the package's own source.
lint-concurrency:
	$(PYTHON) -m repro lint --concurrency

## EF-rule store-effect lint; warnings fail too so missing
## Graph-writes contracts can't creep in.
lint-effects:
	$(PYTHON) -m repro lint --effects --fail-on warning

## Run the gold batch workload under the runtime lock sanitizer.
sanitize:
	$(PYTHON) -m repro sanitize --contents 60 --workers 4

## Same workload with the store-access sanitizer stacked on top.
sanitize-store:
	$(PYTHON) -m repro sanitize --store --contents 60 --workers 4

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

## Storage-engine guards: snapshot restart must beat WAL replay >= 2x;
## group commit must beat per-write commits >= 2x for 8 writers; an
## op-count checkpoint watermark must bound the WAL over 10k commits.
## Reader throughput under an active writer is recorded unguarded.
bench-store:
	$(PYTHON) -m pytest benchmarks/bench_store.py \
		benchmarks/bench_group_commit.py --benchmark-only -q

## Observability guards: the default traffic mix must meet the default
## SLO spec, and the sampling profiler must stay <= 1.10x overhead.
bench-loadgen:
	$(PYTHON) -m pytest benchmarks/bench_loadgen.py \
		--benchmark-only -q

## One small SLO-checked load run straight through the CLI — the same
## invocation the slo-smoke CI job gates on.
slo-smoke:
	$(PYTHON) -m repro obs loadgen --mix default --seed 7 \
		--ops 48 --workers 4 --slo
