"""Synthetic Linked Open Data: DBpedia, Geonames, LinkedGeoData.

Deterministic stand-ins for the dataset dumps the paper imports into its
triple store, including redirects, disambiguation pages and multilingual
labels so the annotation pipeline's edge cases are exercised.
"""

from .datasets import LodCorpus, build_lod_corpus
from .dbpedia import (
    DBPEDIA_GRAPH_IRI,
    build_dbpedia,
    follow_redirect,
    is_disambiguation_page,
)
from .geonames import (
    GEONAMES_GRAPH_IRI,
    build_geonames,
    geonames_uri,
    nearest_city_feature,
)
from .linkedgeodata import LINKEDGEODATA_GRAPH_IRI, build_linkedgeodata
from .ontology import ONTOLOGY_GRAPH_IRI, build_ontology
from .world import (
    CITIES,
    DISAMBIGUATIONS,
    PEOPLE,
    POIS,
    REDIRECTS,
    CityInfo,
    DisambiguationInfo,
    PersonInfo,
    PoiInfo,
    RedirectInfo,
    city_by_key,
    poi_by_key,
)

__all__ = [
    "CITIES",
    "CityInfo",
    "DBPEDIA_GRAPH_IRI",
    "DISAMBIGUATIONS",
    "DisambiguationInfo",
    "GEONAMES_GRAPH_IRI",
    "LINKEDGEODATA_GRAPH_IRI",
    "LodCorpus",
    "ONTOLOGY_GRAPH_IRI",
    "PEOPLE",
    "POIS",
    "PersonInfo",
    "PoiInfo",
    "REDIRECTS",
    "RedirectInfo",
    "build_dbpedia",
    "build_geonames",
    "build_linkedgeodata",
    "build_lod_corpus",
    "build_ontology",
    "city_by_key",
    "follow_redirect",
    "geonames_uri",
    "is_disambiguation_page",
    "nearest_city_feature",
    "poi_by_key",
]
