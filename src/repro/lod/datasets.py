"""Assembling the LOD corpus into a queryable dataset.

Graph-writes: the assembled dataset's graphs, during corpus
loading only

Mirrors the paper's Virtuoso deployment: the platform's own triples plus
the imported DBpedia / Geonames / LinkedGeoData dumps, each in its own
named graph, queried together through the union view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..rdf.graph import Dataset, Graph
from .dbpedia import DBPEDIA_GRAPH_IRI, build_dbpedia
from .geonames import GEONAMES_GRAPH_IRI, build_geonames
from .linkedgeodata import LINKEDGEODATA_GRAPH_IRI, build_linkedgeodata


@dataclass
class LodCorpus:
    """The three imported datasets, individually addressable."""

    dbpedia: Graph
    geonames: Graph
    linkedgeodata: Graph

    def as_dataset(self, platform_graph: Optional[Graph] = None) -> Dataset:
        """A named-graph dataset, optionally including platform triples."""
        ds = Dataset()
        _copy_into(ds.graph(DBPEDIA_GRAPH_IRI), self.dbpedia)
        _copy_into(ds.graph(GEONAMES_GRAPH_IRI), self.geonames)
        _copy_into(ds.graph(LINKEDGEODATA_GRAPH_IRI), self.linkedgeodata)
        if platform_graph is not None:
            ds.default.add_all(platform_graph)
        return ds

    def union(self, platform_graph: Optional[Graph] = None) -> Graph:
        """A merged graph of the corpus (plus platform triples if given)."""
        merged = Graph()
        merged.add_all(self.dbpedia)
        merged.add_all(self.geonames)
        merged.add_all(self.linkedgeodata)
        if platform_graph is not None:
            merged.add_all(platform_graph)
        return merged


def _copy_into(target: Graph, source: Graph) -> None:
    target.add_all(source)


_cached_corpus: Optional[LodCorpus] = None


def build_lod_corpus(cached: bool = True) -> LodCorpus:
    """Build (or reuse) the deterministic synthetic LOD corpus.

    The corpus is immutable by convention; pass ``cached=False`` to get
    private graph instances you intend to mutate.
    """
    global _cached_corpus
    if cached and _cached_corpus is not None:
        return _cached_corpus
    corpus = LodCorpus(
        dbpedia=build_dbpedia(),
        geonames=build_geonames(),
        linkedgeodata=build_linkedgeodata(),
    )
    if cached:
        _cached_corpus = corpus
    return corpus
