"""Ontology (schema) triples for the synthetic LOD world.

Graph-writes: the fresh ontology graph built and returned by this
module

The class hierarchies and property signatures that RDFS inference
(:mod:`repro.rdf.inference`) chains over — mirroring the fragments of
the DBpedia ontology, the LinkedGeoData ontology and FOAF that the
paper's queries touch.
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.namespace import DBPO, FOAF, GN, LGDO, RDFS, SIOC, SIOCT
from ..rdf.terms import URIRef

ONTOLOGY_GRAPH_IRI = URIRef("urn:graph:ontology")


def build_ontology() -> Graph:
    """The schema graph used for inference-backed queries."""
    g = Graph(ONTOLOGY_GRAPH_IRI)

    # DBpedia ontology fragment
    g.add((DBPO.City, RDFS.subClassOf, DBPO.PopulatedPlace))
    g.add((DBPO.PopulatedPlace, RDFS.subClassOf, DBPO.Place))
    for concrete in (
        DBPO.Monument, DBPO.Museum, DBPO.Church, DBPO.Park,
        DBPO.Station, DBPO.Stadium, DBPO.Restaurant, DBPO.Hotel,
    ):
        g.add((concrete, RDFS.subClassOf, DBPO.Place))
    g.add((DBPO.birthPlace, RDFS.domain, DBPO.Person))
    g.add((DBPO.birthPlace, RDFS.range, DBPO.Place))
    g.add((DBPO.location, RDFS.range, DBPO.Place))
    g.add((DBPO.country, RDFS.range, DBPO.Place))

    # LinkedGeoData ontology fragment
    for tourism in (
        LGDO.Monument, LGDO.Museum, LGDO.PlaceOfWorship, LGDO.Park,
        LGDO.Fountain, LGDO.Stadium,
    ):
        g.add((tourism, RDFS.subClassOf, LGDO.Tourism))
    g.add((LGDO.Tourism, RDFS.subClassOf, LGDO.Amenity))
    g.add((LGDO.Restaurant, RDFS.subClassOf, LGDO.Amenity))
    g.add((LGDO.Hotel, RDFS.subClassOf, LGDO.Amenity))
    g.add((LGDO.City, RDFS.subClassOf, LGDO.Place))
    g.add((LGDO.Amenity, RDFS.subClassOf, LGDO.Place))

    # FOAF / SIOC fragments
    g.add((FOAF.knows, RDFS.domain, FOAF.Person))
    g.add((FOAF.knows, RDFS.range, FOAF.Person))
    g.add((FOAF.Person, RDFS.subClassOf, FOAF.Agent))
    g.add((SIOCT.MicroblogPost, RDFS.subClassOf, SIOC.Post))

    # Geonames
    g.add((GN.Feature, RDFS.subClassOf, LGDO.Place))

    return g
