"""Synthetic Geonames graph builder.

Graph-writes: the fresh graph built and returned by this module

City-level features only — exactly what the paper's contextualization
uses ("the (nearest) city-level resource is returned", §2.2.1). Each
feature links to its DBpedia counterpart with ``owl:sameAs`` so the
graph-priority filter can recognize that a Geonames candidate and a
DBpedia candidate denote the same place.
"""

from __future__ import annotations

from typing import Optional

from ..rdf.graph import Graph
from ..rdf.namespace import DBPR, GEO, GN, GNR, OWL, RDF, RDFS
from ..rdf.terms import Literal, URIRef
from ..sparql.geo import Point
from .world import CITIES

GEONAMES_GRAPH_IRI = URIRef("http://sws.geonames.org")


def geonames_uri(geonames_id: int) -> URIRef:
    """The canonical Geonames resource URI (trailing slash included)."""
    return GNR[f"{geonames_id}/"]


def build_geonames() -> Graph:
    """Build the synthetic Geonames graph."""
    g = Graph(GEONAMES_GRAPH_IRI)
    for city in CITIES:
        resource = geonames_uri(city.geonames_id)
        g.add((resource, RDF.type, GN.Feature))
        g.add((resource, GN.name, Literal(city.labels["en"])))
        g.add((resource, RDFS.label, Literal(city.labels["en"])))
        for lang, label in city.labels.items():
            g.add(
                (resource, GN.alternateName, Literal(label, lang=lang))
            )
        g.add((resource, GN.featureClass, GN.P))
        g.add((resource, GN.featureCode, GN["P.PPL"]))
        g.add((resource, GN.population, Literal(city.population)))
        g.add((resource, GN.countryCode,
               Literal(_COUNTRY_CODES.get(city.country, "XX"))))
        point = Point(city.longitude, city.latitude)
        g.add((resource, GEO.geometry, point.to_literal()))
        g.add((resource, GEO.lat, Literal(city.latitude)))
        g.add((resource, GEO.long, Literal(city.longitude)))
        g.add((resource, OWL.sameAs, DBPR[city.key]))
    return g


_COUNTRY_CODES = {
    "Italy": "IT",
    "France": "FR",
    "Spain": "ES",
    "Germany": "DE",
}


def nearest_city_feature(graph: Graph, point: Point) -> Optional[URIRef]:
    """The Geonames feature nearest to ``point`` (None on empty graph).

    This is the locationing primitive the context platform uses to attach
    a guaranteed-valid Geonames reference to every content's location.
    """
    from ..sparql.geo import haversine_km, try_parse_point

    best: Optional[URIRef] = None
    best_distance = float("inf")
    for subject, _, obj in graph.triples((None, GEO.geometry, None)):
        feature_point = try_parse_point(obj)
        if feature_point is None:
            continue
        distance = haversine_km(point, feature_point)
        if distance < best_distance:
            best = subject
            best_distance = distance
    return best
