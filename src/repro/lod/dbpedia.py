"""Synthetic DBpedia graph builder.

Graph-writes: the fresh graph built and returned by this module

Reproduces the structures the annotation pipeline depends on:
multilingual ``rdfs:label``/``dbpo:abstract``, ontology types,
``geo:geometry`` points, ``dbpo:wikiPageRedirects`` (the paper's query
"follows resource redirections to avoid returning disambiguation pages")
and ``dbpo:wikiPageDisambiguates`` pages (the validation step checks for
that property and discards such candidates).
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.namespace import DBPO, DBPR, FOAF, GEO, RDF, RDFS
from ..rdf.terms import Literal, URIRef
from ..sparql.geo import Point
from .world import (
    CITIES,
    DISAMBIGUATIONS,
    MINOR_RESOURCES,
    PEOPLE,
    POIS,
    REDIRECTS,
)

#: PoiInfo.category → DBpedia ontology class (besides dbpo:Place).
_CATEGORY_TYPES = {
    "monument": DBPO.Monument,
    "museum": DBPO.Museum,
    "church": DBPO.Church,
    "park": DBPO.Park,
    "station": DBPO.Station,
    "stadium": DBPO.Stadium,
    "fountain": DBPO.Monument,
    "restaurant": DBPO.Restaurant,
    "hotel": DBPO.Hotel,
}

DBPEDIA_GRAPH_IRI = URIRef("http://dbpedia.org")


def build_dbpedia() -> Graph:
    """Build the synthetic DBpedia graph."""
    g = Graph(DBPEDIA_GRAPH_IRI)

    for city in CITIES:
        resource = DBPR[city.key]
        g.add((resource, RDF.type, DBPO.Place))
        g.add((resource, RDF.type, DBPO.PopulatedPlace))
        g.add((resource, RDF.type, DBPO.City))
        for lang, label in city.labels.items():
            g.add((resource, RDFS.label, Literal(label, lang=lang)))
        for lang, abstract in city.abstracts.items():
            g.add((resource, DBPO.abstract, Literal(abstract, lang=lang)))
        point = Point(city.longitude, city.latitude)
        g.add((resource, GEO.geometry, point.to_literal()))
        g.add((resource, GEO.lat, Literal(city.latitude)))
        g.add((resource, GEO.long, Literal(city.longitude)))
        g.add((resource, DBPO.country, DBPR[city.country]))
        g.add((resource, DBPO.populationTotal, Literal(city.population)))

    for poi in POIS:
        if not poi.in_dbpedia:
            continue
        resource = DBPR[poi.key]
        g.add((resource, RDF.type, DBPO.Place))
        category_type = _CATEGORY_TYPES.get(poi.category)
        if category_type is not None:
            g.add((resource, RDF.type, category_type))
        for lang, label in poi.labels.items():
            g.add((resource, RDFS.label, Literal(label, lang=lang)))
        for lang, abstract in poi.abstracts.items():
            g.add((resource, DBPO.abstract, Literal(abstract, lang=lang)))
        point = Point(poi.longitude, poi.latitude)
        g.add((resource, GEO.geometry, point.to_literal()))
        g.add((resource, GEO.lat, Literal(poi.latitude)))
        g.add((resource, GEO.long, Literal(poi.longitude)))
        g.add((resource, DBPO.location, DBPR[poi.city]))

    for person in PEOPLE:
        resource = DBPR[person.key]
        g.add((resource, RDF.type, DBPO.Person))
        g.add((resource, RDF.type, FOAF.Person))
        for lang, label in person.labels.items():
            g.add((resource, RDFS.label, Literal(label, lang=lang)))
        for lang, abstract in person.abstracts.items():
            g.add((resource, DBPO.abstract, Literal(abstract, lang=lang)))
        if person.birth_city is not None:
            g.add((resource, DBPO.birthPlace, DBPR[person.birth_city]))

    for redirect in REDIRECTS:
        g.add(
            (DBPR[redirect.source], DBPO.wikiPageRedirects,
             DBPR[redirect.target])
        )
        # redirect pages keep a label so lookups can hit them
        target_label = redirect.source.replace("_", " ")
        g.add((DBPR[redirect.source], RDFS.label,
               Literal(target_label, lang="en")))

    for key, labels in MINOR_RESOURCES.items():
        resource = DBPR[key]
        g.add((resource, RDF.type, DBPO.Place))
        for lang, label in labels.items():
            g.add((resource, RDFS.label, Literal(label, lang=lang)))

    for page in DISAMBIGUATIONS:
        resource = DBPR[page.key]
        g.add((resource, RDF.type, DBPO.Disambiguation))
        g.add((resource, RDFS.label, Literal(page.label, lang="en")))
        for option in page.options:
            g.add((resource, DBPO.wikiPageDisambiguates, DBPR[option]))

    return g


def is_disambiguation_page(graph: Graph, resource: URIRef) -> bool:
    """True when ``resource`` carries the ``disambiguates`` property —
    the validation check of §2.2.2."""
    return any(
        True
        for _ in graph.triples((resource, DBPO.wikiPageDisambiguates, None))
    )


def follow_redirect(graph: Graph, resource: URIRef) -> URIRef:
    """Follow ``dbpo:wikiPageRedirects`` chains (cycle-safe)."""
    seen = {resource}
    current = resource
    while True:
        target = graph.value(current, DBPO.wikiPageRedirects)
        if target is None or target in seen:
            return current
        seen.add(target)
        current = target
