"""The deterministic synthetic world behind the LOD datasets.

The paper imports DBpedia, Geonames and LinkedGeoData dumps into its
triple store. Offline, we generate a compact but behaviourally faithful
world instead: European cities, their monuments and commercial POIs,
a few celebrities, plus the *pathological* structures the annotation
pipeline must survive — redirects ("Coliseum" → "Colosseum"),
disambiguation pages ("Paris" the city vs. the Trojan prince, "Mole" the
animal vs. the monument) and multilingual labels/abstracts.

Everything here is plain data; the graph builders in
:mod:`repro.lod.dbpedia` / :mod:`repro.lod.geonames` /
:mod:`repro.lod.linkedgeodata` turn it into RDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CityInfo:
    """A city present in all three datasets."""

    key: str               # DBpedia local name, e.g. "Turin"
    geonames_id: int
    longitude: float
    latitude: float
    country: str
    population: int
    labels: Dict[str, str]          # lang → label
    abstracts: Dict[str, str]       # lang → abstract


@dataclass(frozen=True)
class PoiInfo:
    """A point of interest (monument, museum, restaurant...)."""

    key: str                # DBpedia/LGD local name
    city: str               # CityInfo.key
    category: str           # monument|museum|church|park|station|stadium|
    #                         fountain|restaurant|hotel|tourism
    longitude: float
    latitude: float
    labels: Dict[str, str]
    abstracts: Dict[str, str] = field(default_factory=dict)
    website: Optional[str] = None
    commercial: bool = False  # excluded from POI→DBpedia analysis (§2.2.1)
    in_dbpedia: bool = True   # restaurants/hotels usually are not


@dataclass(frozen=True)
class PersonInfo:
    """A celebrity present in DBpedia (and Evri)."""

    key: str
    labels: Dict[str, str]
    abstracts: Dict[str, str]
    birth_city: Optional[str] = None


@dataclass(frozen=True)
class RedirectInfo:
    """A DBpedia redirect: alternate title → canonical resource."""

    source: str
    target: str


@dataclass(frozen=True)
class DisambiguationInfo:
    """A DBpedia disambiguation page listing candidate resources."""

    key: str                 # e.g. "Paris_(disambiguation)"
    label: str
    options: Tuple[str, ...]  # local names of disambiguated resources


CITIES: List[CityInfo] = [
    CityInfo(
        key="Turin",
        geonames_id=3165524,
        longitude=7.6869,
        latitude=45.0703,
        country="Italy",
        population=872_367,
        labels={"en": "Turin", "it": "Torino", "fr": "Turin",
                "es": "Turín", "de": "Turin"},
        abstracts={
            "en": "Turin is a city in northern Italy, capital of "
                  "Piedmont, known for its baroque architecture and the "
                  "Mole Antonelliana.",
            "it": "Torino è una città dell'Italia settentrionale, "
                  "capoluogo del Piemonte, famosa per la sua architettura "
                  "barocca e la Mole Antonelliana.",
        },
    ),
    CityInfo(
        key="Milan",
        geonames_id=3173435,
        longitude=9.1900,
        latitude=45.4642,
        country="Italy",
        population=1_366_180,
        labels={"en": "Milan", "it": "Milano", "fr": "Milan",
                "es": "Milán", "de": "Mailand"},
        abstracts={
            "en": "Milan is a metropolis in Italy's Lombardy region, "
                  "a global capital of fashion and design.",
            "it": "Milano è una metropoli della Lombardia, capitale "
                  "mondiale della moda e del design.",
        },
    ),
    CityInfo(
        key="Rome",
        geonames_id=3169070,
        longitude=12.4964,
        latitude=41.9028,
        country="Italy",
        population=2_873_000,
        labels={"en": "Rome", "it": "Roma", "fr": "Rome",
                "es": "Roma", "de": "Rom"},
        abstracts={
            "en": "Rome is the capital city of Italy, home of the "
                  "Colosseum and the Roman Forum.",
            "it": "Roma è la capitale d'Italia, sede del Colosseo e dei "
                  "Fori Imperiali.",
        },
    ),
    CityInfo(
        key="Paris",
        geonames_id=2988507,
        longitude=2.3522,
        latitude=48.8566,
        country="France",
        population=2_148_000,
        labels={"en": "Paris", "it": "Parigi", "fr": "Paris",
                "es": "París", "de": "Paris"},
        abstracts={
            "en": "Paris is the capital of France, famous for the "
                  "Eiffel Tower and the Louvre.",
            "it": "Parigi è la capitale della Francia, famosa per la "
                  "Torre Eiffel e il Louvre.",
        },
    ),
    CityInfo(
        key="Barcelona",
        geonames_id=3128760,
        longitude=2.1734,
        latitude=41.3851,
        country="Spain",
        population=1_620_000,
        labels={"en": "Barcelona", "it": "Barcellona", "fr": "Barcelone",
                "es": "Barcelona", "de": "Barcelona"},
        abstracts={
            "en": "Barcelona is the cosmopolitan capital of Spain's "
                  "Catalonia region, defined by Gaudí's architecture.",
            "es": "Barcelona es la capital cosmopolita de Cataluña, "
                  "definida por la arquitectura de Gaudí.",
        },
    ),
    CityInfo(
        key="Berlin",
        geonames_id=2950159,
        longitude=13.4050,
        latitude=52.5200,
        country="Germany",
        population=3_769_000,
        labels={"en": "Berlin", "it": "Berlino", "fr": "Berlin",
                "es": "Berlín", "de": "Berlin"},
        abstracts={
            "en": "Berlin is Germany's capital, known for the "
                  "Brandenburg Gate and its art scene.",
            "de": "Berlin ist die Hauptstadt Deutschlands, bekannt für "
                  "das Brandenburger Tor.",
        },
    ),
    CityInfo(
        key="Florence",
        geonames_id=3176959,
        longitude=11.2558,
        latitude=43.7696,
        country="Italy",
        population=382_258,
        labels={"en": "Florence", "it": "Firenze", "fr": "Florence",
                "es": "Florencia", "de": "Florenz"},
        abstracts={
            "en": "Florence is the capital of Tuscany and the cradle of "
                  "the Renaissance.",
            "it": "Firenze è il capoluogo della Toscana e la culla del "
                  "Rinascimento.",
        },
    ),
]

POIS: List[PoiInfo] = [
    # --- Turin -----------------------------------------------------------
    PoiInfo(
        key="Mole_Antonelliana", city="Turin", category="monument",
        longitude=7.6934, latitude=45.0692,
        labels={"en": "Mole Antonelliana", "it": "Mole Antonelliana"},
        abstracts={
            "en": "The Mole Antonelliana is the landmark tower of Turin, "
                  "today housing the National Museum of Cinema.",
            "it": "La Mole Antonelliana è il monumento simbolo di "
                  "Torino, oggi sede del Museo Nazionale del Cinema.",
        },
    ),
    PoiInfo(
        key="Palazzo_Madama", city="Turin", category="monument",
        longitude=7.6858, latitude=45.0711,
        labels={"en": "Palazzo Madama", "it": "Palazzo Madama"},
        abstracts={"it": "Palazzo Madama è un palazzo storico di Torino "
                         "in Piazza Castello."},
    ),
    PoiInfo(
        key="Piazza_Castello", city="Turin", category="monument",
        longitude=7.6852, latitude=45.0710,
        labels={"en": "Piazza Castello", "it": "Piazza Castello"},
        abstracts={"it": "Piazza Castello è la piazza principale di "
                         "Torino."},
    ),
    PoiInfo(
        key="Museo_Egizio", city="Turin", category="museum",
        longitude=7.6843, latitude=45.0685,
        labels={"en": "Egyptian Museum", "it": "Museo Egizio"},
        abstracts={"it": "Il Museo Egizio di Torino ospita la più antica "
                         "collezione di antichità egizie."},
    ),
    PoiInfo(
        key="Parco_del_Valentino", city="Turin", category="park",
        longitude=7.6855, latitude=45.0554,
        labels={"en": "Parco del Valentino", "it": "Parco del Valentino"},
        abstracts={"it": "Il Parco del Valentino è un parco lungo il Po "
                         "a Torino."},
    ),
    PoiInfo(
        key="Gran_Madre_di_Dio", city="Turin", category="church",
        longitude=7.6995, latitude=45.0628,
        labels={"en": "Gran Madre", "it": "Gran Madre di Dio"},
        abstracts={"it": "La Gran Madre di Dio è una chiesa "
                         "neoclassica di Torino."},
    ),
    PoiInfo(
        key="Porta_Nuova_railway_station", city="Turin",
        category="station", longitude=7.6778, latitude=45.0625,
        labels={"en": "Porta Nuova railway station", "it": "Porta Nuova"},
        abstracts={"it": "Porta Nuova è la principale stazione "
                         "ferroviaria di Torino."},
    ),
    PoiInfo(
        key="Juventus_Stadium", city="Turin", category="stadium",
        longitude=7.6412, latitude=45.1096,
        labels={"en": "Juventus Stadium", "it": "Juventus Stadium"},
        abstracts={"en": "Juventus Stadium is a football stadium in "
                         "Turin."},
    ),
    # Turin restaurants / hotels (LinkedGeoData only, commercial)
    PoiInfo(
        key="Ristorante_Del_Cambio", city="Turin", category="restaurant",
        longitude=7.6860, latitude=45.0707,
        labels={"it": "Ristorante Del Cambio"},
        website="http://delcambio.example.org",
        commercial=True, in_dbpedia=False,
    ),
    PoiInfo(
        key="Trattoria_Valenza", city="Turin", category="restaurant",
        longitude=7.6921, latitude=45.0701,
        labels={"it": "Trattoria Valenza"},
        website="http://valenza.example.org",
        commercial=True, in_dbpedia=False,
    ),
    PoiInfo(
        key="Caffe_Mulassano", city="Turin", category="restaurant",
        longitude=7.6849, latitude=45.0706,
        labels={"it": "Caffè Mulassano"},
        website="http://mulassano.example.org",
        commercial=True, in_dbpedia=False,
    ),
    PoiInfo(
        key="Hotel_Principi", city="Turin", category="hotel",
        longitude=7.6801, latitude=45.0664,
        labels={"it": "Hotel Principi di Piemonte"},
        website="http://principi.example.org",
        commercial=True, in_dbpedia=False,
    ),
    # --- Rome ------------------------------------------------------------
    PoiInfo(
        key="Colosseum", city="Rome", category="monument",
        longitude=12.4924, latitude=41.8902,
        labels={"en": "Colosseum", "it": "Colosseo"},
        abstracts={
            "en": "The Colosseum is an ancient amphitheatre in the "
                  "centre of Rome, also known as the Roman Colosseum.",
            "it": "Il Colosseo è un anfiteatro di epoca romana al "
                  "centro di Roma.",
        },
    ),
    PoiInfo(
        key="Trevi_Fountain", city="Rome", category="fountain",
        longitude=12.4833, latitude=41.9009,
        labels={"en": "Trevi Fountain", "it": "Fontana di Trevi"},
        abstracts={"en": "The Trevi Fountain is the largest baroque "
                         "fountain in Rome."},
    ),
    PoiInfo(
        key="Pantheon,_Rome", city="Rome", category="monument",
        longitude=12.4769, latitude=41.8986,
        labels={"en": "Pantheon", "it": "Pantheon"},
        abstracts={"en": "The Pantheon is a former Roman temple in "
                         "Rome."},
    ),
    PoiInfo(
        key="Osteria_Romana", city="Rome", category="restaurant",
        longitude=12.4930, latitude=41.8910,
        labels={"it": "Osteria Romana"},
        website="http://osteriaromana.example.org",
        commercial=True, in_dbpedia=False,
    ),
    # --- Paris -----------------------------------------------------------
    PoiInfo(
        key="Eiffel_Tower", city="Paris", category="monument",
        longitude=2.2945, latitude=48.8584,
        labels={"en": "Eiffel Tower", "fr": "Tour Eiffel",
                "it": "Torre Eiffel"},
        abstracts={
            "en": "The Eiffel Tower is a wrought-iron lattice tower in "
                  "Paris.",
            "fr": "La tour Eiffel est une tour de fer puddlé à Paris.",
        },
    ),
    PoiInfo(
        key="Louvre", city="Paris", category="museum",
        longitude=2.3376, latitude=48.8606,
        labels={"en": "Louvre", "fr": "Musée du Louvre"},
        abstracts={"en": "The Louvre is the world's largest art "
                         "museum, in Paris."},
    ),
    PoiInfo(
        key="Notre-Dame_de_Paris", city="Paris", category="church",
        longitude=2.3499, latitude=48.8530,
        labels={"en": "Notre-Dame de Paris", "fr": "Notre-Dame de Paris"},
        abstracts={"fr": "Notre-Dame de Paris est la cathédrale de "
                         "Paris."},
    ),
    PoiInfo(
        key="Bistrot_Parisien", city="Paris", category="restaurant",
        longitude=2.2950, latitude=48.8580,
        labels={"fr": "Bistrot Parisien"},
        website="http://bistrot.example.org",
        commercial=True, in_dbpedia=False,
    ),
    # --- Barcelona ---------------------------------------------------------
    PoiInfo(
        key="Sagrada_Familia", city="Barcelona", category="church",
        longitude=2.1744, latitude=41.4036,
        labels={"en": "Sagrada Família", "es": "Sagrada Familia"},
        abstracts={"en": "The Sagrada Família is Gaudí's unfinished "
                         "basilica in Barcelona."},
    ),
    PoiInfo(
        key="Park_Guell", city="Barcelona", category="park",
        longitude=2.1527, latitude=41.4145,
        labels={"en": "Park Güell", "es": "Parque Güell"},
        abstracts={"en": "Park Güell is a public park designed by "
                         "Gaudí in Barcelona."},
    ),
    # --- Berlin ------------------------------------------------------------
    PoiInfo(
        key="Brandenburg_Gate", city="Berlin", category="monument",
        longitude=13.3777, latitude=52.5163,
        labels={"en": "Brandenburg Gate", "de": "Brandenburger Tor"},
        abstracts={"en": "The Brandenburg Gate is an 18th-century "
                         "monument in Berlin."},
    ),
    # --- Florence ------------------------------------------------------------
    PoiInfo(
        key="Ponte_Vecchio", city="Florence", category="monument",
        longitude=11.2531, latitude=43.7679,
        labels={"en": "Ponte Vecchio", "it": "Ponte Vecchio"},
        abstracts={"it": "Il Ponte Vecchio è un ponte medievale sull'"
                         "Arno a Firenze."},
    ),
    PoiInfo(
        key="Uffizi", city="Florence", category="museum",
        longitude=11.2556, latitude=43.7685,
        labels={"en": "Uffizi Gallery", "it": "Galleria degli Uffizi"},
        abstracts={"it": "Gli Uffizi sono uno dei musei più importanti "
                         "del mondo, a Firenze."},
    ),
]

PEOPLE: List[PersonInfo] = [
    PersonInfo(
        key="Leonardo_da_Vinci",
        labels={"en": "Leonardo da Vinci", "it": "Leonardo da Vinci"},
        abstracts={"en": "Leonardo da Vinci was an Italian Renaissance "
                         "polymath."},
        birth_city="Florence",
    ),
    PersonInfo(
        key="Giuseppe_Verdi",
        labels={"en": "Giuseppe Verdi", "it": "Giuseppe Verdi"},
        abstracts={"en": "Giuseppe Verdi was an Italian opera "
                         "composer."},
        birth_city="Milan",
    ),
    PersonInfo(
        key="Antonio_Gaudi",
        labels={"en": "Antoni Gaudí", "es": "Antoni Gaudí"},
        abstracts={"en": "Antoni Gaudí was a Catalan architect, author "
                         "of the Sagrada Família."},
        birth_city="Barcelona",
    ),
    PersonInfo(
        key="Paris_(mythology)",
        labels={"en": "Paris (mythology)"},
        abstracts={"en": "Paris is a figure of Greek mythology, prince "
                         "of Troy."},
    ),
    PersonInfo(
        key="Alessandro_Antonelli",
        labels={"en": "Alessandro Antonelli", "it": "Alessandro "
                                                    "Antonelli"},
        abstracts={"it": "Alessandro Antonelli fu l'architetto della "
                         "Mole Antonelliana."},
        birth_city="Turin",
    ),
]

REDIRECTS: List[RedirectInfo] = [
    RedirectInfo("Coliseum", "Colosseum"),
    RedirectInfo("Roman_Colosseum", "Colosseum"),
    RedirectInfo("Torino", "Turin"),
    RedirectInfo("Tour_Eiffel", "Eiffel_Tower"),
    RedirectInfo("Mole_(Turin)", "Mole_Antonelliana"),
    RedirectInfo("La_Sagrada_Familia", "Sagrada_Familia"),
]

DISAMBIGUATIONS: List[DisambiguationInfo] = [
    DisambiguationInfo(
        key="Paris_(disambiguation)",
        label="Paris",
        options=("Paris", "Paris_(mythology)"),
    ),
    DisambiguationInfo(
        key="Mole_(disambiguation)",
        label="Mole",
        options=("Mole_Antonelliana", "Mole_(animal)"),
    ),
    DisambiguationInfo(
        key="Turin_(disambiguation)",
        label="Turin",
        options=("Turin", "Turin,_New_York"),
    ),
]

#: Extra plain resources referenced only by disambiguation pages.
MINOR_RESOURCES: Dict[str, Dict[str, str]] = {
    "Mole_(animal)": {"en": "Mole (animal)"},
    "Turin,_New_York": {"en": "Turin, New York"},
}


def city_by_key(key: str) -> CityInfo:
    for city in CITIES:
        if city.key == key:
            return city
    raise KeyError(key)


def poi_by_key(key: str) -> PoiInfo:
    for poi in POIS:
        if poi.key == key:
            return poi
    raise KeyError(key)
