"""Synthetic LinkedGeoData graph builder.

Graph-writes: the fresh graph built and returned by this module

LinkedGeoData (OpenStreetMap as RDF) supplies the mashup query's
commercial layer: restaurants with websites, tourism attractions, and
city nodes typed ``lgdo:City``. Labels reuse the DBpedia language tags so
the mashup's label-join between ``lgdo:City`` nodes and ``dbpo:Place``
resources works exactly as in the paper's query (§4.1).
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.namespace import GEO, LGDO, LGDP, LGDR, RDF, RDFS
from ..rdf.terms import Literal, URIRef
from ..sparql.geo import Point
from .world import CITIES, POIS

LINKEDGEODATA_GRAPH_IRI = URIRef("http://linkedgeodata.org")

#: PoiInfo.category → LinkedGeoData ontology class.
_CATEGORY_TYPES = {
    "monument": LGDO.Monument,
    "museum": LGDO.Museum,
    "church": LGDO.PlaceOfWorship,
    "park": LGDO.Park,
    "fountain": LGDO.Fountain,
    "stadium": LGDO.Stadium,
    "station": LGDO.RailwayStation,
    "restaurant": LGDO.Restaurant,
    "hotel": LGDO.Hotel,
}

#: Categories additionally typed lgdo:Tourism (the mashup's third branch).
_TOURISM_CATEGORIES = frozenset(
    {"monument", "museum", "church", "park", "fountain", "stadium"}
)


def build_linkedgeodata() -> Graph:
    """Build the synthetic LinkedGeoData graph."""
    g = Graph(LINKEDGEODATA_GRAPH_IRI)

    for city in CITIES:
        node = LGDR[f"node_city_{city.key}"]
        g.add((node, RDF.type, LGDO.City))
        for lang, label in city.labels.items():
            g.add((node, RDFS.label, Literal(label, lang=lang)))
        point = Point(city.longitude, city.latitude)
        g.add((node, GEO.geometry, point.to_literal()))

    for poi in POIS:
        node = LGDR[f"node_{poi.key}"]
        category_type = _CATEGORY_TYPES.get(poi.category)
        if category_type is not None:
            g.add((node, RDF.type, category_type))
        if poi.category in _TOURISM_CATEGORIES:
            g.add((node, RDF.type, LGDO.Tourism))
        for lang, label in poi.labels.items():
            g.add((node, RDFS.label, Literal(label, lang=lang)))
        point = Point(poi.longitude, poi.latitude)
        g.add((node, GEO.geometry, point.to_literal()))
        if poi.website is not None:
            g.add((node, LGDP.website, URIRef(poi.website)))

    return g
