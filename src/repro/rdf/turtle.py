"""Turtle serializer and a pragmatic Turtle parser.

Graph-writes: the target graph of ``load_turtle`` only

Turtle output is what the platform's web interface exposes for "raw RDF"
views of a resource; the parser accepts the subset the library itself emits
plus the common shorthand forms (``@prefix``, ``a``, ``;``/``,`` lists,
numeric and boolean literals), which is sufficient to round-trip every
graph in the test suite.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple

from .graph import Graph, Triple
from .namespace import NamespaceManager, RDF
from .terms import (
    BNode,
    Literal,
    Term,
    URIRef,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    escape_literal,
    unescape_literal,
)


class TurtleError(ValueError):
    """Raised on malformed Turtle input."""


# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------


def _term_to_turtle(term: Term, nsm: NamespaceManager) -> str:
    if isinstance(term, URIRef):
        if term == RDF.type:
            return "a"
        compact = nsm.compact(str(term))
        return compact if compact else term.n3()
    if isinstance(term, Literal):
        if term.datatype in (XSD_INTEGER, XSD_BOOLEAN):
            return term.lexical
        if term.datatype is not None:
            compact = nsm.compact(str(term.datatype))
            if compact:
                return f'"{escape_literal(term.lexical)}"^^{compact}'
        return term.n3()
    return term.n3()


def serialize_turtle(graph: Graph) -> str:
    """Serialize ``graph`` grouping triples by subject and predicate."""
    nsm = graph.namespaces
    used_prefixes: Dict[str, str] = {}

    def compacting(term: Term) -> str:
        text = _term_to_turtle(term, nsm)
        if ":" in text and not text.startswith(("<", '"', "_:")):
            prefix = text.split(":", 1)[0]
            ns = nsm.namespace(prefix)
            if ns:
                used_prefixes[prefix] = ns
        return text

    by_subject: Dict[Term, Dict[Term, List[Term]]] = {}
    for s, p, o in graph:
        by_subject.setdefault(s, {}).setdefault(p, []).append(o)

    body_lines: List[str] = []
    for subject in sorted(by_subject):
        pred_map = by_subject[subject]
        subject_text = compacting(subject)
        pred_parts: List[str] = []
        for predicate in sorted(pred_map):
            objects = sorted(pred_map[predicate])
            objs_text = ", ".join(compacting(o) for o in objects)
            pred_parts.append(f"{compacting(predicate)} {objs_text}")
        joined = " ;\n    ".join(pred_parts)
        body_lines.append(f"{subject_text} {joined} .")

    header = [
        f"@prefix {prefix}: <{ns}> ."
        for prefix, ns in sorted(used_prefixes.items())
    ]
    sections = []
    if header:
        sections.append("\n".join(header))
    if body_lines:
        sections.append("\n\n".join(body_lines))
    return "\n\n".join(sections) + ("\n" if sections else "")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*")
  | (?P<lang>@[a-zA-Z][a-zA-Z0-9-]*)
  | (?P<dtype>\^\^)
  | (?P<bnode>_:[A-Za-z0-9][A-Za-z0-9._-]*)
  | (?P<number>[+-]?\d+\.\d+(?:[eE][+-]?\d+)?|[+-]?\d+[eE][+-]?\d+|[+-]?\d+)
  | (?P<punct>[.;,\[\]()])
  | (?P<qname>[A-Za-z0-9_-]*:[A-Za-z0-9_./%-]*)
  | (?P<keyword>@prefix|@base|a\b|true\b|false\b|PREFIX|BASE)
  | (?P<name>[A-Za-z_][A-Za-z0-9_-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise TurtleError(f"unexpected character at offset {pos}: "
                              f"{text[pos:pos + 20]!r}")
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind == "ws":
            continue
        # 'a', 'true', 'false', '@prefix' can also be caught by name/lang.
        if kind == "name" and value in ("a", "true", "false"):
            kind = "keyword"
        if kind == "lang" and value in ("@prefix", "@base"):
            kind = "keyword"
        tokens.append((kind, value))
    return tokens


class _TurtleParser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0
        self.nsm = NamespaceManager(bind_defaults=False)

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise TurtleError("unexpected end of input")
        self.pos += 1
        return token

    def _expect(self, value: str) -> None:
        kind, tok = self._next()
        if tok != value:
            raise TurtleError(f"expected {value!r}, got {tok!r}")

    def parse(self) -> Iterator[Triple]:
        while self._peek() is not None:
            kind, value = self._peek()
            if value in ("@prefix", "PREFIX"):
                self._parse_prefix(value == "@prefix")
                continue
            if value in ("@base", "BASE"):
                raise TurtleError("@base is not supported")
            yield from self._parse_statement()

    def _parse_prefix(self, needs_dot: bool) -> None:
        self._next()  # @prefix / PREFIX
        kind, qname = self._next()
        if kind != "qname" or not qname.endswith(":"):
            raise TurtleError(f"expected prefix declaration, got {qname!r}")
        kind, iri = self._next()
        if kind != "iri":
            raise TurtleError(f"expected namespace IRI, got {iri!r}")
        self.nsm.bind(qname[:-1], iri[1:-1])
        if needs_dot:
            self._expect(".")

    def _parse_statement(self) -> Iterator[Triple]:
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_term(position="predicate")
            while True:
                obj = self._parse_term(position="object")
                yield (subject, predicate, obj)
                token = self._peek()
                if token and token[1] == ",":
                    self._next()
                    continue
                break
            token = self._peek()
            if token and token[1] == ";":
                self._next()
                # allow trailing ';' before '.'
                token = self._peek()
                if token and token[1] == ".":
                    self._next()
                    return
                continue
            self._expect(".")
            return

    def _parse_term(self, position: str) -> Term:
        kind, value = self._next()
        if kind == "iri":
            return URIRef(unescape_literal(value[1:-1]))
        if kind == "qname":
            try:
                return self.nsm.expand(value)
            except KeyError as exc:
                raise TurtleError(str(exc)) from exc
        if kind == "keyword" and value == "a" and position == "predicate":
            return RDF.type
        if position == "predicate":
            raise TurtleError(f"invalid predicate token: {value!r}")
        if kind == "bnode":
            return BNode(value[2:])
        if kind == "literal":
            lexical = unescape_literal(value[1:-1])
            token = self._peek()
            if token and token[0] == "lang":
                self._next()
                return Literal(lexical, lang=token[1][1:])
            if token and token[0] == "dtype":
                self._next()
                dtype = self._parse_term(position="object")
                if not isinstance(dtype, URIRef):
                    raise TurtleError("datatype must be an IRI")
                return Literal(lexical, datatype=dtype)
            return Literal(lexical)
        if kind == "number":
            if "." in value or "e" in value or "E" in value:
                is_double = "e" in value or "E" in value
                dtype = XSD_DOUBLE if is_double else XSD_DECIMAL
                return Literal(value, datatype=dtype)
            return Literal(value, datatype=XSD_INTEGER)
        if kind == "keyword" and value in ("true", "false"):
            return Literal(value, datatype=XSD_BOOLEAN)
        raise TurtleError(f"unexpected token {value!r} in {position}")


def parse_turtle(text: str) -> Iterator[Triple]:
    """Yield triples parsed from a Turtle document."""
    return _TurtleParser(text).parse()


def load_turtle(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse a Turtle document into ``graph`` (a new one when omitted)."""
    if graph is None:
        graph = Graph()
    graph.add_all(parse_turtle(text))
    return graph
