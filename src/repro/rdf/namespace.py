"""Namespaces and the vocabularies used by the platform.

A :class:`Namespace` builds :class:`~repro.rdf.terms.URIRef` terms by
attribute or item access (``FOAF.name`` →
``<http://xmlns.com/foaf/0.1/name>``).
The bundled vocabularies are exactly the ones the paper's queries use:
RDF/RDFS, FOAF, W3C geo, SIOC types, the ``rev`` review vocabulary, the COMM
multimedia ontology, DBpedia ontology, LinkedGeoData ontology and Geonames.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import URIRef


class Namespace(str):
    """A URI prefix that mints terms via attribute or item access."""

    def __new__(cls, base: str) -> "Namespace":
        return str.__new__(cls, base)

    def term(self, name: str) -> URIRef:
        return URIRef(str.__str__(self) + name)

    def __getattribute__(self, name: str) -> URIRef:
        # Intercept *all* plain attribute access so names that collide
        # with str methods (``DC.title``, ``FOAF.name``, ...) still mint
        # terms. Underscore names and the ``term`` method pass through.
        if name.startswith("_") or name == "term":
            return str.__getattribute__(self, name)
        return URIRef(str.__str__(self) + name)

    def __getitem__(self, name) -> URIRef:  # type: ignore[override]
        if isinstance(name, (int, slice)):
            return str.__getitem__(self, name)  # type: ignore[return-value]
        return self.term(name)

    def __contains__(self, item) -> bool:  # type: ignore[override]
        if isinstance(item, str):
            return item.startswith(str(self))
        return False

    def __repr__(self) -> str:
        return f"Namespace({str(self)!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
GEO = Namespace("http://www.w3.org/2003/01/geo/wgs84_pos#")
SIOC = Namespace("http://rdfs.org/sioc/ns#")
SIOCT = Namespace("http://rdfs.org/sioc/types#")
REV = Namespace("http://purl.org/stuff/rev#")
DC = Namespace("http://purl.org/dc/elements/1.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")
COMM = Namespace("http://comm.semanticweb.org/core.owl#")
DBPO = Namespace("http://dbpedia.org/ontology/")
DBPR = Namespace("http://dbpedia.org/resource/")
DBPP = Namespace("http://dbpedia.org/property/")
LGDO = Namespace("http://linkedgeodata.org/ontology/")
LGDR = Namespace("http://linkedgeodata.org/triplify/")
LGDP = Namespace("http://linkedgeodata.org/property/")
GN = Namespace("http://www.geonames.org/ontology#")
GNR = Namespace("http://sws.geonames.org/")
EVRI = Namespace("http://www.evri.com/ontology#")
EVRIR = Namespace("http://www.evri.com/entity/")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")
TL = Namespace("http://beta.teamlife.it/")
TL_PID = Namespace("http://beta.teamlife.it/cpg148_pictures/")
TL_USER = Namespace("http://beta.teamlife.it/users/")

#: Default prefix table used by parsers and serializers.
DEFAULT_PREFIXES: Dict[str, str] = {
    "rdf": str(RDF),
    "rdfs": str(RDFS),
    "owl": str(OWL),
    "xsd": str(XSD),
    "foaf": str(FOAF),
    "geo": str(GEO),
    "sioc": str(SIOC),
    "sioct": str(SIOCT),
    "rev": str(REV),
    "dc": str(DC),
    "dcterms": str(DCTERMS),
    "comm": str(COMM),
    "dbpo": str(DBPO),
    "dbpr": str(DBPR),
    "dbpp": str(DBPP),
    "lgdo": str(LGDO),
    "lgdr": str(LGDR),
    "lgdp": str(LGDP),
    "gn": str(GN),
    "gnr": str(GNR),
    "evri": str(EVRI),
    "evrir": str(EVRIR),
    "skos": str(SKOS),
    "tl": str(TL),
    "tl-pid": str(TL_PID),
    "tl-user": str(TL_USER),
}


class NamespaceManager:
    """Bidirectional prefix ↔ namespace registry.

    Used by the Turtle serializer to produce compact output and by the
    SPARQL parser to expand prefixed names.
    """

    def __init__(self, bind_defaults: bool = True) -> None:
        self._prefix_to_ns: Dict[str, str] = {}
        self._ns_to_prefix: Dict[str, str] = {}
        if bind_defaults:
            for prefix, ns in DEFAULT_PREFIXES.items():
                self.bind(prefix, ns)

    def bind(self, prefix: str, namespace: str, replace: bool = True) -> None:
        """Register ``prefix`` for ``namespace``."""
        namespace = str(namespace)
        if prefix in self._prefix_to_ns and not replace:
            return
        old = self._prefix_to_ns.get(prefix)
        if old is not None and self._ns_to_prefix.get(old) == prefix:
            del self._ns_to_prefix[old]
        self._prefix_to_ns[prefix] = namespace
        self._ns_to_prefix.setdefault(namespace, prefix)

    def expand(self, qname: str) -> URIRef:
        """Expand ``prefix:local`` to a full :class:`URIRef`."""
        prefix, _, local = qname.partition(":")
        if prefix not in self._prefix_to_ns:
            raise KeyError(f"unknown prefix: {prefix!r}")
        return URIRef(self._prefix_to_ns[prefix] + local)

    def namespace(self, prefix: str) -> Optional[str]:
        return self._prefix_to_ns.get(prefix)

    def compact(self, iri: str) -> Optional[str]:
        """Return ``prefix:local`` for ``iri`` if a prefix matches."""
        iri = str(iri)
        best: Optional[Tuple[str, str]] = None
        for ns, prefix in self._ns_to_prefix.items():
            if iri.startswith(ns) and (best is None or len(ns) > len(best[0])):
                best = (ns, prefix)
        if best is None:
            return None
        ns, prefix = best
        local = iri[len(ns) :]
        if not local or any(ch in local for ch in "/#?"):
            return None
        return f"{prefix}:{local}"

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(sorted(self._prefix_to_ns.items()))

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns
