"""N-Triples parser and serializer.

Graph-writes: the target graph of ``load_ntriples`` only

N-Triples is the interchange format the paper relies on: the D2R
``dump-rdf`` feature emits the platform's relational data as N-Triples,
which is then bulk-loaded into the triple store together with the LOD
dumps. The grammar implemented here is the W3C N-Triples subset actually
produced by :mod:`repro.d2r` and by 2012-era dump tooling: IRIs, blank
nodes, plain/lang/typed literals, ``#`` comments and blank lines.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, TextIO, Union

from .graph import Graph, Triple
from .terms import (
    BNode,
    Literal,
    Term,
    URIRef,
    unescape_literal,
)


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input, with line information."""

    def __init__(self, message: str, lineno: int) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


# IRIs may contain ``\uXXXX``/``\UXXXXXXXX`` escapes — exactly what
# ``escape_iri`` emits for characters illegal inside ``<...>``, so
# self-produced output re-parses (writer/parser round-trip).
_IRI = (
    r"<((?:[^<>\"{}|^`\\\x00-\x20]"
    r"|\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8})*)>"
)
_BNODE = r"_:([A-Za-z0-9][A-Za-z0-9._-]*)"
_LITERAL = r'"((?:[^"\\]|\\.)*)"'
_LANG = r"@([a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*)"

_SUBJECT_RE = re.compile(rf"\s*(?:{_IRI}|{_BNODE})")
_PREDICATE_RE = re.compile(rf"\s*{_IRI}")
_OBJECT_RE = re.compile(
    rf"\s*(?:{_IRI}|{_BNODE}|{_LITERAL}(?:{_LANG}|\^\^{_IRI})?)"
)
_END_RE = re.compile(r"\s*\.\s*(#.*)?$")


def parse_ntriples_line(line: str, lineno: int = 0) -> Triple:
    """Parse a single N-Triples statement into a triple."""
    match = _SUBJECT_RE.match(line)
    if not match:
        raise NTriplesError("expected subject IRI or blank node", lineno)
    subject: Term
    if match.group(1) is not None:
        subject = URIRef(unescape_literal(match.group(1)))
    else:
        subject = BNode(match.group(2))
    pos = match.end()

    match = _PREDICATE_RE.match(line, pos)
    if not match:
        raise NTriplesError("expected predicate IRI", lineno)
    predicate = URIRef(unescape_literal(match.group(1)))
    pos = match.end()

    match = _OBJECT_RE.match(line, pos)
    if not match:
        raise NTriplesError("expected object term", lineno)
    obj: Term
    iri, bnode, lit, lang, dtype = match.groups()
    if iri is not None:
        obj = URIRef(unescape_literal(iri))
    elif bnode is not None:
        obj = BNode(bnode)
    else:
        lexical = unescape_literal(lit)
        if lang:
            obj = Literal(lexical, lang=lang)
        elif dtype:
            obj = Literal(lexical, datatype=unescape_literal(dtype))
        else:
            obj = Literal(lexical)
    pos = match.end()

    if not _END_RE.match(line, pos):
        raise NTriplesError("expected terminating '.'", lineno)
    return (subject, predicate, obj)


def parse_ntriples(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Yield triples from an N-Triples document or open file."""
    lines: Iterable[str]
    if isinstance(source, str):
        # Split on '\n' only: unicode line separators (e.g. U+0085) are
        # legal *inside* literals and must not break statements apart.
        lines = source.split("\n")
    else:
        lines = source
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_ntriples_line(line, lineno)


def load_ntriples(source: Union[str, TextIO], graph: Graph = None) -> Graph:
    """Parse ``source`` into ``graph`` (a new one when omitted)."""
    if graph is None:
        graph = Graph()
    graph.add_all(parse_ntriples(source))
    return graph


def serialize_triple(triple: Triple) -> str:
    """One N-Triples statement (without newline)."""
    s, p, o = triple
    return f"{s.n3()} {p.n3()} {o.n3()} ."


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples in deterministic (sorted) order."""
    lines = sorted(serialize_triple(t) for t in triples)
    return "\n".join(lines) + ("\n" if lines else "")
