"""RDF/XML serialization and parsing.

Graph-writes: the target graph of ``load_rdfxml`` only

RDF/XML was the era's default interchange format (D2R and Virtuoso both
emit it); the platform's "raw RDF" content views offered it next to
Turtle. The serializer emits the flat ``rdf:Description`` form; the
parser accepts that same subset — ``rdf:about``/``rdf:resource``
attributes, ``rdf:nodeID`` blank nodes, literal children with
``xml:lang`` or ``rdf:datatype``, and typed node shorthand.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Iterator, Optional, Tuple

from .graph import Graph, Triple
from .namespace import RDF
from .terms import BNode, Literal, Term, URIRef

RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
XML_NS = "http://www.w3.org/XML/1998/namespace"


class RdfXmlError(ValueError):
    """Malformed RDF/XML input."""


# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------


def _split_predicate(predicate: URIRef) -> Tuple[str, str]:
    """Split an IRI into (namespace, local-name) at the last # or /."""
    text = str(predicate)
    for separator in ("#", "/"):
        idx = text.rfind(separator)
        if 0 < idx < len(text) - 1:
            local = text[idx + 1 :]
            if local and (local[0].isalpha() or local[0] == "_"):
                return text[: idx + 1], local
    raise RdfXmlError(
        f"cannot derive a QName for predicate {text!r}"
    )


def serialize_rdfxml(graph: Graph) -> str:
    """Serialize ``graph`` as flat rdf:Description elements."""
    namespaces: Dict[str, str] = {RDF_NS: "rdf"}

    def prefix_for(namespace: str) -> str:
        if namespace not in namespaces:
            namespaces[namespace] = f"ns{len(namespaces)}"
        return namespaces[namespace]

    by_subject: Dict[Term, list] = {}
    for s, p, o in graph:
        by_subject.setdefault(s, []).append((p, o))

    body_parts = []
    for subject in sorted(by_subject):
        if isinstance(subject, BNode):
            opening = f'rdf:nodeID="{subject}"'
        else:
            opening = f'rdf:about="{_xml_escape(str(subject))}"'
        lines = [f"  <rdf:Description {opening}>"]
        for predicate, obj in sorted(by_subject[subject]):
            namespace, local = _split_predicate(predicate)
            tag = f"{prefix_for(namespace)}:{local}"
            if isinstance(obj, URIRef):
                lines.append(
                    f'    <{tag} rdf:resource='
                    f'"{_xml_escape(str(obj))}"/>'
                )
            elif isinstance(obj, BNode):
                lines.append(f'    <{tag} rdf:nodeID="{obj}"/>')
            else:
                attrs = ""
                if obj.lang:
                    attrs = f' xml:lang="{obj.lang}"'
                elif obj.datatype:
                    attrs = (
                        f' rdf:datatype='
                        f'"{_xml_escape(str(obj.datatype))}"'
                    )
                lines.append(
                    f"    <{tag}{attrs}>"
                    f"{_xml_escape(obj.lexical)}</{tag}>"
                )
        lines.append("  </rdf:Description>")
        body_parts.append("\n".join(lines))

    declarations = " ".join(
        f'xmlns:{prefix}="{namespace}"'
        for namespace, prefix in sorted(
            namespaces.items(), key=lambda item: item[1]
        )
    )
    return (
        '<?xml version="1.0" encoding="utf-8"?>\n'
        f"<rdf:RDF {declarations}>\n"
        + "\n".join(body_parts)
        + ("\n" if body_parts else "")
        + "</rdf:RDF>\n"
    )


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;")
        .replace(">", "&gt;").replace('"', "&quot;")
    )


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def parse_rdfxml(text: str) -> Iterator[Triple]:
    """Parse the flat RDF/XML subset back into triples."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise RdfXmlError(f"invalid XML: {exc}") from exc
    if root.tag != f"{{{RDF_NS}}}RDF":
        raise RdfXmlError(f"root element must be rdf:RDF, got {root.tag}")
    for node in root:
        yield from _parse_description(node)


def _parse_description(node: ET.Element) -> Iterator[Triple]:
    subject = _node_subject(node)
    # typed-node shorthand: <dbpo:City rdf:about=...>
    if node.tag != f"{{{RDF_NS}}}Description":
        yield (subject, RDF.type, _tag_to_uri(node.tag))
    for child in node:
        predicate = _tag_to_uri(child.tag)
        resource = child.get(f"{{{RDF_NS}}}resource")
        node_id = child.get(f"{{{RDF_NS}}}nodeID")
        if resource is not None:
            yield (subject, predicate, URIRef(resource))
            continue
        if node_id is not None:
            yield (subject, predicate, BNode(node_id))
            continue
        lang = child.get(f"{{{XML_NS}}}lang")
        datatype = child.get(f"{{{RDF_NS}}}datatype")
        lexical = child.text or ""
        if lang:
            yield (subject, predicate, Literal(lexical, lang=lang))
        elif datatype:
            yield (
                subject, predicate, Literal(lexical, datatype=datatype)
            )
        else:
            yield (subject, predicate, Literal(lexical))


def _node_subject(node: ET.Element) -> Term:
    about = node.get(f"{{{RDF_NS}}}about")
    node_id = node.get(f"{{{RDF_NS}}}nodeID")
    if about is not None:
        return URIRef(about)
    if node_id is not None:
        return BNode(node_id)
    return BNode()


def _tag_to_uri(tag: str) -> URIRef:
    if not tag.startswith("{"):
        raise RdfXmlError(f"unqualified element: {tag!r}")
    namespace, _, local = tag[1:].partition("}")
    return URIRef(namespace + local)


def load_rdfxml(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse an RDF/XML document into ``graph`` (new when omitted)."""
    if graph is None:
        graph = Graph()
    graph.add_all(parse_rdfxml(text))
    return graph
