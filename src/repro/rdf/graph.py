"""Indexed in-memory triple store.

Concurrency: single-writer
Graph-writes: the store itself (every sanctioned mutation entry point)

:class:`Graph` is the storage substrate that stands in for the paper's
OpenLink Virtuoso installation. It keeps three hash indexes (SPO, POS, OSP)
so that every triple-pattern shape is answered from the most selective
index, which is what makes BGP matching in :mod:`repro.sparql` fast enough
for the benchmark workloads.

The concurrency contract (checked by ``repro lint --concurrency``): all
**mutation** goes through ``Graph._lock`` — concurrent writers are safe —
but read paths (:meth:`Graph.triples` and the accessors built on it) are
deliberately lock-free generators and must not run concurrently with a
writer. This is exactly how the repo uses it today: ``BatchAnnotator``
fans out annotation work but funnels every ``add`` through its
single-threaded drain loop, and queries run after the batch completes.
The planned MVCC store replaces this contract with real snapshots; until
then the lock makes the *write* side safe and
:meth:`repro.analysis.stats.GraphStatistics.cached` uses the same lock
to take a consistent statistics snapshot.
"""

from __future__ import annotations

import threading

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .namespace import NamespaceManager, RDF
from .terms import Literal, Term, URIRef, term_from_python

#: A triple of concrete terms.
Triple = Tuple[Term, Term, Term]
#: A triple pattern; ``None`` is a wildcard.
TriplePattern = Tuple[Optional[Term], Optional[Term], Optional[Term]]

_Index = Dict[Term, Dict[Term, Set[Term]]]


def _index_add(index: _Index, a: Term, b: Term, c: Term) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: Term, b: Term, c: Term) -> None:
    level1 = index.get(a)
    if level1 is None:
        return
    level2 = level1.get(b)
    if level2 is None:
        return
    level2.discard(c)
    if not level2:
        del level1[b]
        if not level1:
            del index[a]


class Graph:
    """A set of RDF triples with pattern-match access.

    Supports the container protocol (``len``, ``in``, iteration), set-style
    bulk operations and convenience accessors (:meth:`value`,
    :meth:`objects`, :meth:`subjects`). Mutation keeps all three indexes
    consistent.
    """

    def __init__(
        self,
        identifier: Optional[URIRef] = None,
        namespaces: Optional[NamespaceManager] = None,
    ) -> None:
        self.identifier = identifier or URIRef(f"urn:graph:{id(self):x}")
        self.namespaces = namespaces or NamespaceManager()
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        #: bumped on every mutation; lets cached statistics (the query
        #: planner's cardinality model) detect staleness cheaply.
        self._version = 0
        #: serializes mutation (see the module docstring's contract);
        #: reentrant so add_all/remove can call helpers that lock.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: Iterable[Any]) -> "Graph":
        """Add one triple; values are coerced with ``term_from_python``."""
        self.insert(triple)
        return self

    def insert(self, triple: Iterable[Any]) -> bool:
        """Add one triple; return True when it was not already present.

        The atomic alternative to the ``len()``-before/``len()``-after
        straddle around :meth:`add` — membership and mutation happen
        under one lock acquisition, so the newness answer is exact even
        with concurrent writers.
        """
        s, p, o = triple
        s = self._as_node(s)
        p = self._as_predicate(p)
        o = term_from_python(o)
        with self._lock:
            if self._contains(s, p, o):
                return False
            _index_add(self._spo, s, p, o)
            _index_add(self._pos, p, o, s)
            _index_add(self._osp, o, s, p)
            self._size += 1
            self._version += 1
        return True

    def add_all(self, triples: Iterable[Iterable[Any]]) -> "Graph":
        with self._lock:  # one acquisition for the whole batch
            for triple in triples:
                self.add(triple)
        return self

    def remove(self, pattern: TriplePattern) -> int:
        """Remove all triples matching ``pattern``; returns count removed."""
        with self._lock:
            matches = list(self.triples(pattern))
            for s, p, o in matches:
                _index_remove(self._spo, s, p, o)
                _index_remove(self._pos, p, o, s)
                _index_remove(self._osp, o, s, p)
            self._size -= len(matches)
            if matches:
                self._version += 1
        return len(matches)

    def clear(self) -> None:
        with self._lock:
            self._spo.clear()
            self._pos.clear()
            self._osp.clear()
            self._size = 0
            self._version += 1

    @staticmethod
    def _as_node(value: Any) -> Term:
        if isinstance(value, Term):
            return value
        if isinstance(value, str):
            return URIRef(value)
        raise TypeError(f"invalid subject: {value!r}")

    @staticmethod
    def _as_predicate(value: Any) -> Term:
        if isinstance(value, URIRef):
            return value
        if isinstance(value, Term):
            raise TypeError(f"predicate must be a URIRef, got {value!r}")
        if isinstance(value, str):
            return URIRef(value)
        raise TypeError(f"invalid predicate: {value!r}")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _contains(self, s: Term, p: Term, o: Term) -> bool:
        return o in self._spo.get(s, {}).get(p, ())

    def __contains__(self, triple: Iterable[Any]) -> bool:
        s, p, o = triple
        if s is None or p is None or o is None:
            return any(True for _ in self.triples((s, p, o)))
        return self._contains(s, p, term_from_python(o))

    def triples(
        self, pattern: TriplePattern = (None, None, None)
    ) -> Iterator[Triple]:
        """Yield all triples matching ``pattern`` (``None`` = wildcard).

        Dispatches on the bound/unbound shape to the most selective index.
        """
        s, p, o = pattern
        if s is not None:
            by_p = self._spo.get(s)
            if by_p is None:
                return
            if p is not None:
                objs = by_p.get(p)
                if objs is None:
                    return
                if o is not None:
                    if o in objs:
                        yield (s, p, o)
                else:
                    for obj in objs:
                        yield (s, p, obj)
            else:
                for pred, objs in by_p.items():
                    if o is not None:
                        if o in objs:
                            yield (s, pred, o)
                    else:
                        for obj in objs:
                            yield (s, pred, obj)
        elif p is not None:
            by_o = self._pos.get(p)
            if by_o is None:
                return
            if o is not None:
                for subj in by_o.get(o, ()):
                    yield (subj, p, o)
            else:
                for obj, subjs in by_o.items():
                    for subj in subjs:
                        yield (subj, p, obj)
        elif o is not None:
            by_s = self._osp.get(o)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield (subj, pred, o)
        else:
            for subj, by_p in self._spo.items():
                for pred, objs in by_p.items():
                    for obj in objs:
                        yield (subj, pred, obj)

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        """Number of triples matching ``pattern`` (O(1) for full wildcard)."""
        if pattern == (None, None, None):
            return self._size
        return sum(1 for _ in self.triples(pattern))

    def subjects(
        self, predicate: Optional[Term] = None, obj: Optional[Term] = None
    ) -> Iterator[Term]:
        seen: Set[Term] = set()
        for s, _, _ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s

    def predicates(
        self, subject: Optional[Term] = None, obj: Optional[Term] = None
    ) -> Iterator[Term]:
        seen: Set[Term] = set()
        for _, p, _ in self.triples((subject, None, obj)):
            if p not in seen:
                seen.add(p)
                yield p

    def objects(
        self, subject: Optional[Term] = None, predicate: Optional[Term] = None
    ) -> Iterator[Term]:
        seen: Set[Term] = set()
        for _, _, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o

    def value(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
        default: Any = None,
    ) -> Any:
        """Return one term completing the two given positions, or default."""
        given = sum(x is not None for x in (subject, predicate, obj))
        if given != 2:
            raise ValueError("value() requires exactly two bound positions")
        for s, p, o in self.triples((subject, predicate, obj)):
            if subject is None:
                return s
            if predicate is None:
                return p
            return o
        return default

    def label(
        self, subject: Term, lang: Optional[str] = None
    ) -> Optional[Literal]:
        """Return an ``rdfs:label`` of ``subject``, preferring ``lang``."""
        from .namespace import RDFS

        fallback: Optional[Literal] = None
        for obj in self.objects(subject, RDFS.label):
            if not isinstance(obj, Literal):
                continue
            if lang is not None and obj.lang == lang.lower():
                return obj
            if fallback is None or obj.lang is None:
                fallback = obj
        return fallback

    def types(self, subject: Term) -> Set[Term]:
        """All ``rdf:type`` values of ``subject``."""
        return set(self.objects(subject, RDF.type))

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def __iadd__(self, other: Iterable[Triple]) -> "Graph":
        self.add_all(other)
        return self

    def copy(self) -> "Graph":
        g = Graph(self.identifier, self.namespaces)
        g.add_all(self.triples())
        return g

    def __repr__(self) -> str:
        return f"Graph({str(self.identifier)!r}, triples={self._size})"

    def predicate_statistics(
        self,
    ) -> Dict[Term, Tuple[int, int, int]]:
        """Per-predicate ``(triples, distinct_subjects, distinct_objects)``.

        One pass over the POS index — this is the raw input for the query
        planner's cardinality model (:class:`repro.analysis.stats`).
        """
        stats: Dict[Term, Tuple[int, int, int]] = {}
        with self._lock:  # a consistent snapshot even mid-batch
            for predicate, by_object in self._pos.items():
                triples = sum(
                    len(subjects) for subjects in by_object.values()
                )
                subjects_seen: Set[Term] = set()
                for subjects in by_object.values():
                    subjects_seen |= subjects
                stats[predicate] = (
                    triples, len(subjects_seen), len(by_object)
                )
        return stats

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def resource_exists(self, subject: Term) -> bool:
        """True if ``subject`` occurs as the subject of any triple.

        This is the "actual binding" validation check the paper performs
        against the DBpedia SPARQL endpoint (§2.2.2).
        """
        return subject in self._spo

    def predicate_objects(self, subject: Term) -> Iterator[Tuple[Term, Term]]:
        for _, p, o in self.triples((subject, None, None)):
            yield p, o

    def serialize(self, fmt: str = "ntriples") -> str:
        """Serialize to ``ntriples`` or ``turtle``."""
        if fmt in ("ntriples", "nt"):
            from .ntriples import serialize_ntriples

            return serialize_ntriples(self)
        if fmt in ("turtle", "ttl"):
            from .turtle import serialize_turtle

            return serialize_turtle(self)
        raise ValueError(f"unknown format: {fmt!r}")


class FrozenGraphError(TypeError):
    """A mutation was attempted on a read-only graph view."""


class FrozenGraph(Graph):
    """A read-only view of a graph: every mutation entry point raises.

    Derived copies (:meth:`Dataset.union_graph`,
    ``Platform.union_graph``) hand these out so a caller cannot write
    into a merged snapshot expecting the change to reach the underlying
    stores — the silent-lost-write bug the ``EF003`` lint rule catches
    statically. Use :meth:`Graph.copy` to thaw into a private mutable
    graph.
    """

    def _refuse(self, op: str) -> None:
        raise FrozenGraphError(
            f"{op}() on a read-only graph view ({self.identifier}); "
            f"write to the source graphs, or copy() to thaw"
        )

    def add(self, triple: Iterable[Any]) -> "Graph":
        self._refuse("add")

    def insert(self, triple: Iterable[Any]) -> bool:
        self._refuse("insert")

    def add_all(self, triples: Iterable[Iterable[Any]]) -> "Graph":
        self._refuse("add_all")

    def remove(self, pattern: TriplePattern) -> int:
        self._refuse("remove")

    def clear(self) -> None:
        self._refuse("clear")

    def __repr__(self) -> str:
        return (
            f"FrozenGraph({str(self.identifier)!r}, "
            f"triples={self._size})"
        )


def freeze(graph: Graph) -> FrozenGraph:
    """A zero-copy read-only view sharing ``graph``'s indexes.

    The builder graph must be discarded after freezing (the sanctioned
    build-then-publish idiom: populate a fresh graph, freeze it, hand
    out only the frozen view) — further writes through the builder
    would be visible in the view.
    """
    if isinstance(graph, FrozenGraph):
        return graph
    frozen = FrozenGraph.__new__(FrozenGraph)
    frozen.__dict__.update(graph.__dict__)
    return frozen


class Dataset:
    """A collection of named graphs plus a default graph.

    Mirrors the paper's Virtuoso deployment where platform triples and the
    imported LOD datasets (DBpedia, Geonames, LinkedGeoData) live in
    separate graphs but are queried together. :meth:`union_graph` produces
    a merged read-only view used as the default query target.
    """

    def __init__(self) -> None:
        self.default = Graph(URIRef("urn:graph:default"))
        self._named: Dict[URIRef, Graph] = {}

    def graph(self, identifier: Any) -> Graph:
        """Get or create the named graph ``identifier``."""
        identifier = (
            identifier
            if isinstance(identifier, URIRef)
            else URIRef(str(identifier))
        )
        if identifier not in self._named:
            self._named[identifier] = Graph(
                identifier, self.default.namespaces
            )
        return self._named[identifier]

    def remove_graph(self, identifier: Any) -> bool:
        identifier = (
            identifier
            if isinstance(identifier, URIRef)
            else URIRef(str(identifier))
        )
        return self._named.pop(identifier, None) is not None

    def graphs(self) -> List[Graph]:
        return list(self._named.values())

    def __contains__(self, identifier: Any) -> bool:
        return URIRef(str(identifier)) in self._named

    def union_graph(self) -> Graph:
        """A merged *read-only* view of the default graph and every
        named graph. Writes must go to the member graphs — mutating the
        union would be silently lost, so it raises
        :class:`FrozenGraphError` instead (use ``copy()`` to thaw)."""
        merged = Graph(URIRef("urn:graph:union"), self.default.namespaces)
        merged.add_all(self.default)
        for graph in self._named.values():
            merged.add_all(graph)
        return freeze(merged)

    def __len__(self) -> int:
        return len(self.default) + sum(len(g) for g in self._named.values())
