"""RDF term model.

The four kinds of RDF nodes used throughout the library:

* :class:`URIRef` — an IRI identifying a resource.
* :class:`BNode` — an anonymous node scoped to a graph.
* :class:`Literal` — a value with an optional language tag or datatype.
* :class:`Variable` — a SPARQL query variable (only valid in query patterns).

All terms are immutable, hashable and totally ordered so they can be used as
dictionary keys, set members and sort keys for deterministic serialization.
The ordering follows the SPARQL ``ORDER BY`` term ordering: unbound < blank
nodes < IRIs < literals.
"""

from __future__ import annotations

import hashlib
import itertools
import re
from typing import Any, Optional, Union

XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = XSD + "string"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_FLOAT = XSD + "float"
XSD_BOOLEAN = XSD + "boolean"
XSD_DATETIME = XSD + "dateTime"
XSD_DATE = XSD + "date"

_NUMERIC_DATATYPES = frozenset(
    {XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}
)

_LANG_TAG_RE = re.compile(r"^[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*$")


class Term:
    """Base class of all RDF terms."""

    __slots__ = ()

    #: Sort rank used by the total ordering (SPARQL term ordering).
    _order = 99

    def n3(self) -> str:
        """Return the N-Triples / Turtle form of this term."""
        raise NotImplementedError

    def _sort_key(self) -> tuple:
        raise NotImplementedError

    def __lt__(self, other: Any) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: Any) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: Any) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: Any) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort_key() >= other._sort_key()


class URIRef(Term, str):
    """An IRI reference.

    Subclasses :class:`str`, so a ``URIRef`` can be used anywhere a plain
    string URI is expected.
    """

    __slots__ = ()
    _order = 2

    def __new__(cls, value: str) -> "URIRef":
        if not value:
            raise ValueError("URIRef must not be empty")
        return str.__new__(cls, value)

    def n3(self) -> str:
        return f"<{escape_iri(str(self))}>"

    def _sort_key(self) -> tuple:
        return (self._order, str(self))

    def __repr__(self) -> str:
        return f"URIRef({str(self)!r})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, URIRef):
            return str(self) == str(other)
        if isinstance(other, Term):
            return False
        return str.__eq__(self, other)

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # Hash like a plain string so URIRefs interoperate with string sets
    # (equality still distinguishes term kinds).
    __hash__ = str.__hash__

    def defrag(self) -> "URIRef":
        """Return the IRI without its fragment part."""
        base, _, _ = str(self).partition("#")
        return URIRef(base)

    def local_name(self) -> str:
        """Return the part after the last ``#`` or ``/``."""
        value = str(self)
        for sep in ("#", "/"):
            if sep in value:
                idx = value.rindex(sep)
                if idx < len(value) - 1:
                    return value[idx + 1 :]
        return value


_bnode_counter = itertools.count()

#: Labels the N-Triples grammar can represent verbatim.
_BNODE_LABEL_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")


class BNode(Term, str):
    """A blank node. Fresh labels are generated when none is given.

    Any non-empty label is accepted (blank nodes are scoped to a graph,
    so callers may use arbitrary internal keys), but only labels
    matching the N-Triples grammar serialize verbatim: :meth:`n3`
    rewrites anything else to a deterministic ``N<sha1>`` label so the
    writer/parser round-trip always yields parseable, stable output —
    the same source label maps to the same serialized label everywhere.
    """

    __slots__ = ()
    _order = 1

    def __new__(cls, label: Optional[str] = None) -> "BNode":
        if label is None:
            label = f"b{next(_bnode_counter)}"
        if not label:
            raise ValueError("BNode label must not be empty")
        return str.__new__(cls, label)

    def n3(self) -> str:
        label = str(self)
        if _BNODE_LABEL_RE.match(label) is None:
            digest = hashlib.sha1(
                label.encode("utf-8", "surrogatepass")
            ).hexdigest()
            label = f"N{digest}"
        return f"_:{label}"

    def _sort_key(self) -> tuple:
        return (self._order, str(self))

    def __repr__(self) -> str:
        return f"BNode({str(self)!r})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, BNode):
            return str(self) == str(other)
        if isinstance(other, Term):
            return False
        return str.__eq__(self, other)

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = str.__hash__


class Literal(Term):
    """An RDF literal: lexical form + optional language tag or datatype.

    A literal may have a language tag *or* a datatype, never both (RDF 1.0
    semantics, which the paper's 2012-era stack follows). Plain literals
    (no tag, no datatype) are kept distinct from ``xsd:string`` literals.

    The Python value is derived lazily for known XSD datatypes and used for
    value-based comparison in SPARQL filters.
    """

    __slots__ = ("_lexical", "_lang", "_datatype", "_value")
    _order = 3

    def __init__(
        self,
        lexical: Any,
        lang: Optional[str] = None,
        datatype: Optional[Union[str, URIRef]] = None,
    ) -> None:
        if lang is not None and datatype is not None:
            raise ValueError("Literal cannot have both language and datatype")
        if lang is not None and not _LANG_TAG_RE.match(lang):
            raise ValueError(f"invalid language tag: {lang!r}")
        if isinstance(lexical, bool):
            lexical = "true" if lexical else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(lexical, int):
            lexical = str(lexical)
            datatype = datatype or XSD_INTEGER
        elif isinstance(lexical, float):
            lexical = repr(lexical)
            datatype = datatype or XSD_DOUBLE
        object.__setattr__(self, "_lexical", str(lexical))
        object.__setattr__(self, "_lang", lang.lower() if lang else None)
        object.__setattr__(
            self, "_datatype", URIRef(datatype) if datatype else None
        )
        object.__setattr__(self, "_value", _UNSET)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Literal is immutable")

    @property
    def lexical(self) -> str:
        """The raw lexical form."""
        return self._lexical

    @property
    def lang(self) -> Optional[str]:
        """Lower-cased language tag, or ``None``."""
        return self._lang

    @property
    def datatype(self) -> Optional[URIRef]:
        """Datatype IRI, or ``None`` for plain/language literals."""
        return self._datatype

    @property
    def value(self) -> Any:
        """Python value for known XSD datatypes, else the lexical form."""
        if self._value is _UNSET:
            object.__setattr__(self, "_value", self._compute_value())
        return self._value

    def _compute_value(self) -> Any:
        dt = self._datatype
        if dt is None or dt == XSD_STRING:
            return self._lexical
        try:
            if dt == XSD_INTEGER:
                return int(self._lexical)
            if dt in (XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT):
                return float(self._lexical)
            if dt == XSD_BOOLEAN:
                if self._lexical in ("true", "1"):
                    return True
                if self._lexical in ("false", "0"):
                    return False
                raise ValueError(self._lexical)
        except ValueError:
            return self._lexical
        return self._lexical

    @property
    def is_numeric(self) -> bool:
        """True when the datatype is a numeric XSD type and parses."""
        return self._datatype in _NUMERIC_DATATYPES and isinstance(
            self.value, (int, float)
        )

    def n3(self) -> str:
        quoted = f'"{escape_literal(self._lexical)}"'
        if self._lang:
            return f"{quoted}@{self._lang}"
        if self._datatype:
            # escaped like every other IRI so the output re-parses
            return f"{quoted}^^<{escape_iri(str(self._datatype))}>"
        return quoted

    def _sort_key(self) -> tuple:
        if self.is_numeric:
            # Numbers sort together by value, before other literals.
            return (self._order, 0, float(self.value), self._lexical)
        return (
            self._order,
            1,
            self._lexical,
            self._lang or "",
            str(self._datatype or ""),
        )

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Literal):
            return (
                self._lexical == other._lexical
                and self._lang == other._lang
                and self._datatype == other._datatype
            )
        if isinstance(other, Term):
            return False
        if isinstance(other, str):
            return (
                self._lang is None
                and self._datatype in (None, URIRef(XSD_STRING))
                and self._lexical == other
            )
        if isinstance(other, bool):
            return self._datatype == XSD_BOOLEAN and self.value is other
        if isinstance(other, (int, float)):
            return self.is_numeric and self.value == other
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self._lexical, self._lang, self._datatype)) ^ 0x117E

    def __str__(self) -> str:
        return self._lexical

    def __repr__(self) -> str:
        parts = [repr(self._lexical)]
        if self._lang:
            parts.append(f"lang={self._lang!r}")
        if self._datatype:
            parts.append(f"datatype={str(self._datatype)!r}")
        return f"Literal({', '.join(parts)})"


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()


class Variable(Term, str):
    """A SPARQL variable (``?name`` or ``$name``)."""

    __slots__ = ()
    _order = 0

    def __new__(cls, name: str) -> "Variable":
        name = name.lstrip("?$")
        if not name:
            raise ValueError("Variable name must not be empty")
        return str.__new__(cls, name)

    def n3(self) -> str:
        return f"?{str(self)}"

    def _sort_key(self) -> tuple:
        return (self._order, str(self))

    def __repr__(self) -> str:
        return f"Variable({str(self)!r})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Variable):
            return str(self) == str(other)
        if isinstance(other, Term):
            return False
        return str.__eq__(self, other)

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = str.__hash__


#: Characters that cannot appear raw inside a double-quoted literal:
#: the quote/backslash themselves, C0 controls (line structure), and
#: lone surrogates (not encodable to UTF-8 when writing files).
_LITERAL_ESCAPE_RE = re.compile(r'["\\\x00-\x1f\ud800-\udfff]')

_LITERAL_SIMPLE_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def escape_literal(text: str) -> str:
    """Escape a string for use inside a double-quoted N-Triples literal.

    Total: every Python string — including control characters and lone
    surrogates — escapes to single-line ASCII-safe form and
    :func:`unescape_literal` restores it exactly (the WAL and snapshot
    files of :mod:`repro.store` depend on this round-trip)."""
    if _LITERAL_ESCAPE_RE.search(text) is None:
        return text

    def replace(match: "re.Match[str]") -> str:
        ch = match.group(0)
        simple = _LITERAL_SIMPLE_ESCAPES.get(ch)
        if simple is not None:
            return simple
        return f"\\u{ord(ch):04X}"

    return _LITERAL_ESCAPE_RE.sub(replace, text)


def unescape_literal(text: str) -> str:
    """Inverse of :func:`escape_literal`, plus ``\\uXXXX`` sequences."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise ValueError("dangling escape at end of literal")
        nxt = text[i + 1]
        simple = {
            "t": "\t",
            "n": "\n",
            "r": "\r",
            '"': '"',
            "\\": "\\",
            "'": "'",
            "b": "\b",
            "f": "\f",
        }
        if nxt in simple:
            out.append(simple[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise ValueError(f"unknown escape: \\{nxt}")
    return "".join(out)


def escape_iri(iri: str) -> str:
    """Escape characters not allowed inside ``<...>`` in N-Triples.

    Lone surrogates are escaped too (they cannot reach a UTF-8 file
    raw); the parser's IRI pattern accepts the resulting
    ``\\uXXXX``/``\\UXXXXXXXX`` sequences, so escaped output
    round-trips."""
    out = []
    for ch in iri:
        code = ord(ch)
        if (
            ch in '<>"{}|^`\\'
            or code <= 0x20
            or 0xD800 <= code <= 0xDFFF
        ):
            out.append(f"\\u{code:04X}")
        else:
            out.append(ch)
    return "".join(out)


def term_from_python(value: Any) -> Term:
    """Coerce a Python value to an RDF term.

    Terms pass through; strings become plain literals; numbers and booleans
    become typed literals. Use :class:`URIRef` explicitly for IRIs.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, (str, bool, int, float)):
        return Literal(value)
    raise TypeError(f"cannot convert {type(value).__name__} to RDF term")
