"""RDFS inference (paper §2.3: virtual-album queries can be "richer,
more elaborated and accurate [...] also relying on inference
capabilities").

Graph-writes: the caller-supplied graph, extended in place by
``rdfs_closure``

Implements the core RDFS entailment rules by forward-chaining to a fixed
point:

* ``rdfs5``  — subPropertyOf transitivity
* ``rdfs7``  — property inheritance: ``p subPropertyOf q`` + ``s p o``
  ⇒ ``s q o``
* ``rdfs11`` — subClassOf transitivity
* ``rdfs9``  — type inheritance: ``C subClassOf D`` + ``x a C`` ⇒
  ``x a D``
* ``rdfs2``  — domain: ``p domain C`` + ``s p o`` ⇒ ``s a C``
* ``rdfs3``  — range: ``p range C`` + ``s p o`` ⇒ ``o a C`` (IRI/bnode
  objects only)

The closure materializes entailed triples into the graph (the strategy
Virtuoso deployments of the era commonly used for query-time speed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .graph import Graph, Triple
from .namespace import RDF, RDFS
from .terms import Literal, Term, URIRef


def _transitive_closure(
    pairs: Set[Tuple[Term, Term]]
) -> Set[Tuple[Term, Term]]:
    """All (a, c) reachable through the pair relation (a < c)."""
    adjacency: Dict[Term, Set[Term]] = {}
    for a, b in pairs:
        adjacency.setdefault(a, set()).add(b)
    closure: Set[Tuple[Term, Term]] = set()
    for start in adjacency:
        stack = list(adjacency[start])
        seen: Set[Term] = set()
        while stack:
            node = stack.pop()
            if node in seen or node == start:
                continue
            seen.add(node)
            closure.add((start, node))
            stack.extend(adjacency.get(node, ()))
    return closure


def rdfs_closure(
    graph: Graph, schema: Optional[Graph] = None
) -> int:
    """Materialize the RDFS closure of ``graph`` in place.

    ``schema`` optionally supplies the ontology triples (subClassOf,
    subPropertyOf, domain, range) separately from the data; when omitted
    the schema is read from ``graph`` itself. Returns the number of
    triples added.
    """
    source = schema if schema is not None else graph

    sub_class = {
        (s, o)
        for s, _, o in source.triples((None, RDFS.subClassOf, None))
        if isinstance(o, (URIRef,))
    }
    sub_class |= _transitive_closure(sub_class)  # rdfs11
    sub_property = {
        (s, o)
        for s, _, o in source.triples((None, RDFS.subPropertyOf, None))
        if isinstance(o, URIRef)
    }
    sub_property |= _transitive_closure(sub_property)  # rdfs5
    domains = [
        (s, o)
        for s, _, o in source.triples((None, RDFS.domain, None))
        if isinstance(o, URIRef)
    ]
    ranges = [
        (s, o)
        for s, _, o in source.triples((None, RDFS.range, None))
        if isinstance(o, URIRef)
    ]

    added = 0
    super_props: Dict[Term, List[Term]] = {}
    for p, q in sub_property:
        super_props.setdefault(p, []).append(q)
    super_classes: Dict[Term, List[Term]] = {}
    for c, d in sub_class:
        super_classes.setdefault(c, []).append(d)
    domain_of: Dict[Term, List[Term]] = {}
    for p, c in domains:
        domain_of.setdefault(p, []).append(c)
    range_of: Dict[Term, List[Term]] = {}
    for p, c in ranges:
        range_of.setdefault(p, []).append(c)

    changed = True
    while changed:
        changed = False
        pending: List[Triple] = []
        for s, p, o in graph.triples():
            # rdfs7: property inheritance
            for q in super_props.get(p, ()):
                if (s, q, o) not in graph:
                    pending.append((s, q, o))
            # rdfs2 / rdfs3: domain and range typing
            for c in domain_of.get(p, ()):
                if (s, RDF.type, c) not in graph:
                    pending.append((s, RDF.type, c))
            if not isinstance(o, Literal):
                for c in range_of.get(p, ()):
                    if (o, RDF.type, c) not in graph:
                        pending.append((o, RDF.type, c))
            # rdfs9: type inheritance
            if p == RDF.type:
                for d in super_classes.get(o, ()):
                    if (s, RDF.type, d) not in graph:
                        pending.append((s, RDF.type, d))
        for triple in pending:
            if triple not in graph:
                graph.add(triple)
                added += 1
                changed = True
    return added


def entails(
    graph: Graph,
    triple: Triple,
    schema: Optional[Graph] = None,
) -> bool:
    """Non-destructive entailment check: would the closure contain
    ``triple``? (Works on a copy; the input graph is untouched.)"""
    if triple in graph:
        return True
    working = graph.copy()
    rdfs_closure(working, schema)
    return triple in working
