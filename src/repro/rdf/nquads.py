"""N-Quads serialization and dataset persistence.

Graph-writes: the caller-supplied dataset being parsed into

The platform "runs locally" (§2.1) — its triple store needs to survive
restarts. N-Quads extends N-Triples with an optional fourth term naming
the graph, which maps exactly onto :class:`~repro.rdf.graph.Dataset`:
default-graph statements have three terms, named-graph statements four.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from .graph import Dataset
from .ntriples import NTriplesError, parse_ntriples_line
from .terms import Term, URIRef, unescape_literal

#: A quad: (s, p, o, graph-IRI-or-None).
Quad = Tuple[Term, Term, Term, Optional[URIRef]]

# Graph-term IRIs accept the same ``\uXXXX``/``\UXXXXXXXX`` escapes as
# the N-Triples ``_IRI`` pattern so escaped output re-parses.
_GRAPH_SUFFIX_RE = re.compile(
    r"\s*<((?:[^<>\"{}|^`\\\x00-\x20]"
    r"|\\u[0-9A-Fa-f]{4}|\\U[0-9A-Fa-f]{8})*)>\s*\.\s*(#.*)?$"
)
_TRIPLE_END_RE = re.compile(r"\s*\.\s*(#.*)?$")


def parse_nquads_line(line: str, lineno: int = 0) -> Quad:
    """Parse one N-Quads statement (graph term optional)."""
    match = _GRAPH_SUFFIX_RE.search(line)
    graph: Optional[URIRef] = None
    if match is not None:
        candidate = line[: match.start()] + " ."
        try:
            s, p, o = parse_ntriples_line(candidate, lineno)
            return (s, p, o, URIRef(unescape_literal(match.group(1))))
        except NTriplesError:
            pass  # the <...> was the object, not a graph term
    s, p, o = parse_ntriples_line(line, lineno)
    return (s, p, o, None)


def parse_nquads(text: str) -> Iterator[Quad]:
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_nquads_line(line, lineno)


def serialize_quad(quad: Quad) -> str:
    s, p, o, graph = quad
    if graph is None:
        return f"{s.n3()} {p.n3()} {o.n3()} ."
    return f"{s.n3()} {p.n3()} {o.n3()} {graph.n3()} ."


def serialize_nquads(dataset: Dataset) -> str:
    """Deterministic N-Quads document for a dataset."""
    lines = [
        serialize_quad((s, p, o, None)) for s, p, o in dataset.default
    ]
    for graph in dataset.graphs():
        identifier = graph.identifier
        lines.extend(
            serialize_quad((s, p, o, identifier)) for s, p, o in graph
        )
    lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def load_nquads(
    text: str, dataset: Optional[Dataset] = None
) -> Dataset:
    """Parse an N-Quads document into a dataset (new when omitted)."""
    if dataset is None:
        dataset = Dataset()
    for s, p, o, graph in parse_nquads(text):
        if graph is None:
            dataset.default.add((s, p, o))
        else:
            dataset.graph(graph).add((s, p, o))
    return dataset


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write the dataset to ``path`` as N-Quads."""
    Path(path).write_text(serialize_nquads(dataset), encoding="utf-8")


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    return load_nquads(Path(path).read_text(encoding="utf-8"))
