"""Command-line interface.

Usage::

    python -m repro annotate "Tramonto sulla Mole Antonelliana" --tags mole
    python -m repro annotate-batch --contents 200 --workers 4 --fail dbpedia
    python -m repro detect "una foto del mercato"
    python -m repro query data.nt "SELECT ?s WHERE { ?s ?p ?o } LIMIT 5"
    python -m repro demo
    python -m repro dump
    python -m repro lint --self-check
    python -m repro lint examples/ benchmarks/
    python -m repro lint --concurrency
    python -m repro lint --effects --json -
    python -m repro sanitize --workers 4
    python -m repro store info /var/lib/repro/store
    python -m repro store recover /var/lib/repro/store

Each subcommand is a thin wrapper over the library; everything it prints
can be reproduced programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """``--trace[=FILE]`` / ``--metrics[=FILE]`` for commands that run
    instrumented code paths. Use the ``=FILE`` form when the flag is
    followed by a positional argument."""
    parser.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="FILE",
        help="enable tracing and print the span tree after the run "
             "(with FILE, also append spans as JSON lines)",
    )
    parser.add_argument(
        "--metrics", nargs="?", const="", default=None, metavar="FILE",
        help="print the Prometheus metrics exposition after the run "
             "(with FILE, write it to FILE instead)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'LODifying personal content sharing' "
            "(EDBT 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    annotate = sub.add_parser(
        "annotate",
        help="run the semantic annotation pipeline on a title",
    )
    annotate.add_argument("title")
    annotate.add_argument(
        "--tags", default="",
        help="comma-separated plain tags",
    )
    annotate.add_argument(
        "--lang", default=None,
        help="skip language detection and use this code",
    )
    _add_obs_flags(annotate)

    batch = sub.add_parser(
        "annotate-batch",
        help="batch-annotate a synthetic back catalog and report "
             "throughput + resolver health",
    )
    batch.add_argument(
        "--contents", type=int, default=100,
        help="synthetic catalog size (default: 100)",
    )
    batch.add_argument(
        "--workers", type=int, default=4,
        help="parallel annotation workers (default: 4; 1 = sequential)",
    )
    batch.add_argument(
        "--batch-size", type=int, default=25, dest="batch_size",
        help="items per checkpoint batch (default: 25)",
    )
    batch.add_argument(
        "--fail", default=None, metavar="RESOLVER[:RATE]",
        help="inject faults: make RESOLVER fail at RATE (default 1.0), "
             "e.g. --fail dbpedia or --fail geonames:0.3",
    )
    batch.add_argument(
        "--latency", type=float, default=0.0,
        help="simulated per-call resolver latency in seconds "
             "(default: 0)",
    )
    batch.add_argument(
        "--seed", type=int, default=0,
        help="fault-injection seed (default: 0)",
    )
    batch.add_argument(
        "--no-resilience", action="store_true", dest="no_resilience",
        help="call resolvers directly — no retry/breaker/cache layer",
    )
    batch.add_argument(
        "--retries", type=int, default=3,
        help="total attempts per resolver call (default: 3)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None,
        help="per-call resolver timeout in seconds (default: none)",
    )
    _add_obs_flags(batch)

    detect = sub.add_parser(
        "detect", help="identify the language of a text"
    )
    detect.add_argument("text")

    query = sub.add_parser(
        "query", help="run a SPARQL query over an N-Triples file"
    )
    query.add_argument("file", help="N-Triples input ('-' for stdin)")
    query.add_argument("sparql")
    _add_obs_flags(query)

    sub.add_parser(
        "demo", help="run the Turin eTourism walkthrough"
    )

    sub.add_parser(
        "dump",
        help="print the demo platform's D2R N-Triples dump",
    )

    lint = sub.add_parser(
        "lint",
        help="statically analyze SPARQL queries, D2R mappings, dumps "
             "and (with --concurrency/--effects) the Python source "
             "itself",
    )
    lint.add_argument(
        "files", nargs="*",
        help="files or directories to lint (.rq/.sparql/.py/.nt; with "
             "--concurrency: Python sources, default src/repro)",
    )
    lint.add_argument(
        "--queries", action="store_true",
        help="lint the built-in queries (Q1/Q2/Q3/M1, album builder)",
    )
    lint.add_argument(
        "--mapping", action="store_true",
        help="lint the platform's D2R mapping against its schema",
    )
    lint.add_argument(
        "--self-check", action="store_true", dest="self_check",
        help="lint everything the system ships (queries, mapping, dump)",
    )
    lint.add_argument(
        "--concurrency", action="store_true",
        help="run the CC-rule concurrency analyzer over Python "
             "sources (positional paths, default: the repro package)",
    )
    lint.add_argument(
        "--effects", action="store_true",
        help="run the EF-rule store-effect analyzer over Python "
             "sources (positional paths, default: the repro package)",
    )
    lint.add_argument(
        "--min-severity", default="info",
        help="hide diagnostics below this severity "
             "(info, warning or error; default: info)",
    )
    lint.add_argument(
        "--fail-on", default="error", dest="fail_on",
        help="exit non-zero when any diagnostic at or above this "
             "severity exists (info, warning or error; default: error)",
    )
    lint.add_argument(
        "--json", default=None, metavar="FILE", dest="json_out",
        help="also write the diagnostics as a JSON object "
             "({catalog, diagnostics}) to FILE ('-' for stdout)",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="run a parallel batch-annotation workload under the "
             "runtime lock sanitizer and report inversions/long holds",
    )
    sanitize.add_argument(
        "--contents", type=int, default=60,
        help="synthetic catalog size (default: 60)",
    )
    sanitize.add_argument(
        "--workers", type=int, default=4,
        help="parallel annotation workers (default: 4)",
    )
    sanitize.add_argument(
        "--batch-size", type=int, default=20, dest="batch_size",
        help="items per checkpoint batch (default: 20)",
    )
    sanitize.add_argument(
        "--long-hold-ms", type=float, default=250.0,
        dest="long_hold_ms",
        help="flag lock holds longer than this (default: 250 ms)",
    )
    sanitize.add_argument(
        "--store", action="store_true",
        help="also install the runtime store sanitizer and report "
             "mutation-during-iteration and Graph-writes contract "
             "violations",
    )

    explain = sub.add_parser(
        "explain",
        help="plan a query and print the annotated algebra tree",
    )
    explain.add_argument(
        "query",
        help="builtin query name (Q1/Q2/Q3/M1/builder), a .rq/.sparql "
             "path (or @path), or raw SPARQL text",
    )
    explain.add_argument(
        "--file", default=None,
        help="N-Triples data to plan against ('-' for stdin; default: "
             "a synthetic Turin workload)",
    )
    explain.add_argument(
        "--contents", type=int, default=100,
        help="synthetic workload size when --file is not given "
             "(default: 100)",
    )
    explain.add_argument(
        "--no-exec", action="store_true", dest="no_exec",
        help="plan only — skip execution (no actual cardinalities)",
    )
    explain.add_argument(
        "--compare", action="store_true",
        help="also run and time the naive evaluation path",
    )
    _add_obs_flags(explain)

    store = sub.add_parser(
        "store",
        help="inspect and maintain an on-disk MVCC quad-store "
             "(WAL + snapshots)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def _store_policy_flags(parser) -> None:
        parser.add_argument(
            "--checkpoint-ops", type=int, metavar="N", default=None,
            help="auto-checkpoint once N effective ops were committed "
                 "since the last checkpoint",
        )
        parser.add_argument(
            "--checkpoint-wal-bytes", type=int, metavar="N",
            default=None,
            help="auto-checkpoint once the WAL tail exceeds N bytes",
        )
        parser.add_argument(
            "--group-commit", action="store_true", dest="group_commit",
            help="coalesce concurrent commit batches into shared WAL "
                 "flushes (one fsync per group)",
        )

    store_info = store_sub.add_parser(
        "info",
        help="print generation, sizes, WAL/snapshot state, checkpoint "
             "policy, group-commit stats and the recovery outcome of "
             "opening the store",
    )
    store_info.add_argument("directory", help="store directory")
    _store_policy_flags(store_info)
    store_compact = store_sub.add_parser(
        "compact",
        help="fold overlays, write a fresh snapshot, reset the WAL "
             "and prune old snapshot files",
    )
    store_compact.add_argument("directory", help="store directory")
    store_recover = store_sub.add_parser(
        "recover",
        help="replay snapshot + WAL, truncate any torn tail, and "
             "report what was restored (the last committed generation)",
    )
    store_recover.add_argument("directory", help="store directory")
    store_load = store_sub.add_parser(
        "load",
        help="load an N-Quads (or N-Triples) file into the store as "
             "one committed generation",
    )
    store_load.add_argument("directory", help="store directory")
    store_load.add_argument("file", help="N-Quads input ('-' for stdin)")
    _store_policy_flags(store_load)
    store_dump = store_sub.add_parser(
        "dump",
        help="print the store's content as canonical sorted N-Quads",
    )
    store_dump.add_argument("directory", help="store directory")

    obs = sub.add_parser(
        "obs", help="observability utilities (tracing + metrics)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_demo = obs_sub.add_parser(
        "demo",
        help="annotate the gold workload under tracing and print the "
             "Figure 1 stage-latency breakdown",
    )
    obs_demo.add_argument(
        "--tree", action="store_true",
        help="also print the span tree of the first annotated title",
    )

    obs_loadgen = obs_sub.add_parser(
        "loadgen",
        help="drive a deterministic mixed traffic load (uploads, "
             "search, albums, mashups, browsing, store writes) against "
             "a fresh platform + store and report latency distributions",
    )
    obs_loadgen.add_argument(
        "--mix", default="default",
        help="traffic mix: default, read-heavy, write-heavy, ingest",
    )
    obs_loadgen.add_argument("--seed", type=int, default=42)
    obs_loadgen.add_argument(
        "--ops", type=int, default=60, help="operations to execute"
    )
    obs_loadgen.add_argument(
        "--workers", type=int, default=4, help="worker threads"
    )
    obs_loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed-loop (back-to-back) or open-loop (paced arrivals)",
    )
    obs_loadgen.add_argument(
        "--rate", type=float, default=20.0,
        help="open-loop arrival rate in ops/second",
    )
    obs_loadgen.add_argument(
        "--base-contents", type=int, default=25,
        help="pre-loaded contents before the run starts",
    )
    obs_loadgen.add_argument(
        "--sync-every", type=int, default=4,
        help="uploads per store synchronization",
    )
    obs_loadgen.add_argument(
        "--schedule-only", action="store_true",
        help="print the deterministic operation schedule and exit",
    )
    obs_loadgen.add_argument(
        "--slo", nargs="?", const="", default=None, metavar="SPEC",
        help="evaluate SLOs after the run (default spec, or a JSON "
             "spec file); exits 1 on breach",
    )
    obs_loadgen.add_argument(
        "--report", metavar="FILE",
        help="write the SLO report (or load report) as JSON",
    )
    obs_loadgen.add_argument(
        "--save-metrics", metavar="FILE",
        help="write the run's metrics snapshot + metadata as JSON "
             "(consumable by 'repro obs slo --input')",
    )
    obs_loadgen.add_argument(
        "--profile", nargs="?", const="", default=None, metavar="FILE",
        help="sample the run with the wall-clock profiler (optionally "
             "writing collapsed stacks to FILE); REPRO_PROFILE=1|FILE "
             "does the same from the environment",
    )
    obs_loadgen.add_argument(
        "--profile-hz", type=float, default=67.0,
        help="profiler sampling rate",
    )

    obs_slo = obs_sub.add_parser(
        "slo",
        help="judge a saved metrics snapshot against an SLO spec and "
             "emit a structured pass/fail report (exit 1 on breach)",
    )
    obs_slo.add_argument(
        "--input", required=True, metavar="FILE",
        help="metrics JSON ('repro obs loadgen --save-metrics' output "
             "or a raw registry snapshot)",
    )
    obs_slo.add_argument(
        "--spec", metavar="FILE",
        help="JSON SLO spec (omit for the default loadgen spec)",
    )
    obs_slo.add_argument(
        "--report", metavar="FILE", help="write the report as JSON"
    )

    obs_profile = obs_sub.add_parser(
        "profile",
        help="run a small load under the sampling profiler and print "
             "the hottest stacks (flamegraph-compatible output)",
    )
    obs_profile.add_argument("--seed", type=int, default=42)
    obs_profile.add_argument("--ops", type=int, default=40)
    obs_profile.add_argument("--workers", type=int, default=4)
    obs_profile.add_argument("--hz", type=float, default=200.0)
    obs_profile.add_argument(
        "--top", type=int, default=10, help="hot frames to print"
    )
    obs_profile.add_argument(
        "--output", metavar="FILE",
        help="write collapsed stacks (flamegraph.pl input) to FILE",
    )

    obs_health = obs_sub.add_parser(
        "health",
        help="one-shot health probe: a tiny mixed load run judged "
             "against the default SLOs (exit 1 when unhealthy)",
    )
    obs_health.add_argument("--seed", type=int, default=42)
    # 32+ ops is the smallest schedule where every op kind of the
    # default mix reliably appears (a missing kind reads as "no data"
    # and would fail its SLO)
    obs_health.add_argument("--ops", type=int, default=32)
    return parser


def _cmd_annotate(args) -> int:
    from .core import build_default_annotator

    tags = [t for t in args.tags.split(",") if t]
    annotator = build_default_annotator()
    result = annotator.annotate(args.title, tags, language=args.lang)
    print(f"language : {result.language}")
    print(f"NP lemmas: {', '.join(result.np_lemmas) or '-'}")
    print(f"tf words : {', '.join(result.frequency_words) or '-'}")
    print(f"words    : {', '.join(result.words) or '-'}")
    if not result.words:
        return 0
    for word in result.words:
        outcome = result.outcome_for(word)
        if outcome is None:
            continue
        if outcome.annotated:
            chosen = outcome.chosen
            print(f"  {word!r} -> {chosen.resource} [{chosen.graph}]")
        else:
            print(f"  {word!r} -> ({outcome.reason.value})")
    return 0


def _cmd_annotate_batch(args) -> int:
    import time

    from .core import BatchAnnotator
    from .core.annotator import SemanticAnnotator
    from .core.filtering import SemanticFilter
    from .lod import build_lod_corpus
    from .platform import Platform
    from .rdf import Graph
    from .resolvers import SemanticBroker, default_resolvers
    from .resolvers.resilience import (
        FlakyResolver,
        RetryPolicy,
        wrap_resilient,
    )
    from .workloads import (
        WorkloadConfig,
        generate_workload,
        populate_platform,
    )

    if args.contents <= 0:
        print("error: --contents must be positive", file=sys.stderr)
        return 2
    if args.workers <= 0 or args.batch_size <= 0:
        print("error: --workers and --batch-size must be positive",
              file=sys.stderr)
        return 2

    platform = Platform()
    workload = generate_workload(WorkloadConfig(
        n_users=max(10, args.contents // 50),
        n_contents=args.contents,
        cities=("Turin",),
        seed=42,
    ))
    populate_platform(platform, workload)

    corpus = build_lod_corpus()
    resolvers = default_resolvers(corpus)
    if args.latency:
        resolvers = [
            FlakyResolver(r, failure_rate=0.0, latency=args.latency)
            for r in resolvers
        ]
    if args.fail is not None:
        name, _, rate_text = args.fail.partition(":")
        try:
            rate = float(rate_text) if rate_text else 1.0
        except ValueError:
            print(f"error: bad failure rate {rate_text!r}",
                  file=sys.stderr)
            return 2
        known = {r.name for r in resolvers}
        if name not in known:
            print(f"error: unknown resolver {name!r} "
                  f"(known: {', '.join(sorted(known))})",
                  file=sys.stderr)
            return 2
        resolvers = [
            FlakyResolver(r, failure_rate=rate, seed=args.seed)
            if r.name == name else r
            for r in resolvers
        ]
    if not args.no_resilience:
        resolvers = wrap_resilient(
            resolvers,
            retry=RetryPolicy(
                attempts=max(1, args.retries),
                base_delay=0.001,
                max_delay=0.05,
            ),
            timeout=args.timeout,
        )
    platform.annotator = SemanticAnnotator(
        SemanticBroker(resolvers), SemanticFilter(corpus)
    )

    batch = BatchAnnotator(
        platform, Graph(),
        batch_size=args.batch_size, workers=args.workers,
    )
    started = time.perf_counter()
    stats = batch.run()
    elapsed = time.perf_counter() - started

    mode = (
        f"{args.workers} worker(s)" if args.workers > 1 else "sequential"
    )
    print(f"catalog   : {args.contents} item(s), {mode}, "
          f"batch size {args.batch_size}")
    print(f"processed : {stats.processed}  annotated: {stats.annotated}"
          f"  triples: {stats.triples_added}  failed: {stats.failed}")
    if stats.degraded_items:
        print(f"degraded  : {stats.degraded_items} item(s) annotated "
              f"from partial candidates "
              f"({stats.resolver_failures} isolated resolver "
              f"failure(s))")
    if stats.resolver_report:
        print(f"cache     : {stats.cache_hit_rate:.1%} hit rate "
              f"({stats.cache_hits} hits / {stats.cache_misses} "
              f"misses)")
        print(f"retries   : {stats.retries}  timeouts: {stats.timeouts}"
              f"  breaker trips: {stats.breaker_trips}")
        header = (f"{'resolver':<10} {'calls':>6} {'ok':>5} "
                  f"{'fail':>5} {'retry':>6} {'trips':>6} "
                  f"{'state':<9} {'mean ms':>8}")
        print(header)
        for name in sorted(stats.resolver_report):
            s = stats.resolver_report[name]
            print(f"{name:<10} {s.calls:>6} {s.successes:>5} "
                  f"{s.failures:>5} {s.retries:>6} "
                  f"{s.breaker_trips:>6} {s.breaker_state:<9} "
                  f"{s.mean_latency_ms:>8.2f}")
    rate = stats.processed / elapsed if elapsed else 0.0
    print(f"elapsed   : {elapsed:.2f} s ({rate:.1f} item(s)/s)")
    return 0


def _cmd_detect(args) -> int:
    from .nlp import default_detector

    detection = default_detector().detect_with_confidence(args.text)
    print(f"{detection.language} (confidence {detection.confidence:.3f})")
    return 0


def _cmd_query(args) -> int:
    from .rdf import load_ntriples
    from .sparql import Evaluator, SelectResult
    from .rdf.graph import Graph

    if args.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.file}: {exc}",
                  file=sys.stderr)
            return 2
    graph = load_ntriples(text)
    result = Evaluator(graph).evaluate(args.sparql)
    if isinstance(result, SelectResult):
        print(result.to_table())
        print(f"({len(result)} row(s))")
    elif isinstance(result, bool):
        print("yes" if result else "no")
    elif isinstance(result, Graph):
        output = result.serialize("ntriples")
        print(output, end="" if output.endswith("\n") else "\n")
    return 0


def _cmd_demo(args) -> int:
    import runpy
    from pathlib import Path

    script = (
        Path(__file__).resolve().parent.parent.parent
        / "examples" / "etourism_trip.py"
    )
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    # installed without the examples directory: run a compact inline demo
    from .core import geo_album
    from .platform import Capture, Platform
    from .sparql import Point

    platform = Platform()
    platform.register_user("walter", "Walter Goix")
    platform.upload(Capture(
        username="walter",
        title="Tramonto sulla Mole Antonelliana",
        tags=("mole",),
        timestamp=1_325_376_000,
        point=Point(7.6930, 45.0690),
    ))
    platform.semanticize()
    album = geo_album("Mole Antonelliana", radius_km=0.3)
    for link in album.links(platform.evaluator()):
        print(link)
    return 0


def _cmd_dump(args) -> int:
    from .platform import Capture, Platform
    from .sparql import Point

    platform = Platform()
    platform.register_user("oscar", "Oscar Rodriguez")
    platform.register_user("walter", "Walter Goix")
    platform.add_friendship("oscar", "walter")
    platform.upload(Capture(
        username="walter",
        title="Coliseum interior",
        tags=("coliseum", "rome"),
        timestamp=1_325_376_000,
        point=Point(12.4924, 41.8902),
    ))
    print(platform.dump_ntriples(), end="")
    return 0


def _collect_lint_diagnostics(args) -> "object":
    """Fill one :class:`DiagnosticReport` from every requested mode.

    Every lint mode funnels through here so severity filtering, JSON
    output and exit-code policy cannot drift between modes — they are
    applied exactly once, in :func:`_cmd_lint`.
    """
    from pathlib import Path

    from .analysis import (
        DiagnosticReport,
        SparqlLinter,
        builtin_queries,
        lint_path,
        self_check,
    )

    report = DiagnosticReport()
    linter = SparqlLinter.default()
    if args.self_check:
        report.extend(self_check(linter))
    else:
        if args.queries:
            for name, query in builtin_queries():
                report.extend(linter.lint(query, name=name))
        if args.mapping:
            from .analysis import MappingLinter
            from .platform import Platform

            platform = Platform()
            report.extend(MappingLinter().lint(
                platform.mapping, platform.db, name="platform-mapping"
            ))
    source_analyzers = []
    if args.concurrency:
        from .analysis.concurrency import analyze_paths

        source_analyzers.append(analyze_paths)
    if getattr(args, "effects", False):
        from .analysis.effects import analyze_effects

        source_analyzers.append(analyze_effects)
    if source_analyzers:
        targets = [Path(p) for p in args.files]
        if not targets:
            # default: the installed repro package itself
            targets = [Path(__file__).resolve().parent]
        for analyze in source_analyzers:
            report.extend(analyze(targets))
    else:
        for path in args.files:
            report.extend(lint_path(Path(path), linter))
    return report


def _diagnostics_as_json(report) -> str:
    """Render ``report`` as a machine-readable JSON envelope.

    The envelope carries the rule-catalog version (so CI artifacts can
    be compared across revisions) and the diagnostics sorted by
    ``(source, line, rule, message)`` — the order is deterministic
    regardless of which lint modes produced them or in what order.
    """
    import json

    from .analysis import CATALOG_VERSION

    def _line(diag) -> int:
        if diag.line is not None:
            return diag.line
        if diag.span is not None:
            return diag.span.start
        return 0

    payload = []
    for diag in sorted(
        report,
        key=lambda d: (d.source or "", _line(d), d.rule, d.message),
    ):
        payload.append({
            "rule": diag.rule,
            "severity": diag.severity.name.lower(),
            "message": diag.message,
            "source": diag.source,
            "line": diag.line,
            "span": (
                [diag.span.start, diag.span.end] if diag.span else None
            ),
            "suggestion": diag.suggestion,
        })
    envelope = {"catalog": CATALOG_VERSION, "diagnostics": payload}
    return json.dumps(envelope, indent=2, sort_keys=True)


def _cmd_lint(args) -> int:
    from .analysis import Severity

    try:
        min_severity = Severity.parse(args.min_severity)
    except ValueError:
        allowed = ", ".join(s.name.lower() for s in Severity)
        print(
            f"error: unknown severity {args.min_severity!r} "
            f"(allowed: {allowed})",
            file=sys.stderr,
        )
        return 2

    try:
        fail_on = Severity.parse(args.fail_on)
    except ValueError:
        allowed = ", ".join(s.name.lower() for s in Severity)
        print(
            f"error: unknown severity {args.fail_on!r} "
            f"(allowed: {allowed})",
            file=sys.stderr,
        )
        return 2

    if not (
        args.files or args.queries or args.mapping
        or args.self_check or args.concurrency or args.effects
    ):
        print("error: nothing to lint (give files or --queries/--mapping/"
              "--self-check/--concurrency/--effects)", file=sys.stderr)
        return 2

    report = _collect_lint_diagnostics(args)

    rendered = report.render(min_severity)
    if rendered:
        print(rendered)
    if args.json_out is not None:
        text = _diagnostics_as_json(report)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
    shown = len(report.at_least(min_severity))
    errors = len(report.errors)
    print(f"{len(report)} diagnostic(s) ({shown} shown, "
          f"{errors} error(s))")
    return 1 if report.at_least(fail_on) else 0


def _noop_context():
    from contextlib import nullcontext

    return nullcontext()


def _cmd_sanitize(args) -> int:
    from .analysis.sanitizer import LockSanitizer
    from .core import BatchAnnotator
    from .platform import Platform
    from .rdf import Graph
    from .workloads import (
        WorkloadConfig,
        generate_workload,
        populate_platform,
    )

    if args.contents <= 0 or args.workers <= 0 or args.batch_size <= 0:
        print("error: --contents, --workers and --batch-size must be "
              "positive", file=sys.stderr)
        return 2

    sanitizer = LockSanitizer(
        long_hold_threshold=args.long_hold_ms / 1000.0
    )
    store_sanitizer = None
    if args.store:
        from .analysis.store_sanitizer import StoreSanitizer

        store_sanitizer = StoreSanitizer()
    with sanitizer.installed(), (
        store_sanitizer.installed()
        if store_sanitizer is not None
        else _noop_context()
    ):
        platform = Platform()
        workload = generate_workload(WorkloadConfig(
            n_users=max(5, args.contents // 20),
            n_contents=args.contents,
            cities=("Turin",),
            seed=42,
        ))
        populate_platform(platform, workload)
        batch = BatchAnnotator(
            platform, Graph(),
            batch_size=args.batch_size, workers=args.workers,
        )
        stats = batch.run()

    report = sanitizer.report()
    print(f"workload  : {args.contents} item(s), {args.workers} "
          f"worker(s), batch size {args.batch_size}")
    print(f"processed : {stats.processed}  annotated: {stats.annotated}"
          f"  failed: {stats.failed}")
    print()
    print(report.render())
    failed = bool(report.inversions)
    if store_sanitizer is not None:
        store_report = store_sanitizer.report()
        print()
        print(store_report.render())
        failed = failed or store_report.violations > 0
    return 1 if failed else 0


def _cmd_explain(args) -> int:
    from .analysis.self_check import builtin_queries
    from .sparql import Evaluator
    from .sparql.parser import SparqlSyntaxError

    builtins = dict(builtin_queries())
    name = None
    if args.query in builtins:
        name = args.query
        text = builtins[args.query]
    elif args.query.startswith("@") or args.query.endswith(
        (".rq", ".sparql")
    ):
        path = args.query.lstrip("@")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        name = path
    else:
        text = args.query

    if args.file is not None:
        from .rdf import load_ntriples

        if args.file == "-":
            source = sys.stdin.read()
        else:
            try:
                with open(args.file, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                print(f"error: cannot read {args.file}: {exc}",
                      file=sys.stderr)
                return 2
        graph = load_ntriples(source)
    else:
        from .workloads import (
            WorkloadConfig,
            generate_workload,
            populate_platform,
        )
        from .platform import Platform

        platform = Platform()
        workload = generate_workload(WorkloadConfig(
            n_users=max(10, args.contents // 50),
            n_contents=args.contents,
            cities=("Turin",),
            seed=42,
        ))
        populate_platform(platform, workload)
        platform.semanticize()
        graph = platform.union_graph()

    evaluator = Evaluator(graph)
    try:
        explanation = evaluator.explain(
            text,
            name=name,
            execute=not args.no_exec,
            compare=args.compare,
        )
    except SparqlSyntaxError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(explanation.render())
    return 0


def _cmd_store(args) -> int:
    import json

    from .store import CheckpointPolicy, QuadStore

    def policy_kwargs() -> dict:
        kwargs: dict = {}
        ops = getattr(args, "checkpoint_ops", None)
        wal_bytes = getattr(args, "checkpoint_wal_bytes", None)
        if ops is not None or wal_bytes is not None:
            kwargs["checkpoint_policy"] = CheckpointPolicy(
                ops=ops, wal_bytes=wal_bytes
            )
        if getattr(args, "group_commit", False):
            kwargs["group_commit"] = True
        return kwargs

    if args.store_command == "info":
        with QuadStore(args.directory, **policy_kwargs()) as store:
            print(json.dumps(store.info(), indent=2, sort_keys=True))
        return 0

    if args.store_command == "compact":
        with QuadStore(args.directory) as store:
            summary = store.compact()
            print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    if args.store_command == "recover":
        # opening the store *is* the recovery: newest readable snapshot
        # + committed WAL tail, with any torn trailing record truncated
        with QuadStore(args.directory) as store:
            report = store.recovery
            if report is not None:
                print(report.render())
            print(f"generation: {store.generation}")
            print(f"quads: {store.size}")
        return 0

    if args.store_command == "load":
        from .rdf.nquads import parse_nquads
        from .store.wal import OP_ADD

        if args.file == "-":
            text = sys.stdin.read()
        else:
            with open(args.file, "r", encoding="utf-8") as handle:
                text = handle.read()
        with QuadStore(args.directory, **policy_kwargs()) as store:
            ops = [
                (OP_ADD, (s, p, o), graph)
                for s, p, o, graph in parse_nquads(text)
            ]
            generation, effective = store.apply(ops)
            # let a policy-triggered checkpoint finish before closing,
            # so the replay cost the flags asked to bound is bounded
            store.wait_for_checkpoints()
            print(
                f"loaded {effective} new quad(s) "
                f"({len(ops)} statement(s)) at generation {generation}"
            )
        return 0

    if args.store_command == "dump":
        with QuadStore(args.directory) as store:
            sys.stdout.write(store.to_nquads())
        return 0

    raise AssertionError(args.store_command)  # pragma: no cover


def _cmd_obs(args) -> int:
    if args.obs_command == "demo":
        return _cmd_obs_demo(args)
    if args.obs_command == "loadgen":
        return _cmd_obs_loadgen(args)
    if args.obs_command == "slo":
        return _cmd_obs_slo(args)
    if args.obs_command == "profile":
        return _cmd_obs_profile(args)
    if args.obs_command == "health":
        return _cmd_obs_health(args)
    print(f"error: unknown obs command {args.obs_command!r}",
          file=sys.stderr)
    return 2


def _write_json(path: str, payload) -> None:
    import json
    import os

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_obs_loadgen(args) -> int:
    from .obs import (
        MetricsRegistry,
        SamplingProfiler,
        SLOSpec,
        default_slo,
        evaluate_slo,
        profile_from_env,
        set_registry,
    )
    from .workloads.loadgen import (
        LoadConfig,
        LoadGenerator,
        build_schedule,
        render_schedule,
        schedule_digest,
    )

    try:
        config = LoadConfig(
            mix=args.mix,
            seed=args.seed,
            ops=args.ops,
            workers=args.workers,
            mode=args.mode,
            rate=args.rate,
            base_contents=args.base_contents,
            sync_every=args.sync_every,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    schedule = build_schedule(config)
    if args.schedule_only:
        print(render_schedule(schedule))
        print(f"schedule digest: {schedule_digest(schedule)}")
        return 0

    profile_path = None
    if args.profile is not None:
        profiler = SamplingProfiler(hz=args.profile_hz)
        profile_path = args.profile or None
    else:
        profiler, env_path = profile_from_env()
        profile_path = str(env_path) if env_path else None

    registry = MetricsRegistry()
    previous = set_registry(registry)
    stats = None
    try:
        generator = LoadGenerator(config)
        generator.setup()
        if profiler is not None:
            profiler.start()
        try:
            report = generator.run()
        finally:
            if profiler is not None:
                stats = profiler.stop()
    finally:
        set_registry(previous)

    print(report.render())
    if profiler is not None and stats is not None:
        print(
            f"profiler: {stats.samples} sample(s) over "
            f"{stats.threads_seen} thread(s), "
            f"duty cycle {stats.duty_cycle:.2%}"
        )
        if profile_path:
            written = profiler.write_collapsed(profile_path)
            print(f"collapsed stacks -> {written}")
        else:
            for frame, count in profiler.top(5):
                print(f"  {count:>5}  {frame}")
    if args.save_metrics:
        _write_json(args.save_metrics, {
            "meta": report.to_dict(),
            "metrics": report.metrics,
        })
        print(f"metrics snapshot -> {args.save_metrics}")

    if args.slo is None:
        if args.report:
            _write_json(args.report, report.to_dict())
            print(f"load report -> {args.report}")
        return 0
    spec = SLOSpec.load(args.slo) if args.slo else default_slo()
    slo_report = evaluate_slo(spec, report.metrics, report.wall_seconds)
    print()
    print(slo_report.render())
    if args.report:
        _write_json(args.report, slo_report.to_dict())
        print(f"SLO report -> {args.report}")
    return 0 if slo_report.passed else 1


def _cmd_obs_slo(args) -> int:
    import json

    from .obs import SLOError, SLOSpec, default_slo, evaluate_slo

    try:
        with open(args.input, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    if "metrics" in payload:  # a --save-metrics bundle
        snapshot = payload["metrics"]
        wall = payload.get("meta", {}).get("wall_seconds")
    else:  # a raw registry snapshot
        snapshot = payload
        wall = None
    try:
        spec = SLOSpec.load(args.spec) if args.spec else default_slo()
    except SLOError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = evaluate_slo(spec, snapshot, wall)
    print(report.render())
    if args.report:
        _write_json(args.report, report.to_dict())
        print(f"SLO report -> {args.report}")
    return 0 if report.passed else 1


def _cmd_obs_profile(args) -> int:
    from .obs import MetricsRegistry, SamplingProfiler, set_registry
    from .workloads.loadgen import LoadConfig, LoadGenerator

    config = LoadConfig(
        seed=args.seed, ops=args.ops, workers=args.workers
    )
    profiler = SamplingProfiler(hz=args.hz)
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        generator = LoadGenerator(config)
        generator.setup()
        profiler.start()
        try:
            report = generator.run()
        finally:
            stats = profiler.stop()
    finally:
        set_registry(previous)
    print(
        f"profiled {report.completed} op(s) in "
        f"{report.wall_seconds:.2f}s: {stats.samples} sample(s) at "
        f"{args.hz:g} Hz over {stats.threads_seen} thread(s), "
        f"duty cycle {stats.duty_cycle:.2%}"
    )
    print(f"hottest frames (inclusive samples, top {args.top}):")
    for frame, count in profiler.top(args.top):
        print(f"  {count:>5}  {frame}")
    if args.output:
        written = profiler.write_collapsed(args.output)
        print(f"collapsed stacks -> {written}")
    return 0


def _cmd_obs_health(args) -> int:
    from .obs import (
        MetricsRegistry,
        default_slo,
        evaluate_slo,
        set_registry,
    )
    from .workloads.loadgen import LoadConfig, LoadGenerator

    config = LoadConfig(seed=args.seed, ops=args.ops, workers=2)
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        generator = LoadGenerator(config)
        generator.setup()
        report = generator.run()
    finally:
        set_registry(previous)
    slo_report = evaluate_slo(
        default_slo(), report.metrics, report.wall_seconds
    )
    verdict = "healthy" if slo_report.passed else "UNHEALTHY"
    print(
        f"{verdict}: {report.completed} op(s) at "
        f"{report.throughput:.1f} op/s, {report.errors} error(s), "
        f"{len(slo_report.results) - len(slo_report.breaches)}/"
        f"{len(slo_report.results)} SLO(s) met"
    )
    for breach in slo_report.breaches:
        print(
            f"  breach: {breach.objective.name} "
            f"({breach.objective.target_text()}) — {breach.detail or ''}"
        )
    return 0 if slo_report.passed else 1


def _cmd_obs_demo(args) -> int:
    """Annotate the gold workload under an enabled tracer and report
    where the Figure 1 pipeline spends its time."""
    import time

    from .core import build_default_annotator
    from .core.annotator import STAGE_HISTOGRAM
    from .obs import (
        InMemorySpanExporter,
        MetricsRegistry,
        Tracer,
        render_span_tree,
        set_registry,
        set_tracer,
    )
    from .workloads import GOLD_CORPUS

    registry = MetricsRegistry()
    buffer = InMemorySpanExporter(capacity=65536)
    previous_registry = set_registry(registry)
    previous_tracer = set_tracer(
        Tracer(enabled=True, exporters=[buffer])
    )
    try:
        annotator = build_default_annotator()
        started = time.perf_counter()
        for example in GOLD_CORPUS:
            annotator.annotate(example.title, example.tags)
        total_s = time.perf_counter() - started
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)

    print(f"gold workload: {len(GOLD_CORPUS)} title(s) annotated in "
          f"{total_s * 1000.0:.1f} ms")
    family = registry.get(STAGE_HISTOGRAM)
    if family is not None:
        print()
        print(f"{'stage':<12} {'calls':>6} {'total ms':>9} "
              f"{'mean ms':>8} {'p95 ms':>8} {'max ms':>8} "
              f"{'share':>6}")
        rows = []
        for labels, child in family.children():
            rows.append((labels.get("stage", "?"), child))
        accounted = sum(child.sum for _, child in rows)
        for stage, child in sorted(
            rows, key=lambda pair: -pair[1].sum
        ):
            share = child.sum / accounted if accounted else 0.0
            print(f"{stage:<12} {child.count:>6} "
                  f"{child.sum * 1000.0:>9.1f} "
                  f"{child.mean * 1000.0:>8.2f} "
                  f"{child.quantile(0.95) * 1000.0:>8.2f} "
                  f"{child.max * 1000.0:>8.2f} "
                  f"{share:>6.1%}")
        print(f"{'(stages)':<12} {'':>6} {accounted * 1000.0:>9.1f}")
    if args.tree:
        spans = buffer.spans()
        roots = [
            s for s in spans
            if s.name == "annotate" and s.parent_id is None
        ]
        if roots:
            first = roots[0]
            members = [
                s for s in spans if s.trace_id == first.trace_id
            ]
            print()
            print("== first title's span tree ==")
            print(render_span_tree(members))
    return 0


def _obs_begin(args):
    """Install an enabled tracer when ``--trace`` was given; returns
    the state _obs_end needs (or None when tracing stays off)."""
    if getattr(args, "trace", None) is None:
        return None
    from .obs import (
        InMemorySpanExporter,
        JsonLinesExporter,
        Tracer,
        set_tracer,
    )

    buffer = InMemorySpanExporter(capacity=65536)
    exporters = [buffer]
    file_exporter = None
    if args.trace:
        file_exporter = JsonLinesExporter(args.trace)
        exporters.append(file_exporter)
    previous = set_tracer(Tracer(enabled=True, exporters=exporters))
    return {
        "buffer": buffer,
        "file": file_exporter,
        "previous": previous,
    }


def _obs_end(obs, args) -> None:
    """Print/dump the trace and metrics the command accumulated."""
    if obs is not None:
        from .obs import render_span_tree, set_tracer

        set_tracer(obs["previous"])
        if obs["file"] is not None:
            obs["file"].close()
        spans = obs["buffer"].spans()
        if spans:
            print()
            print("== trace ==")
            print(render_span_tree(spans))
            if obs["buffer"].dropped:
                print(f"({obs['buffer'].dropped} older span(s) "
                      f"evicted from the ring buffer)")
    if getattr(args, "metrics", None) is not None:
        from .obs import get_registry

        text = get_registry().prometheus()
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            print()
            print("== metrics ==")
            print(text, end="")


_COMMANDS = {
    "annotate": _cmd_annotate,
    "annotate-batch": _cmd_annotate_batch,
    "detect": _cmd_detect,
    "query": _cmd_query,
    "demo": _cmd_demo,
    "dump": _cmd_dump,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
    "explain": _cmd_explain,
    "store": _cmd_store,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs = _obs_begin(args)
    try:
        return _COMMANDS[args.command](args)
    finally:
        _obs_end(obs, args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
