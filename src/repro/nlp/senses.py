"""WordNet-style sense inventory with concreteness (paper future work).

§2.2.2: "nouns or verbs can be useful to describe a peculiar
characteristic of the content [...] although a further pruning would be
required to restrict to concrete concepts only, further discarding
abstract statements (e.g. 'difference', 'joyness', etc). [...] we intend
to use the WordNet sense annotation capability of FreeLing for this
purpose in the future."

This module implements that future work: a compact noun sense inventory
per language, each lemma mapped to a primary sense with a lexicographer
file (``noun.artifact``, ``noun.location``, ``noun.cognition``...) and a
concreteness flag derived from it. The annotator can then prune abstract
nouns from the term-frequency fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: WordNet lexicographer files that denote concrete senses.
CONCRETE_LEXFILES = frozenset(
    {
        "noun.artifact", "noun.location", "noun.object", "noun.animal",
        "noun.body", "noun.food", "noun.person", "noun.plant",
        "noun.substance",
    }
)

ABSTRACT_LEXFILES = frozenset(
    {
        "noun.cognition", "noun.feeling", "noun.attribute", "noun.state",
        "noun.time", "noun.communication", "noun.act", "noun.event",
        "noun.relation", "noun.quantity",
    }
)


@dataclass(frozen=True)
class Sense:
    """A lemma's primary sense."""

    lemma: str
    lexfile: str

    @property
    def is_concrete(self) -> bool:
        return self.lexfile in CONCRETE_LEXFILES


#: lemma → lexicographer file, per language. The inventory covers the
#: eTourism register the workloads use plus the paper's own abstract
#: examples.
_SENSES: Dict[str, Dict[str, str]] = {
    "en": {
        # concrete
        "tower": "noun.artifact", "bridge": "noun.artifact",
        "church": "noun.artifact", "castle": "noun.artifact",
        "palace": "noun.artifact", "museum": "noun.artifact",
        "monument": "noun.artifact", "fountain": "noun.artifact",
        "square": "noun.location", "street": "noun.location",
        "city": "noun.location", "town": "noun.location",
        "park": "noun.location", "mountain": "noun.object",
        "lake": "noun.object", "river": "noun.object",
        "beach": "noun.object", "sea": "noun.object",
        "food": "noun.food", "wine": "noun.food", "coffee": "noun.food",
        "dinner": "noun.food", "lunch": "noun.food",
        "friend": "noun.person", "family": "noun.person",
        "tourist": "noun.person", "picture": "noun.artifact",
        "photo": "noun.artifact", "train": "noun.artifact",
        "station": "noun.artifact", "market": "noun.location",
        "garden": "noun.location", "stadium": "noun.artifact",
        # abstract — including the paper's own examples
        "difference": "noun.attribute", "joyness": "noun.feeling",
        "joy": "noun.feeling", "happiness": "noun.feeling",
        "love": "noun.feeling", "time": "noun.time",
        "night": "noun.time", "day": "noun.time",
        "morning": "noun.time", "evening": "noun.time",
        "sunset": "noun.event", "sunrise": "noun.event",
        "trip": "noun.act", "walk": "noun.act", "visit": "noun.act",
        "holiday": "noun.time", "weekend": "noun.time",
        "view": "noun.cognition", "idea": "noun.cognition",
        "memory": "noun.cognition", "freedom": "noun.state",
        "silence": "noun.state", "beauty": "noun.attribute",
    },
    "it": {
        "torre": "noun.artifact", "ponte": "noun.artifact",
        "chiesa": "noun.artifact", "castello": "noun.artifact",
        "palazzo": "noun.artifact", "museo": "noun.artifact",
        "monumento": "noun.artifact", "fontana": "noun.artifact",
        "piazza": "noun.location", "via": "noun.location",
        "città": "noun.location", "parco": "noun.location",
        "montagna": "noun.object", "lago": "noun.object",
        "fiume": "noun.object", "mare": "noun.object",
        "cibo": "noun.food", "vino": "noun.food", "caffè": "noun.food",
        "cena": "noun.food", "pranzo": "noun.food",
        "amico": "noun.person", "famiglia": "noun.person",
        "foto": "noun.artifact", "fotografia": "noun.artifact",
        "treno": "noun.artifact", "stazione": "noun.artifact",
        "mercato": "noun.location", "giardino": "noun.location",
        # abstract
        "differenza": "noun.attribute", "gioia": "noun.feeling",
        "felicità": "noun.feeling", "amore": "noun.feeling",
        "tempo": "noun.time", "notte": "noun.time",
        "giorno": "noun.time", "mattina": "noun.time",
        "sera": "noun.time", "tramonto": "noun.event",
        "alba": "noun.event", "viaggio": "noun.act",
        "passeggiata": "noun.act", "visita": "noun.act",
        "vacanza": "noun.time", "vista": "noun.cognition",
        "ricordo": "noun.cognition", "libertà": "noun.state",
        "silenzio": "noun.state", "bellezza": "noun.attribute",
    },
    "fr": {
        "tour": "noun.artifact", "pont": "noun.artifact",
        "église": "noun.artifact", "château": "noun.artifact",
        "palais": "noun.artifact", "musée": "noun.artifact",
        "place": "noun.location", "rue": "noun.location",
        "ville": "noun.location", "parc": "noun.location",
        "montagne": "noun.object", "lac": "noun.object",
        "photo": "noun.artifact",
        "différence": "noun.attribute", "joie": "noun.feeling",
        "amour": "noun.feeling", "nuit": "noun.time",
        "voyage": "noun.act", "promenade": "noun.act",
        "vue": "noun.cognition",
    },
    "es": {
        "torre": "noun.artifact", "puente": "noun.artifact",
        "iglesia": "noun.artifact", "castillo": "noun.artifact",
        "palacio": "noun.artifact", "museo": "noun.artifact",
        "plaza": "noun.location", "calle": "noun.location",
        "ciudad": "noun.location", "parque": "noun.location",
        "montaña": "noun.object", "lago": "noun.object",
        "foto": "noun.artifact",
        "diferencia": "noun.attribute", "alegría": "noun.feeling",
        "amor": "noun.feeling", "noche": "noun.time",
        "viaje": "noun.act", "paseo": "noun.act",
        "vista": "noun.cognition", "atardecer": "noun.event",
    },
    "de": {
        "turm": "noun.artifact", "brücke": "noun.artifact",
        "kirche": "noun.artifact", "schloss": "noun.artifact",
        "palast": "noun.artifact", "museum": "noun.artifact",
        "platz": "noun.location", "straße": "noun.location",
        "stadt": "noun.location", "park": "noun.location",
        "berg": "noun.object", "see": "noun.object",
        "foto": "noun.artifact", "bild": "noun.artifact",
        "unterschied": "noun.attribute", "freude": "noun.feeling",
        "liebe": "noun.feeling", "nacht": "noun.time",
        "reise": "noun.act", "spaziergang": "noun.act",
        "aussicht": "noun.cognition",
    },
}


def sense_of(lemma: str, language: str = "en") -> Optional[Sense]:
    """The primary sense of ``lemma`` in ``language`` (None = unknown)."""
    lexfile = _SENSES.get(language, {}).get(lemma.lower())
    if lexfile is None:
        return None
    return Sense(lemma.lower(), lexfile)


def is_concrete_noun(lemma: str, language: str = "en") -> Optional[bool]:
    """True/False for known nouns, None when the lemma is not in the
    inventory (callers decide how to treat unknowns)."""
    sense = sense_of(lemma, language)
    if sense is None:
        return None
    return sense.is_concrete


def prune_abstract(words, language: str = "en",
                   keep_unknown: bool = True):
    """Filter a word list down to concrete (or unknown) nouns — the
    pruning step the paper sketches for the tf fallback."""
    kept = []
    for word in words:
        concrete = is_concrete_noun(word, language)
        if concrete is True or (concrete is None and keep_unknown):
            kept.append(word)
    return kept
