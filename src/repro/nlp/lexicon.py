"""Per-language lexical resources for the morphological analyzer.

Three resources per language:

* ``COMMON_WORDS`` — frequent common nouns/verbs/adjectives of the
  eTourism register. A capitalized sentence-initial token found here is
  almost certainly *not* a proper noun, so it scores below the pipeline's
  0.2 NP threshold.
* ``LEMMA_EXCEPTIONS`` — irregular form → lemma pairs.
* ``MULTIWORDS`` — the multiword gazetteer (FreeLing's locutions file
  stand-in): known multi-token expressions detected as single lemmas,
  which is the FreeLing capability the paper says motivated choosing it
  over TreeTagger.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

COMMON_WORDS: Dict[str, FrozenSet[str]] = {
    "en": frozenset(
        """picture pictures photo photos view views trip trips night day
        morning evening sunset sunrise dinner lunch breakfast walk walks
        visit visits square street river tower bridge museum church
        castle palace market station garden park mountain lake beach
        holiday holidays vacation weekend friend friends family city town
        village food wine coffee beautiful amazing wonderful great nice
        old new big small difference joyness happiness love time year
        today tonight yesterday tomorrow""".split()
    ),
    "it": frozenset(
        """foto fotografia fotografie vista viste viaggio viaggi notte
        giorno mattina sera tramonto alba cena pranzo colazione
        passeggiata visita visite piazza via fiume torre ponte museo
        chiesa castello palazzo mercato stazione giardino parco montagna
        lago spiaggia vacanza vacanze amico amici famiglia città paese
        cibo vino caffè bello bella bellissimo bellissima stupendo
        meraviglioso grande piccolo vecchio nuovo differenza gioia
        felicità amore tempo anno oggi stasera ieri domani""".split()
    ),
    "fr": frozenset(
        """photo photos vue vues voyage voyages nuit jour matin soir
        coucher aube dîner déjeuner promenade visite visites place rue
        fleuve tour pont musée église château palais marché gare jardin
        parc montagne lac plage vacances ami amis famille ville village
        nourriture vin café beau belle magnifique merveilleux grand petit
        vieux nouveau différence joie bonheur amour temps année
        aujourd'hui hier demain""".split()
    ),
    "es": frozenset(
        """foto fotos vista vistas viaje viajes noche día mañana tarde
        atardecer amanecer cena almuerzo desayuno paseo visita visitas
        plaza calle río torre puente museo iglesia castillo palacio
        mercado estación jardín parque montaña lago playa vacaciones
        amigo amigos familia ciudad pueblo comida vino café hermoso
        hermosa maravilloso grande pequeño viejo nuevo diferencia alegría
        felicidad amor tiempo año hoy ayer mañana""".split()
    ),
    "de": frozenset(
        """foto fotos bild bilder aussicht reise reisen nacht tag morgen
        abend sonnenuntergang sonnenaufgang abendessen mittagessen
        frühstück spaziergang besuch platz straße fluss turm brücke
        museum kirche schloss palast markt bahnhof garten park berg see
        strand urlaub ferien freund freunde familie stadt dorf essen wein
        kaffee schön wunderbar groß klein alt neu unterschied freude
        glück liebe zeit jahr heute gestern""".split()
    ),
}

LEMMA_EXCEPTIONS: Dict[str, Dict[str, str]] = {
    "en": {
        "pictures": "picture", "photos": "photo", "children": "child",
        "people": "person", "men": "man", "women": "woman",
        "cities": "city", "churches": "church", "was": "be", "were": "be",
        "is": "be", "are": "be", "went": "go", "taken": "take",
        "took": "take", "seen": "see", "saw": "see", "feet": "foot",
    },
    "it": {
        "città": "città", "caffè": "caffè", "uomini": "uomo",
        "donne": "donna", "amici": "amico", "laghi": "lago",
        "luoghi": "luogo", "viaggi": "viaggio", "musei": "museo",
        "chiese": "chiesa", "palazzi": "palazzo", "ponti": "ponte",
    },
    "fr": {
        "yeux": "œil", "chevaux": "cheval", "musées": "musée",
        "châteaux": "château", "voyages": "voyage",
    },
    "es": {
        "ciudades": "ciudad", "viajes": "viaje", "museos": "museo",
        "iglesias": "iglesia", "luces": "luz",
    },
    "de": {
        "bilder": "bild", "städte": "stadt", "brücken": "brücke",
        "türme": "turm", "flüsse": "fluss",
    },
}

#: Multiword gazetteer (lower-cased token tuples → canonical form).
MULTIWORDS: Dict[Tuple[str, ...], str] = {
    ("mole", "antonelliana"): "Mole Antonelliana",
    ("piazza", "castello"): "Piazza Castello",
    ("piazza", "san", "carlo"): "Piazza San Carlo",
    ("porta", "nuova"): "Porta Nuova",
    ("palazzo", "madama"): "Palazzo Madama",
    ("palazzo", "reale"): "Palazzo Reale",
    ("gran", "madre"): "Gran Madre",
    ("parco", "del", "valentino"): "Parco del Valentino",
    ("museo", "egizio"): "Museo Egizio",
    ("juventus", "stadium"): "Juventus Stadium",
    ("monte", "dei", "cappuccini"): "Monte dei Cappuccini",
    ("reggia", "di", "venaria"): "Reggia di Venaria",
    ("sacra", "di", "san", "michele"): "Sacra di San Michele",
    ("roman", "colosseum"): "Roman Colosseum",
    ("trevi", "fountain"): "Trevi Fountain",
    ("fontana", "di", "trevi"): "Fontana di Trevi",
    ("eiffel", "tower"): "Eiffel Tower",
    ("tour", "eiffel"): "Tour Eiffel",
    ("notre", "dame"): "Notre Dame",
    ("sagrada", "familia"): "Sagrada Familia",
    ("plaza", "mayor"): "Plaza Mayor",
    ("brandenburg", "gate"): "Brandenburg Gate",
    ("new", "york"): "New York",
    ("san", "salvario"): "San Salvario",
    ("via", "roma"): "Via Roma",
    ("walter", "goix"): "Walter Goix",
}


def common_words_for(language: str) -> FrozenSet[str]:
    return COMMON_WORDS.get(language, frozenset())


def lemma_exceptions_for(language: str) -> Dict[str, str]:
    return LEMMA_EXCEPTIONS.get(language, {})
