"""String similarity measures.

The paper's final annotation check (§2.2.2) discards candidate resources
whose Jaro-Winkler distance to the original word/lemma is below 0.8
(unless the candidate carries the maximum DBpedia score). This module
implements Jaro, Jaro-Winkler and Levenshtein exactly as in the classic
definitions so that threshold is meaningful.
"""

from __future__ import annotations

from typing import Sequence


def jaro(s1: str, s2: str) -> float:
    """Jaro similarity in [0, 1]."""
    if s1 == s2:
        return 1.0
    len1, len2 = len(s1), len(s2)
    if len1 == 0 or len2 == 0:
        return 0.0
    match_window = max(len1, len2) // 2 - 1
    if match_window < 0:
        match_window = 0

    s1_matches = [False] * len1
    s2_matches = [False] * len2
    matches = 0
    for i, ch in enumerate(s1):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len2)
        for j in range(start, end):
            if s2_matches[j] or s2[j] != ch:
                continue
            s1_matches[i] = True
            s2_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    k = 0
    for i in range(len1):
        if not s1_matches[i]:
            continue
        while not s2_matches[k]:
            k += 1
        if s1[i] != s2[k]:
            transpositions += 1
        k += 1
    transpositions //= 2

    return (
        matches / len1
        + matches / len2
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(s1: str, s2: str, prefix_scale: float = 0.1,
                 max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity in [0, 1].

    Boosts the Jaro score for strings sharing a common prefix (up to
    ``max_prefix`` characters), with the standard scale of 0.1.
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    base = jaro(s1, s2)
    prefix = 0
    for c1, c2 in zip(s1, s2):
        if c1 != c2 or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def jaro_winkler_ci(s1: str, s2: str) -> float:
    """Case-insensitive Jaro-Winkler — what the annotator uses, since
    resolvers return labels with their own capitalization."""
    return jaro_winkler(s1.lower(), s2.lower())


def levenshtein(s1: str, s2: str) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1)."""
    if s1 == s2:
        return 0
    if not s1:
        return len(s2)
    if not s2:
        return len(s1)
    if len(s1) < len(s2):
        s1, s2 = s2, s1
    previous = list(range(len(s2) + 1))
    for i, c1 in enumerate(s1, start=1):
        current = [i]
        for j, c2 in enumerate(s2, start=1):
            cost = 0 if c1 == c2 else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1,
                    previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def normalized_levenshtein(s1: str, s2: str) -> float:
    """Levenshtein similarity in [0, 1] (1 = identical)."""
    if not s1 and not s2:
        return 1.0
    return 1.0 - levenshtein(s1, s2) / max(len(s1), len(s2))


def best_match(target: str, candidates: Sequence[str]) -> tuple:
    """Return ``(candidate, score)`` with the highest case-insensitive
    Jaro-Winkler similarity to ``target`` (ties keep the first)."""
    if not candidates:
        raise ValueError("candidates must not be empty")
    best = candidates[0]
    best_score = jaro_winkler_ci(target, best)
    for candidate in candidates[1:]:
        score = jaro_winkler_ci(target, candidate)
        if score > best_score:
            best, best_score = candidate, score
    return best, best_score
