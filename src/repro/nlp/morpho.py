"""Morphological analysis — the FreeLing stand-in (paper §2.2.2).

The paper runs FreeLing, configured with the detected language, to obtain
lemmas with part-of-speech tags, keeps non-numeric NP (proper-noun)
lemmas with a score of at least 0.2, and notes FreeLing was chosen over
TreeTagger because it detects *multiword* lemmas. This module reproduces
those capabilities:

* multiword detection against a gazetteer (longest match wins),
* heuristic POS tagging (NP / NC / NUM / SW / W),
* rule-based lemmatization with per-language suffix rules + exceptions,
* an NP confidence score in [0, 1] so the pipeline's ``score >= 0.2``
  filter is meaningful. The scoring ladder:

  ====================================================  =====
  evidence                                              score
  ====================================================  =====
  gazetteer multiword                                   0.95
  merged run of mid-sentence capitalized tokens         0.90
  single mid-sentence capitalized token                 0.85
  all-caps acronym                                      0.70
  sentence-initial capitalized, unknown word            0.50
  sentence-initial capitalized, known common word       0.15
  sentence-initial capitalized stopword / lowercase     0.00
  ====================================================  =====

  Sentence-initial common words land *below* the paper's 0.2 threshold;
  unknown sentence-initial capitalized words stay above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .lexicon import (
    MULTIWORDS,
    common_words_for,
    lemma_exceptions_for,
)
from .stopwords import is_stopword
from .tokenizer import RawToken, tokenize

#: POS tags (EAGLES-like initials, as FreeLing uses).
POS_PROPER = "NP"   # proper noun
POS_COMMON = "NC"   # common noun / other content word
POS_NUMBER = "Z"    # number
POS_FUNCTION = "SW"  # stopword / function word
POS_WORD = "W"      # anything else


@dataclass(frozen=True)
class AnalyzedToken:
    """One analysis: surface form, lemma, POS tag and NP confidence."""

    form: str
    lemma: str
    pos: str
    np_score: float
    is_multiword: bool = False

    @property
    def is_proper_noun(self) -> bool:
        return self.pos == POS_PROPER


_SUFFIX_RULES: Dict[str, List[Tuple[str, str]]] = {
    # (suffix to strip, replacement), first match wins, applied to words
    # of length > len(suffix) + 2
    "en": [("ies", "y"), ("ches", "ch"), ("shes", "sh"), ("sses", "ss"),
           ("s", "")],
    "it": [("zioni", "zione"), ("ità", "ità"), ("chi", "co"),
           ("ghi", "go"), ("i", "o"), ("e", "a")],
    "fr": [("eaux", "eau"), ("aux", "al"), ("s", "")],
    "es": [("ciones", "ción"), ("es", ""), ("s", "")],
    "de": [("en", ""), ("er", ""), ("e", "")],
}


class MorphologicalAnalyzer:
    """Language-configured analyzer (as FreeLing is configured per run)."""

    def __init__(
        self,
        language: str = "en",
        multiwords: Optional[Dict[Tuple[str, ...], str]] = None,
    ) -> None:
        self.language = language
        self.multiwords = dict(MULTIWORDS if multiwords is None
                               else multiwords)
        self._max_multiword = max(
            (len(k) for k in self.multiwords), default=1
        )
        self._common = common_words_for(language)
        self._exceptions = lemma_exceptions_for(language)

    # ------------------------------------------------------------------
    def analyze(self, text: str) -> List[AnalyzedToken]:
        """Full analysis of ``text``: multiword merge, POS, lemma, score."""
        raw = tokenize(text)
        merged = self._merge_multiwords(raw)
        return [self._classify(item) for item in merged]

    def proper_nouns(
        self, text: str, min_score: float = 0.2
    ) -> List[AnalyzedToken]:
        """Non-numeric NP lemmas with ``np_score >= min_score`` — exactly
        the filtering step of the paper's pipeline."""
        return [
            token
            for token in self.analyze(text)
            if token.is_proper_noun and token.np_score >= min_score
        ]

    # ------------------------------------------------------------------
    # Multiword detection
    # ------------------------------------------------------------------
    def _merge_multiwords(
        self, raw: Sequence[RawToken]
    ) -> List[Tuple[RawToken, Optional[str], int]]:
        """Return (first_token, canonical_multiword_or_None, span_len)."""
        merged: List[Tuple[RawToken, Optional[str], int]] = []
        i = 0
        while i < len(raw):
            match: Optional[Tuple[str, int]] = None
            limit = min(self._max_multiword, len(raw) - i)
            for span in range(limit, 1, -1):  # longest match first
                key = tuple(t.text.lower() for t in raw[i : i + span])
                if key in self.multiwords:
                    match = (self.multiwords[key], span)
                    break
            if match is not None:
                merged.append((raw[i], match[0], match[1]))
                i += match[1]
            else:
                # runs of adjacent mid-sentence capitalized tokens merge
                # into an ad-hoc multiword proper noun
                span = self._capitalized_run(raw, i)
                if span > 1:
                    form = " ".join(t.text for t in raw[i : i + span])
                    merged.append((raw[i], form, span))
                    i += span
                else:
                    merged.append((raw[i], None, 1))
                    i += 1
        return merged

    def _capitalized_run(self, raw: Sequence[RawToken], start: int) -> int:
        first = raw[start]
        if not first.is_capitalized or first.is_numeric:
            return 1
        if first.sentence_initial and (
            is_stopword(first.text, self.language)
            or first.text.lower() in self._common
        ):
            return 1
        span = 1
        while start + span < len(raw):
            token = raw[start + span]
            if (
                token.is_capitalized
                and not token.is_numeric
                and not token.sentence_initial
                and not is_stopword(token.text, self.language)
            ):
                span += 1
            else:
                break
        return span

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _classify(
        self, item: Tuple[RawToken, Optional[str], int]
    ) -> AnalyzedToken:
        token, multiword, span = item
        if multiword is not None and span > 1:
            gazetteer = tuple(multiword.lower().split()) in {
                tuple(k) for k in self.multiwords
            } or any(
                " ".join(k) == multiword.lower() for k in self.multiwords
            )
            canonical_match = any(
                canonical == multiword
                for canonical in self.multiwords.values()
            )
            score = 0.95 if canonical_match else 0.9
            return AnalyzedToken(
                form=multiword,
                lemma=multiword,
                pos=POS_PROPER,
                np_score=score,
                is_multiword=True,
            )

        text = token.text
        lower = text.lower()
        if token.is_numeric:
            return AnalyzedToken(text, text, POS_NUMBER, 0.0)
        if is_stopword(lower, self.language):
            return AnalyzedToken(text, lower, POS_FUNCTION, 0.0)
        if token.is_all_caps:
            return AnalyzedToken(text, text, POS_PROPER, 0.7)
        if token.is_capitalized:
            if not token.sentence_initial:
                return AnalyzedToken(text, text, POS_PROPER, 0.85)
            if lower in self._common:
                return AnalyzedToken(
                    text, self.lemmatize(lower), POS_PROPER, 0.15
                )
            return AnalyzedToken(text, text, POS_PROPER, 0.5)
        if lower in self._common:
            return AnalyzedToken(text, self.lemmatize(lower), POS_COMMON, 0.0)
        return AnalyzedToken(text, self.lemmatize(lower), POS_WORD, 0.0)

    # ------------------------------------------------------------------
    # Lemmatization
    # ------------------------------------------------------------------
    def lemmatize(self, word: str) -> str:
        """Rule-based lemma: exceptions first, then suffix rules."""
        lower = word.lower()
        if lower in self._exceptions:
            return self._exceptions[lower]
        for suffix, replacement in _SUFFIX_RULES.get(self.language, ()):
            if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
                candidate = lower[: -len(suffix)] + replacement
                return candidate
        return lower
