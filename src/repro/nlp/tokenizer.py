"""Word tokenization preserving case and sentence boundaries.

The morphological analyzer needs to know whether a capitalized token is
sentence-initial (weaker proper-noun evidence) or sentence-internal
(strong evidence), so tokens carry their position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

_TOKEN_RE = re.compile(
    r"[^\W_]+(?:['’\-][^\W_]+)*",  # words incl. apostrophes and hyphens
    re.UNICODE,
)
_SENTENCE_END_RE = re.compile(r"[.!?]+")


@dataclass(frozen=True)
class RawToken:
    """A surface token with its offsets and sentence position."""

    text: str
    start: int
    end: int
    sentence_initial: bool

    @property
    def is_capitalized(self) -> bool:
        return self.text[:1].isupper()

    @property
    def is_all_caps(self) -> bool:
        return len(self.text) > 1 and self.text.isupper()

    @property
    def is_numeric(self) -> bool:
        return bool(re.fullmatch(r"[\d.,]+", self.text))


def tokenize(text: str) -> List[RawToken]:
    """Tokenize ``text`` into :class:`RawToken` objects."""
    tokens: List[RawToken] = []
    sentence_start = True
    last_end = 0
    for match in _TOKEN_RE.finditer(text):
        between = text[last_end : match.start()]
        if tokens and _SENTENCE_END_RE.search(between):
            sentence_start = True
        tokens.append(
            RawToken(
                text=match.group(),
                start=match.start(),
                end=match.end(),
                sentence_initial=sentence_start,
            )
        )
        sentence_start = False
        last_end = match.end()
    return tokens


def words(text: str) -> List[str]:
    """Just the token strings."""
    return [t.text for t in tokenize(text)]
