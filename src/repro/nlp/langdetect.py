"""N-gram based language identification (Cavnar & Trenkle 1994).

The paper identifies title language with PHP's ``Text_LanguageDetect``
([3]), itself an implementation of Cavnar & Trenkle's rank-order n-gram
classifier ([4]). The algorithm:

1. build a profile — the frequency-ranked list of character 1..N-grams —
   for each training language;
2. profile the input text the same way;
3. score each language by the sum of rank displacements ("out-of-place"
   measure) between the two profiles; the lowest total wins.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .profiles import SAMPLE_TEXT

_WORD_RE = re.compile(r"[^\W\d_]+", re.UNICODE)

#: Maximum n-gram length and profile size (Cavnar & Trenkle use 1..5/300).
MAX_NGRAM = 3
PROFILE_SIZE = 300


def _ngrams(text: str, max_n: int = MAX_NGRAM) -> Iterable[str]:
    """Character n-grams of padded words, lengths 1..max_n."""
    for word in _WORD_RE.findall(text.lower()):
        padded = f"_{word}_"
        for n in range(1, max_n + 1):
            for i in range(len(padded) - n + 1):
                yield padded[i : i + n]


def build_profile(text: str, size: int = PROFILE_SIZE) -> List[str]:
    """The ``size`` most frequent n-grams, most frequent first."""
    counts = Counter(_ngrams(text))
    return [
        gram
        for gram, _ in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )[:size]
    ]


@dataclass(frozen=True)
class Detection:
    """A detection outcome: language code plus a confidence in [0, 1]."""

    language: str
    confidence: float


class LanguageDetector:
    """Rank-order n-gram classifier over a fixed set of languages."""

    def __init__(
        self,
        samples: Optional[Dict[str, str]] = None,
        profile_size: int = PROFILE_SIZE,
    ) -> None:
        samples = samples if samples is not None else SAMPLE_TEXT
        self.profile_size = profile_size
        self._profiles: Dict[str, Dict[str, int]] = {}
        for language, text in samples.items():
            profile = build_profile(text, profile_size)
            self._profiles[language] = {
                gram: rank for rank, gram in enumerate(profile)
            }

    @property
    def languages(self) -> Tuple[str, ...]:
        return tuple(sorted(self._profiles))

    def rank(self, text: str) -> List[Detection]:
        """All languages ranked best-first with normalized confidence."""
        document = build_profile(text, self.profile_size)
        if not document:
            return []
        max_penalty = self.profile_size
        scores: List[Tuple[str, float]] = []
        for language, profile in self._profiles.items():
            total = 0
            for rank, gram in enumerate(document):
                if gram in profile:
                    total += abs(profile[gram] - rank)
                else:
                    total += max_penalty
            worst = max_penalty * len(document)
            scores.append((language, 1.0 - total / worst))
        scores.sort(key=lambda item: (-item[1], item[0]))
        return [Detection(lang, conf) for lang, conf in scores]

    def detect(self, text: str, default: str = "en") -> str:
        """The most likely language code (``default`` for empty input)."""
        ranking = self.rank(text)
        if not ranking:
            return default
        return ranking[0].language

    def detect_with_confidence(
        self, text: str, default: str = "en"
    ) -> Detection:
        ranking = self.rank(text)
        if not ranking:
            return Detection(default, 0.0)
        return ranking[0]


_default_detector: Optional[LanguageDetector] = None


def default_detector() -> LanguageDetector:
    """Shared detector over the built-in profiles (lazily constructed)."""
    global _default_detector
    if _default_detector is None:
        _default_detector = LanguageDetector()
    return _default_detector


def detect_language(text: str, default: str = "en") -> str:
    """Module-level convenience wrapper over :func:`default_detector`."""
    return default_detector().detect(text, default)
