"""NLP substrate: language identification, morphology, similarity.

Stands in for the paper's ``Text_LanguageDetect`` (Cavnar–Trenkle n-gram
language identification) and FreeLing (morphological analysis with
multiword lemmas and proper-noun extraction), plus the Jaro-Winkler
similarity used by the annotation filter.
"""

from .langdetect import (
    Detection,
    LanguageDetector,
    build_profile,
    default_detector,
    detect_language,
)
from .lexicon import MULTIWORDS, common_words_for, lemma_exceptions_for
from .morpho import (
    AnalyzedToken,
    MorphologicalAnalyzer,
    POS_COMMON,
    POS_FUNCTION,
    POS_NUMBER,
    POS_PROPER,
    POS_WORD,
)
from .profiles import SAMPLE_TEXT, SUPPORTED_LANGUAGES
from .senses import (
    Sense,
    is_concrete_noun,
    prune_abstract,
    sense_of,
)
from .similarity import (
    best_match,
    jaro,
    jaro_winkler,
    jaro_winkler_ci,
    levenshtein,
    normalized_levenshtein,
)
from .stopwords import is_stopword, stopwords_for
from .termfreq import relevant_words
from .tokenizer import RawToken, tokenize, words

__all__ = [
    "AnalyzedToken",
    "Detection",
    "LanguageDetector",
    "MULTIWORDS",
    "MorphologicalAnalyzer",
    "POS_COMMON",
    "POS_FUNCTION",
    "POS_NUMBER",
    "POS_PROPER",
    "POS_WORD",
    "RawToken",
    "SAMPLE_TEXT",
    "SUPPORTED_LANGUAGES",
    "Sense",
    "best_match",
    "build_profile",
    "common_words_for",
    "default_detector",
    "detect_language",
    "is_stopword",
    "jaro",
    "jaro_winkler",
    "jaro_winkler_ci",
    "lemma_exceptions_for",
    "levenshtein",
    "normalized_levenshtein",
    "is_concrete_noun",
    "prune_abstract",
    "relevant_words",
    "sense_of",
    "stopwords_for",
    "tokenize",
    "words",
]
