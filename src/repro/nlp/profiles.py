"""Training text for the language-identification profiles.

One paragraph of ordinary prose per supported language. The profiles are
character n-gram rank lists computed from these samples (Cavnar &
Trenkle 1994 — the algorithm behind the PHP ``Text_LanguageDetect``
package the paper cites as [3]/[4]). The samples lean on the paper's
domain — travel, cities, photography — so short eTourism titles detect
reliably.
"""

from __future__ import annotations

#: Extra colloquial passages concatenated to the base samples; short
#: photo-title language (what the platform actually sees) leans on these
#: function words and suffixes.
_EXTRA = {
    "en": (
        " A quick walk today with my friends near the old gate. We had "
        "a great dinner and then watched the sunset from the hill over "
        "the town. What a wonderful weekend away from work, just us and "
        "the quiet evening light over the water."
    ),
    "it": (
        " Una passeggiata veloce oggi con i miei amici vicino alla "
        "porta antica. Abbiamo fatto una cena stupenda e poi abbiamo "
        "guardato il tramonto dalla collina sopra la città. Che weekend "
        "meraviglioso lontano dal lavoro, solo noi e la luce tranquilla "
        "della sera sull'acqua. Stasera si torna a casa in treno."
    ),
    "fr": (
        " Une promenade rapide aujourd'hui avec mes amis près de la "
        "vieille porte. Nous avons fait un dîner magnifique et puis "
        "nous avons regardé le coucher du soleil depuis la colline "
        "au-dessus de la ville. Quel week-end merveilleux loin du "
        "travail, juste nous et la lumière tranquille du soir sur "
        "l'eau. Ce soir on rentre à la maison en train."
    ),
    "es": (
        " Un paseo rápido hoy con mis amigos cerca de la puerta "
        "antigua. Hicimos una cena estupenda y luego miramos el "
        "atardecer desde la colina sobre el pueblo. Qué fin de semana "
        "tan maravilloso lejos del trabajo, solo nosotros y la luz "
        "tranquila de la tarde sobre el agua. Esta noche volvemos a "
        "casa en tren."
    ),
    "de": (
        " Ein schneller Spaziergang heute mit meinen Freunden in der "
        "Nähe des alten Tores. Wir hatten ein großartiges Abendessen "
        "und haben dann den Sonnenuntergang vom Hügel über der Stadt "
        "beobachtet. Was für ein wunderbares Wochenende weit weg von "
        "der Arbeit, nur wir und das ruhige Abendlicht über dem "
        "Wasser. Heute Abend fahren wir mit dem Zug nach Hause."
    ),
}

SAMPLE_TEXT = {
    "en": (
        "The city welcomes visitors from all over the world during the "
        "summer months. Tourists walk through the old town, take pictures "
        "of the famous monuments and share them with their friends. "
        "The museum near the central square hosts a large collection of "
        "modern art, and the view from the tower is one of the best in "
        "the whole country. People like to sit in small cafes, drink "
        "coffee and watch the life of the streets. A short trip by train "
        "brings you to the mountains, where many families spend their "
        "holidays walking along the lakes. Photography is allowed almost "
        "everywhere, and the light in the early morning makes every "
        "picture beautiful. When the night comes, the bridges and towers "
        "are illuminated and the river reflects a thousand lights. This "
        "is the best time of the year to discover hidden places and "
        "taste the local food in the market."
    ),
    "it": (
        "La città accoglie i visitatori da tutto il mondo durante i mesi "
        "estivi. I turisti passeggiano per il centro storico, scattano "
        "fotografie dei monumenti famosi e le condividono con i loro "
        "amici. Il museo vicino alla piazza centrale ospita una grande "
        "collezione di arte moderna, e la vista dalla torre è una delle "
        "più belle di tutto il paese. Alla gente piace sedersi nei "
        "piccoli caffè, bere un espresso e guardare la vita delle "
        "strade. Un breve viaggio in treno porta alle montagne, dove "
        "molte famiglie passano le vacanze camminando lungo i laghi. "
        "La fotografia è permessa quasi ovunque, e la luce del primo "
        "mattino rende ogni immagine bellissima. Quando arriva la notte, "
        "i ponti e le torri sono illuminati e il fiume riflette mille "
        "luci. Questo è il periodo migliore dell'anno per scoprire "
        "luoghi nascosti e assaggiare il cibo locale al mercato."
    ),
    "fr": (
        "La ville accueille des visiteurs du monde entier pendant les "
        "mois d'été. Les touristes se promènent dans la vieille ville, "
        "prennent des photos des monuments célèbres et les partagent "
        "avec leurs amis. Le musée près de la place centrale abrite une "
        "grande collection d'art moderne, et la vue depuis la tour est "
        "l'une des plus belles de tout le pays. Les gens aiment "
        "s'asseoir dans les petits cafés, boire un café et regarder la "
        "vie des rues. Un court voyage en train vous amène aux "
        "montagnes, où beaucoup de familles passent leurs vacances en "
        "marchant le long des lacs. La photographie est permise presque "
        "partout, et la lumière du petit matin rend chaque image "
        "magnifique. Quand la nuit tombe, les ponts et les tours sont "
        "illuminés et le fleuve reflète mille lumières. C'est le "
        "meilleur moment de l'année pour découvrir des endroits cachés "
        "et goûter la cuisine locale au marché."
    ),
    "es": (
        "La ciudad recibe visitantes de todo el mundo durante los meses "
        "de verano. Los turistas pasean por el casco antiguo, toman "
        "fotografías de los monumentos famosos y las comparten con sus "
        "amigos. El museo cerca de la plaza central alberga una gran "
        "colección de arte moderno, y la vista desde la torre es una de "
        "las más hermosas de todo el país. A la gente le gusta sentarse "
        "en los pequeños cafés, tomar un café y mirar la vida de las "
        "calles. Un corto viaje en tren te lleva a las montañas, donde "
        "muchas familias pasan sus vacaciones caminando junto a los "
        "lagos. La fotografía está permitida casi en todas partes, y la "
        "luz de la mañana temprana hace que cada imagen sea hermosa. "
        "Cuando llega la noche, los puentes y las torres se iluminan y "
        "el río refleja mil luces. Este es el mejor momento del año "
        "para descubrir lugares escondidos y probar la comida local en "
        "el mercado."
    ),
    "de": (
        "Die Stadt empfängt Besucher aus der ganzen Welt während der "
        "Sommermonate. Die Touristen spazieren durch die Altstadt, "
        "machen Fotos von den berühmten Denkmälern und teilen sie mit "
        "ihren Freunden. Das Museum in der Nähe des zentralen Platzes "
        "beherbergt eine große Sammlung moderner Kunst, und die "
        "Aussicht vom Turm ist eine der schönsten des ganzen Landes. "
        "Die Menschen sitzen gerne in kleinen Cafés, trinken Kaffee und "
        "beobachten das Leben der Straßen. Eine kurze Zugfahrt bringt "
        "Sie in die Berge, wo viele Familien ihren Urlaub verbringen "
        "und an den Seen entlang wandern. Das Fotografieren ist fast "
        "überall erlaubt, und das Licht am frühen Morgen macht jedes "
        "Bild wunderschön. Wenn die Nacht kommt, werden die Brücken und "
        "Türme beleuchtet und der Fluss spiegelt tausend Lichter. Dies "
        "ist die beste Zeit des Jahres, um versteckte Orte zu entdecken "
        "und das lokale Essen auf dem Markt zu probieren."
    ),
}

SAMPLE_TEXT = {
    lang: text + _EXTRA.get(lang, "")
    for lang, text in SAMPLE_TEXT.items()
}

SUPPORTED_LANGUAGES = tuple(sorted(SAMPLE_TEXT))
