"""Small per-language stopword/function-word lists.

Used by the morphological analyzer to down-score sentence-initial
capitalized function words and by term-frequency extraction to avoid
proposing articles and prepositions as "relevant words".
"""

from __future__ import annotations

from typing import FrozenSet

STOPWORDS = {
    "en": frozenset(
        """a an and are as at be but by for from has have he her his i in
        is it its my of on or our she so that the their them they this to
        was we were with you your not no near during while when where who
        what how very into over under after before between about against
        up down out off then once here there all any both each few more
        most other some such only own same than too can will just""".split()
    ),
    "it": frozenset(
        """il lo la i gli le un uno una di a da in con su per tra fra e o
        ma se che chi cui non più anche come dove quando mentre questo
        questa questi queste quello quella quelli quelle mio tuo suo
        nostro vostro loro al allo alla ai agli alle del dello della dei
        degli delle dal dallo dalla dai dagli dalle nel nello nella nei
        negli nelle sul sullo sulla sui sugli sulle è sono era erano ho
        hai ha abbiamo avete hanno presso vicino durante verso senza""".split()
    ),
    "fr": frozenset(
        """le la les un une des du de à au aux et ou mais si que qui dont
        où quand pendant ce cette ces mon ton son notre votre leur je tu
        il elle nous vous ils elles ne pas plus aussi comme dans sur sous
        avec sans pour par est sont était chez près vers entre très""".split()
    ),
    "es": frozenset(
        """el la los las un una unos unas de a en con por para entre y o
        pero si que quien cuyo donde cuando durante este esta estos estas
        ese esa esos esas mi tu su nuestro vuestro no más también como
        sobre bajo sin es son era estaba cerca hacia muy ya lo al
        del""".split()
    ),
    "de": frozenset(
        """der die das ein eine einer eines dem den und oder aber wenn
        dass wer wen wem wo wann während dieser diese dieses mein dein
        sein unser euer ihr ich du er sie es wir nicht mehr auch wie in
        auf unter mit ohne für durch ist sind war bei nahe nach vor
        zwischen sehr zu vom zum zur im am""".split()
    ),
}


def stopwords_for(language: str) -> FrozenSet[str]:
    """Stopword set for ``language`` (empty set when unsupported)."""
    return STOPWORDS.get(language, frozenset())


def is_stopword(word: str, language: str) -> bool:
    return word.lower() in stopwords_for(language)
