"""Term-frequency based relevant-word extraction.

The paper (§2.2.2): "At this stage, we thus use term frequency to further
process the title and extract other potential relevant words" — a
fallback that surfaces content words beyond the proper nouns. We rank
non-stopword, non-numeric tokens by frequency (ties broken by length,
longer first, then alphabetically) and return the top-k.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from .stopwords import is_stopword
from .tokenizer import tokenize


def relevant_words(
    text: str,
    language: str = "en",
    top_k: int = 3,
    min_length: int = 3,
    exclude: Optional[set] = None,
) -> List[str]:
    """Top-``top_k`` frequent content words of ``text`` (lower-cased).

    ``exclude`` removes words already covered (e.g. by NP extraction) so
    the fallback only adds *new* candidates.
    """
    excluded = {w.lower() for w in (exclude or set())}
    counts: Counter = Counter()
    for token in tokenize(text):
        word = token.text.lower()
        if len(word) < min_length:
            continue
        if token.is_numeric:
            continue
        if is_stopword(word, language):
            continue
        if word in excluded:
            continue
        counts[word] += 1
    ranked = sorted(
        counts.items(), key=lambda item: (-item[1], -len(item[0]), item[0])
    )
    return [word for word, _ in ranked[:top_k]]
