"""Synthetic workloads and the gold corpus for the experiments."""

from .generator import (
    Workload,
    WorkloadConfig,
    generate_workload,
    populate_platform,
)
from .gold import GOLD_CORPUS, GoldExample, ScoredCorpus, score_pipeline
from .loadgen import (
    MIXES,
    LoadConfig,
    LoadGenerator,
    LoadReport,
    ScheduledOp,
    build_schedule,
    render_schedule,
    schedule_digest,
)

__all__ = [
    "GOLD_CORPUS",
    "GoldExample",
    "LoadConfig",
    "LoadGenerator",
    "LoadReport",
    "MIXES",
    "ScoredCorpus",
    "ScheduledOp",
    "Workload",
    "WorkloadConfig",
    "build_schedule",
    "generate_workload",
    "populate_platform",
    "render_schedule",
    "schedule_digest",
    "score_pipeline",
]
