"""Synthetic workloads and the gold corpus for the experiments."""

from .generator import (
    Workload,
    WorkloadConfig,
    generate_workload,
    populate_platform,
)
from .gold import GOLD_CORPUS, GoldExample, ScoredCorpus, score_pipeline

__all__ = [
    "GOLD_CORPUS",
    "GoldExample",
    "ScoredCorpus",
    "Workload",
    "WorkloadConfig",
    "generate_workload",
    "populate_platform",
    "score_pipeline",
]
