"""Deterministic mixed-traffic load generator over the full stack.

Concurrency: thread-safe
Graph-writes: a scratch quad-store context via the ``StoreGraph``
facade (generation-stamped commits), and the platform's attached store
through ``Platform.synchronize_store``

The ROADMAP's "load-tested SLOs" harness: drive a
:class:`~repro.platform.gallery.Platform` + :class:`~repro.platform.
web.WebInterface` + :class:`~repro.store.engine.QuadStore` stack with
the paper's interactive traffic — uploads that get annotated and
synced, incremental-search suggestions (§4), the three virtual-album
SPARQL queries, the About mashup, content browsing, and raw store
writes through the group-commit path — from several worker threads at
once, and report per-operation latency distributions out of the
:mod:`repro.obs` registry.

Determinism: the *operation schedule* (which ops, their arguments,
their open-loop arrival offsets) is a pure function of
``(mix, seed, ops, rate)`` — :func:`build_schedule` uses one seeded
``random.Random`` and nothing else, so the same CLI invocation always
produces the same schedule (and the same digest). Thread interleaving
during a run is of course not deterministic; everything that *defines*
the workload is.

Locking model: the platform object is not thread-safe, so the
mutating/cached-state ops (upload, browse, store sync, search-index
rebuild) serialize on one internal lock; store-backed reads (albums,
mashup), suggestion lookups against the last published search index,
and scratch-store writes run lock-free on MVCC snapshots. Clock reads
stay outside lock scopes (CC003).

Freshness is measured end to end: an upload records its start time,
every ``sync_every``-th upload triggers ``synchronize_store`` plus a
search-index rebuild, and each drained upload is verified visible in
the store head before its upload-to-queryable staleness is observed
into ``repro_loadgen_freshness_seconds``.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.albums import geo_album, rated_album, social_album
from ..core.mashup import run_mashup
from ..obs import get_registry
from ..obs.slo import quantile_from_series
from ..platform.gallery import Platform
from ..platform.models import Capture
from ..platform.search import SearchInterface
from ..platform.web import WebInterface
from ..rdf.terms import URIRef
from ..sparql.evaluator import Evaluator
from ..store import QuadStore, StoreGraph
from .generator import WorkloadConfig, generate_workload, populate_platform

__all__ = [
    "LoadConfig",
    "LoadGenerator",
    "LoadReport",
    "MIXES",
    "ScheduledOp",
    "build_schedule",
    "render_schedule",
    "schedule_digest",
]

#: Operation kinds and their weights per named traffic mix.
MIXES: Dict[str, Dict[str, int]] = {
    "default": {
        "upload": 10, "search": 30, "album": 15, "mashup": 10,
        "browse": 25, "store_write": 10,
    },
    "read-heavy": {
        "upload": 4, "search": 36, "album": 20, "mashup": 12,
        "browse": 24, "store_write": 4,
    },
    "write-heavy": {
        "upload": 25, "search": 10, "album": 5, "mashup": 5,
        "browse": 15, "store_write": 40,
    },
    "ingest": {
        "upload": 50, "search": 15, "album": 5, "mashup": 0,
        "browse": 20, "store_write": 10,
    },
}

#: Prefixes the search op types — chosen to hit the synthetic world's
#: LOD labels (Mole Antonelliana, Torino, Museo Egizio, ...).
_SEARCH_PREFIXES = (
    "mol", "tor", "mus", "pal", "par", "egi", "ant", "gran",
)

_ALBUM_KINDS = ("geo", "social", "rated")


@dataclass(frozen=True)
class ScheduledOp:
    """One operation of the deterministic schedule."""

    index: int
    kind: str
    arg: str          # kind-specific printable argument
    arrival_s: float  # open-loop arrival offset from run start

    def render(self) -> str:
        return (
            f"{self.index:04d} {self.arrival_s:8.3f} "
            f"{self.kind} {self.arg}"
        )


@dataclass(frozen=True)
class LoadConfig:
    """Knobs of one load run."""

    mix: str = "default"
    seed: int = 42
    ops: int = 60
    workers: int = 4
    mode: str = "closed"        # "closed" | "open"
    rate: float = 20.0          # open-loop arrival rate (ops/second)
    base_users: int = 8
    base_contents: int = 25
    sync_every: int = 4         # uploads per store synchronization
    store_name: str = "loadgen"

    def __post_init__(self) -> None:
        if self.mix not in MIXES:
            raise ValueError(
                f"unknown mix {self.mix!r} "
                f"(known: {', '.join(sorted(MIXES))})"
            )
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.ops < 1 or self.workers < 1:
            raise ValueError("ops and workers must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if self.sync_every < 1:
            raise ValueError("sync_every must be >= 1")


def build_schedule(config: LoadConfig) -> List[ScheduledOp]:
    """The deterministic operation schedule for ``config``.

    A pure function of ``(mix, seed, ops, rate)``: one seeded RNG draws
    the op kinds (weighted by the mix), the per-op arguments, and
    exponential inter-arrival gaps at ``rate`` — the same inputs always
    yield the same schedule, which is what makes load runs replayable
    and their reports comparable.
    """
    weights = MIXES[config.mix]
    kinds = [kind for kind, weight in weights.items() if weight > 0]
    kind_weights = [weights[kind] for kind in kinds]
    # string seeding hashes with sha512 — stable across processes,
    # unlike tuple seeding (a TypeError on modern Pythons anyway)
    rng = random.Random(f"{config.mix}:{config.seed}:{config.ops}")
    chosen = rng.choices(kinds, weights=kind_weights, k=config.ops)
    schedule: List[ScheduledOp] = []
    arrival = 0.0
    upload_count = 0
    write_count = 0
    for index, kind in enumerate(chosen):
        arrival += rng.expovariate(config.rate)
        if kind == "upload":
            arg = f"#{upload_count}"
            upload_count += 1
        elif kind == "search":
            arg = rng.choice(_SEARCH_PREFIXES)
        elif kind == "album":
            arg = rng.choice(_ALBUM_KINDS)
        elif kind == "mashup":
            arg = f"#{rng.randrange(1_000_000)}"
        elif kind == "browse":
            arg = f"p{rng.randint(1, 4)}"
        else:  # store_write
            arg = f"#{write_count}"
            write_count += 1
        schedule.append(ScheduledOp(index, kind, arg, arrival))
    return schedule


def render_schedule(schedule: Sequence[ScheduledOp]) -> str:
    return "\n".join(op.render() for op in schedule)


def schedule_digest(schedule: Sequence[ScheduledOp]) -> str:
    rendered = render_schedule(schedule).encode("utf-8")
    return hashlib.sha256(rendered).hexdigest()[:16]


@dataclass
class LoadReport:
    """Per-operation latency distributions + run-level accounting."""

    config: LoadConfig
    digest: str
    wall_seconds: float
    completed: int
    errors: int
    per_op: Dict[str, Dict[str, float]]
    freshness: Dict[str, float]
    error_samples: List[str] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mix": self.config.mix,
            "seed": self.config.seed,
            "mode": self.config.mode,
            "workers": self.config.workers,
            "ops": self.config.ops,
            "schedule_digest": self.digest,
            "wall_seconds": self.wall_seconds,
            "completed": self.completed,
            "errors": self.errors,
            "throughput_ops_per_s": self.throughput,
            "per_op": self.per_op,
            "freshness": self.freshness,
            "error_samples": self.error_samples,
        }

    def render(self) -> str:
        lines = [
            f"load run: mix={self.config.mix} seed={self.config.seed} "
            f"mode={self.config.mode} workers={self.config.workers} "
            f"schedule={self.digest}",
            f"  {self.completed} op(s) in {self.wall_seconds:.2f}s "
            f"({self.throughput:.1f} op/s), {self.errors} error(s)",
            f"  {'op':<12} {'n':>5} {'mean':>9} {'p50':>9} "
            f"{'p95':>9} {'p99':>9} {'max':>9}",
        ]
        for op in sorted(self.per_op):
            row = self.per_op[op]
            lines.append(
                f"  {op:<12} {int(row['count']):>5} "
                f"{row['mean_ms']:>7.1f}ms {row['p50_ms']:>7.1f}ms "
                f"{row['p95_ms']:>7.1f}ms {row['p99_ms']:>7.1f}ms "
                f"{row['max_ms']:>7.1f}ms"
            )
        if self.freshness.get("count"):
            lines.append(
                f"  freshness: {int(self.freshness['count'])} upload(s) "
                f"p95={self.freshness['p95_ms']:.0f}ms "
                f"max={self.freshness['max_ms']:.0f}ms"
            )
        for sample in self.error_samples:
            lines.append(f"  error: {sample}")
        return "\n".join(lines)


class LoadGenerator:
    """Executes one :class:`LoadConfig` against a freshly built stack."""

    def __init__(self, config: LoadConfig) -> None:
        self.config = config
        self.schedule = build_schedule(config)
        self._platform: Optional[Platform] = None
        self._web: Optional[WebInterface] = None
        self._store: Optional[QuadStore] = None
        self._scratch: Optional[StoreGraph] = None
        self._search: Optional[SearchInterface] = None
        self._pids: List[int] = []
        self._uploads: List[Capture] = []
        # run state: the schedule cursor and the platform's big lock
        self._cursor = 0
        self._cursor_lock = threading.Lock()
        self._platform_lock = threading.RLock()
        self._pending_uploads: List[Tuple[Any, float]] = []
        self._errors: List[str] = []
        self._errors_lock = threading.Lock()
        self._completed = 0

    # -- environment -----------------------------------------------------
    def setup(self) -> "LoadGenerator":
        """Build the platform, its store, and the base population."""
        config = self.config
        platform = Platform()
        workload = generate_workload(WorkloadConfig(
            n_users=config.base_users,
            n_contents=config.base_contents,
            seed=config.seed,
        ))
        self._pids = populate_platform(platform, workload)
        store = QuadStore(name=config.store_name, group_commit=True)
        platform.attach_store(store)  # initial synchronize
        self._platform = platform
        self._store = store
        self._web = WebInterface(platform)
        self._scratch = StoreGraph(
            store, "http://repro.local/loadgen/scratch"
        )
        self._search = SearchInterface(
            platform.union_graph(), platform.contents()
        )
        # uploads arrive from the same user population, continuing the
        # base timeline (a later seed keeps the captures distinct)
        upload_ops = sum(
            1 for op in self.schedule if op.kind == "upload"
        )
        extra = generate_workload(WorkloadConfig(
            n_users=config.base_users,
            n_contents=max(upload_ops, 1),
            seed=config.seed + 1,
        ))
        self._uploads = extra.captures
        return self

    # -- operations ------------------------------------------------------
    def _op_upload(self, arg: str) -> None:
        capture = self._uploads[int(arg[1:]) % len(self._uploads)]
        uploaded_at = time.perf_counter()
        with self._platform_lock:
            item = self._platform.upload(capture)
            self._pending_uploads.append((item, uploaded_at))
            due = len(self._pending_uploads) >= self.config.sync_every
        if due:
            self._sync_store()

    def _sync_store(self) -> None:
        with self._platform_lock:
            drained = self._pending_uploads
            if not drained:
                return
            self._pending_uploads = []
            self._platform.synchronize_store()
            search = SearchInterface(
                self._platform.union_graph(),
                self._platform.contents(),
            )
        # publish the rebuilt index (atomic reference store), then
        # verify + observe freshness outside the lock on a pinned head
        self._search = search
        synced_at = time.perf_counter()
        head = self._store.head()
        histogram = get_registry().histogram(
            "repro_loadgen_freshness_seconds",
            "Upload-to-queryable staleness per synced upload",
        ).labels(mix=self.config.mix)
        for item, uploaded_at in drained:
            visible = any(
                True for _ in head.triples((item.resource, None, None))
            )
            if not visible:
                raise RuntimeError(
                    f"upload pid={item.pid} not queryable after sync "
                    f"(store generation {head.generation})"
                )
            histogram.observe(synced_at - uploaded_at)

    def _op_search(self, arg: str) -> None:
        suggestions = self._search.suggest(arg, limit=10)
        # prefixes are chosen to hit the world's labels; an empty
        # result set would mean the index rebuild went missing
        if not suggestions:
            raise RuntimeError(f"no suggestions for prefix {arg!r}")

    def _op_album(self, arg: str) -> None:
        if arg == "geo":
            album = geo_album()
        elif arg == "social":
            album = social_album()
        else:
            album = rated_album()
        album.links(Evaluator(self._store))

    def _op_mashup(self, arg: str) -> None:
        pid = self._pids[int(arg[1:]) % len(self._pids)]
        run_mashup(Evaluator(self._store), pid)

    def _op_browse(self, arg: str) -> None:
        page_size = 10
        with self._platform_lock:
            total = len(self._platform.contents())
            pages = max(1, -(-total // page_size))
            page = min(int(arg[1:]), pages)
            self._web.browse(page=page, page_size=page_size)

    def _op_store_write(self, arg: str) -> None:
        index = int(arg[1:])
        self._scratch.insert((
            URIRef(f"http://repro.local/loadgen/op/{index}"),
            URIRef("http://repro.local/loadgen/vocab#payload"),
            f"write-{index}",
        ))

    def _execute(self, op: ScheduledOp) -> None:
        handler = getattr(self, f"_op_{op.kind}")
        handler(op.arg)

    # -- the run ---------------------------------------------------------
    def _next_op(self) -> Optional[ScheduledOp]:
        with self._cursor_lock:
            if self._cursor >= len(self.schedule):
                return None
            op = self.schedule[self._cursor]
            self._cursor += 1
        return op

    def _worker(self, run_began: float) -> None:
        config = self.config
        registry = get_registry()
        latency = registry.histogram(
            "repro_loadgen_op_seconds",
            "Load-generator operation latency by op kind",
        )
        outcomes = registry.counter(
            "repro_loadgen_ops_total",
            "Load-generator operations by op kind and status",
        )
        while True:
            op = self._next_op()
            if op is None:
                return
            if config.mode == "open":
                delay = run_began + op.arrival_s - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            began = time.perf_counter()
            status = "ok"
            try:
                self._execute(op)
            except Exception as exc:
                status = "error"
                detail = f"{op.kind} {op.arg}: {type(exc).__name__}: {exc}"
                with self._errors_lock:
                    self._errors.append(detail)
            elapsed = time.perf_counter() - began
            latency.labels(op=op.kind).observe(elapsed)
            outcomes.labels(op=op.kind, status=status).inc()

    def run(self) -> LoadReport:
        """Execute the schedule and report from the metrics registry."""
        if self._platform is None:
            self.setup()
        workers = min(self.config.workers, len(self.schedule))
        run_began = time.perf_counter()
        threads = [
            threading.Thread(
                target=self._worker,
                args=(run_began,),
                name=f"loadgen-{i}",
            )
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            self._sync_store()  # drain uploads still awaiting a sync
        except Exception as exc:
            with self._errors_lock:
                self._errors.append(
                    f"final sync: {type(exc).__name__}: {exc}"
                )
        wall = time.perf_counter() - run_began
        self._completed = len(self.schedule)
        return self._report(wall)

    # -- reporting -------------------------------------------------------
    def _report(self, wall: float) -> LoadReport:
        snapshot = get_registry().snapshot()
        per_op: Dict[str, Dict[str, float]] = {}
        family = snapshot.get("repro_loadgen_op_seconds", {})
        for entry in family.get("series", []):
            op = entry.get("labels", {}).get("op", "?")
            per_op[op] = _distribution([entry])
        freshness: Dict[str, float] = {}
        fresh_family = snapshot.get("repro_loadgen_freshness_seconds", {})
        fresh_series = [
            entry for entry in fresh_family.get("series", [])
            if entry.get("labels", {}).get("mix") == self.config.mix
        ]
        if fresh_series:
            freshness = _distribution(fresh_series)
        return LoadReport(
            config=self.config,
            digest=schedule_digest(self.schedule),
            wall_seconds=wall,
            completed=self._completed,
            errors=len(self._errors),  # cc: allow=CC001 (workers joined)
            per_op=per_op,
            freshness=freshness,
            error_samples=self._errors[:10],  # cc: allow=CC001 (workers joined)
            metrics=snapshot,
        )


def _distribution(series: List[Mapping[str, Any]]) -> Dict[str, float]:
    count = sum(int(entry.get("count", 0)) for entry in series)
    total = sum(float(entry.get("sum", 0.0)) for entry in series)
    maximum = max(
        (float(entry.get("max", 0.0)) for entry in series), default=0.0
    )
    row = {
        "count": float(count),
        "mean_ms": (total / count * 1000.0) if count else 0.0,
        "max_ms": maximum * 1000.0,
    }
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        estimate, _ = quantile_from_series(list(series), q)
        row[f"{label}_ms"] = (estimate or 0.0) * 1000.0
    return row
