"""Deterministic synthetic UGC workloads.

Generates the populations the benchmarks run on: users with a friendship
graph, and geo-tagged captures around the synthetic world's cities with
titles in five languages. Everything is driven by a seeded RNG, so a
given configuration always produces the same workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..lod.world import CITIES, POIS
from ..platform.models import Capture
from ..sparql.geo import Point

#: Title templates per language; ``{poi}`` / ``{city}`` are substituted.
_TEMPLATES: Dict[str, List[str]] = {
    "en": [
        "Sunset over {poi}",
        "a beautiful view of {poi} today",
        "walking around {city} with friends",
        "my trip to {city}, visiting {poi}",
        "amazing light on {poi} this evening",
    ],
    "it": [
        "Tramonto sulla {poi}",
        "una bellissima vista di {poi} oggi",
        "passeggiata per {city} con gli amici",
        "il mio viaggio a {city}, visita a {poi}",
        "una luce stupenda su {poi} stasera",
    ],
    "fr": [
        "Coucher de soleil sur {poi}",
        "une belle vue de {poi} aujourd'hui",
        "promenade dans {city} avec des amis",
        "mon voyage à {city}, visite de {poi}",
    ],
    "es": [
        "Atardecer sobre {poi}",
        "una vista hermosa de {poi} hoy",
        "paseo por {city} con amigos",
        "mi viaje a {city}, visita a {poi}",
    ],
    "de": [
        "Sonnenuntergang über {poi}",
        "eine schöne Aussicht auf {poi} heute",
        "Spaziergang durch {city} mit Freunden",
        "meine Reise nach {city}, Besuch von {poi}",
    ],
}

_PLAIN_TAGS = [
    "sunset", "night", "holiday", "friends", "architecture", "food",
    "monument", "square", "walk", "museum", "view", "travel",
]


@dataclass
class WorkloadConfig:
    """Knobs of the synthetic workload."""

    n_users: int = 10
    n_contents: int = 100
    seed: int = 42
    cities: Sequence[str] = ("Turin",)
    friend_degree: int = 4          # average friendships per user
    languages: Sequence[str] = ("en", "it", "fr", "es", "de")
    scatter_km: float = 1.5         # content scatter around city center
    rated_fraction: float = 0.8
    start_timestamp: int = 1_325_376_000  # 2012-01-01, the paper's era


@dataclass
class Workload:
    """A generated population, platform-agnostic."""

    usernames: List[str]
    full_names: Dict[str, str]
    friendships: List[Tuple[str, str]]
    captures: List[Capture]
    ratings: Dict[int, float] = field(default_factory=dict)  # index → r


_FIRST_NAMES = [
    "oscar", "walter", "carmen", "fabio", "laura", "marco", "anna",
    "paolo", "elena", "luca", "sara", "dario", "giulia", "pietro",
    "chiara", "nadia", "bruno", "irene", "mario", "silvia",
]


def generate_workload(config: WorkloadConfig) -> Workload:
    """Build a deterministic workload from ``config``."""
    rng = random.Random(config.seed)
    cities = [c for c in CITIES if c.key in set(config.cities)]
    if not cities:
        raise ValueError(f"no known cities among {config.cities!r}")

    usernames = [
        _FIRST_NAMES[i] if i < len(_FIRST_NAMES)
        else f"user{i}"
        for i in range(config.n_users)
    ]
    full_names = {
        name: name.capitalize() + " " + chr(ord("A") + i % 26) + "."
        for i, name in enumerate(usernames)
    }

    friendships: List[Tuple[str, str]] = []
    seen_pairs = set()
    target_edges = config.n_users * config.friend_degree // 2
    attempts = 0
    while len(friendships) < target_edges and attempts < target_edges * 20:
        attempts += 1
        a, b = rng.sample(usernames, 2)
        pair = (min(a, b), max(a, b))
        if pair not in seen_pairs:
            seen_pairs.add(pair)
            friendships.append(pair)

    captures: List[Capture] = []
    ratings: Dict[int, float] = {}
    timestamp = config.start_timestamp
    for index in range(config.n_contents):
        city = rng.choice(cities)
        language = rng.choice(list(config.languages))
        templates = _TEMPLATES.get(language, _TEMPLATES["en"])
        template = rng.choice(templates)
        city_pois = [
            p for p in POIS if p.city == city.key and not p.commercial
        ]
        poi = rng.choice(city_pois) if city_pois else None
        poi_label = ""
        if poi is not None:
            poi_label = poi.labels.get(language) or poi.labels.get(
                "en"
            ) or next(iter(poi.labels.values()))
        city_label = city.labels.get(language, city.labels["en"])
        title = template.format(poi=poi_label, city=city_label)

        if poi is not None and rng.random() < 0.7:
            anchor = Point(poi.longitude, poi.latitude)
        else:
            anchor = Point(city.longitude, city.latitude)
        point = _jitter(rng, anchor, config.scatter_km)

        tags = tuple(
            rng.sample(_PLAIN_TAGS, rng.randint(0, 3))
        )
        username = rng.choice(usernames)
        timestamp += rng.randint(30, 600)
        captures.append(
            Capture(
                username=username,
                title=title,
                tags=tags,
                timestamp=timestamp,
                point=point,
            )
        )
        if rng.random() < config.rated_fraction:
            ratings[index] = float(rng.randint(1, 5))

    return Workload(
        usernames=usernames,
        full_names=full_names,
        friendships=friendships,
        captures=captures,
        ratings=ratings,
    )


def _jitter(rng: random.Random, anchor: Point, scatter_km: float) -> Point:
    # ~111 km per degree of latitude; clamp into valid ranges
    delta_deg = scatter_km / 111.0
    longitude = anchor.longitude + rng.uniform(-delta_deg, delta_deg)
    latitude = anchor.latitude + rng.uniform(-delta_deg, delta_deg)
    return Point(
        max(-180.0, min(180.0, longitude)),
        max(-90.0, min(90.0, latitude)),
    )


def populate_platform(platform, workload: Workload) -> List[int]:
    """Load a workload into a :class:`repro.platform.Platform`.

    Returns the created content pids, parallel to ``workload.captures``.
    """
    for username in workload.usernames:
        platform.register_user(
            username, workload.full_names[username]
        )
    for a, b in workload.friendships:
        platform.add_friendship(a, b)
    pids: List[int] = []
    for index, capture in enumerate(workload.captures):
        item = platform.upload(capture)
        pids.append(item.pid)
        rating = workload.ratings.get(index)
        if rating is not None:
            platform.rate(item.pid, rating)
    return pids
