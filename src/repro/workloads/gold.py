"""Gold-standard annotation corpus.

Hand-labeled (title, tags) pairs with the LOD resource each noteworthy
word *should* resolve to (or ``None`` when auto-annotation should
abstain). Used by the FIG1 pipeline benchmark, the RET retrieval
effectiveness experiment and the ABL-* ablations.

The corpus deliberately includes the failure modes §2.2.2 worries about:
redirects ("Coliseum"), ambiguity ("Paris" the city vs. the myth),
sentence-initial common words ("Sunset ..."), multiwords split across
tokens, and plain noise words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rdf.namespace import DBPR
from ..rdf.terms import URIRef
from ..lod.geonames import geonames_uri

GN_TURIN = geonames_uri(3165524)
GN_ROME = geonames_uri(3169070)
GN_PARIS = geonames_uri(2988507)
GN_MILAN = geonames_uri(3173435)
GN_BARCELONA = geonames_uri(3128760)
GN_BERLIN = geonames_uri(2950159)
GN_FLORENCE = geonames_uri(3176959)


@dataclass(frozen=True)
class GoldExample:
    """One labeled example.

    ``expected`` maps a word (as the pipeline will produce it) to the
    resource it should be annotated with; map to ``None`` for words the
    pipeline is expected to consider and *abstain* on. Words absent from
    ``expected`` are unconstrained.
    """

    title: str
    tags: Tuple[str, ...] = ()
    language: Optional[str] = None  # expected detection, None = don't care
    expected: Dict[str, Optional[URIRef]] = field(default_factory=dict)

    @property
    def expected_resources(self) -> List[URIRef]:
        return [r for r in self.expected.values() if r is not None]


GOLD_CORPUS: List[GoldExample] = [
    # --- straightforward city/monument hits (5 languages) --------------
    GoldExample(
        "a sunny afternoon in Turin", language="en",
        expected={"Turin": GN_TURIN},
    ),
    GoldExample(
        "Tramonto sulla Mole Antonelliana", language="it",
        expected={"Mole Antonelliana": DBPR.Mole_Antonelliana},
    ),
    GoldExample(
        "passeggiata per Torino con gli amici", language="it",
        expected={"Torino": GN_TURIN},
    ),
    GoldExample(
        "une belle vue de la Tour Eiffel aujourd'hui", language="fr",
        expected={"Tour Eiffel": DBPR.Eiffel_Tower},
    ),
    GoldExample(
        "mi viaje a Barcelona, visita a la Sagrada Familia",
        language="es",
        expected={
            "Barcelona": GN_BARCELONA,
            "Sagrada Familia": DBPR.Sagrada_Familia,
        },
    ),
    GoldExample(
        "Spaziergang durch Berlin mit Freunden", language="de",
        expected={"Berlin": GN_BERLIN},
    ),
    GoldExample(
        "visiting the Brandenburg Gate in Berlin", language="en",
        expected={
            "Brandenburg Gate": DBPR.Brandenburg_Gate,
            "Berlin": GN_BERLIN,
        },
    ),
    GoldExample(
        "il mio viaggio a Milano", language="it",
        expected={"Milano": GN_MILAN},
    ),
    GoldExample(
        "lunch near the Pantheon in Rome", language="en",
        expected={"Rome": GN_ROME},
    ),
    GoldExample(
        "gli Uffizi e il Ponte Vecchio a Firenze", language="it",
        expected={
            "Firenze": GN_FLORENCE,
            "Ponte Vecchio": DBPR.Ponte_Vecchio,
        },
    ),
    # --- redirects ------------------------------------------------------
    GoldExample(
        "a view from inside", tags=("Coliseum",), language="en",
        expected={"Coliseum": DBPR.Colosseum},
    ),
    GoldExample(
        "amazing day at the Roman Colosseum", language="en",
        expected={"Roman Colosseum": DBPR.Colosseum},
    ),
    # --- multiwords split by lowercase titles (full-text rescue) --------
    GoldExample(
        "by the eiffel tower at dusk", language="en",
        expected={"Eiffel Tower": DBPR.Eiffel_Tower},
    ),
    GoldExample(
        "una foto della mole antonelliana stasera", language="it",
        expected={"Mole Antonelliana": DBPR.Mole_Antonelliana},
    ),
    # --- places where Geonames must win the priority ---------------------
    GoldExample(
        "Paris in the spring", language="en",
        expected={"Paris": GN_PARIS},
    ),
    GoldExample(
        # language=None: "weekend" is an English loanword and the title
        # has 3 tokens — detection is legitimately ambiguous here
        "weekend a Parigi", language=None,
        expected={"Parigi": GN_PARIS},
    ),
    # --- abstention cases -------------------------------------------------
    GoldExample(
        # "Sunset" is a capitalized sentence-initial common word: the NP
        # score (0.15) falls below the 0.2 threshold, and the frequency
        # fallback word has no LOD match — no annotation.
        "Sunset over the river", language="en",
        expected={"Sunset": None},
    ),
    GoldExample(
        "random zz jibberishword here", language="en",
        expected={"jibberishword": None},
    ),
    GoldExample(
        # "Leonardo" alone is a person in DBpedia but the pipeline should
        # still annotate only when a single candidate survives
        "thinking about the difference", language="en",
        expected={"difference": None},
    ),
    # --- people -----------------------------------------------------------
    GoldExample(
        "reading about Giuseppe Verdi tonight", language="en",
        expected={"Giuseppe Verdi": DBPR.Giuseppe_Verdi},
    ),
    GoldExample(
        "la Mole di Alessandro Antonelli", language="it",
        expected={"Alessandro Antonelli": DBPR.Alessandro_Antonelli},
    ),
    # --- mixed -----------------------------------------------------------
    GoldExample(
        "Turin and Rome in one day", language="en",
        expected={"Turin": GN_TURIN, "Rome": GN_ROME},
    ),
    GoldExample(
        "una luce stupenda su Palazzo Madama stasera", language="it",
        expected={"Palazzo Madama": DBPR.Palazzo_Madama},
    ),
    GoldExample(
        "Museo Egizio con la famiglia", language="it",
        expected={"Museo Egizio": DBPR.Museo_Egizio},
    ),
    GoldExample(
        "Juventus Stadium before the match", language="en",
        expected={"Juventus Stadium": DBPR.Juventus_Stadium},
    ),
    GoldExample(
        "Park Güell in the morning", language="en",
        expected={"Park Güell": DBPR.Park_Guell},
    ),
    GoldExample(
        "coucher de soleil sur Notre-Dame de Paris", language="fr",
        expected={},
    ),
    GoldExample(
        "Trevi Fountain with friends", language="en",
        expected={"Trevi Fountain": DBPR.Trevi_Fountain},
    ),
    GoldExample(
        "la Fontana di Trevi di notte", language="it",
        expected={"Fontana di Trevi": DBPR.Trevi_Fountain},
    ),
    GoldExample(
        # "Piazza San Carlo" is absent from the synthetic DBpedia, so the
        # correct behaviour is to abstain. The pipeline actually produces
        # a false positive here (Evri proposes the similarly-named Piazza
        # Castello and it survives the 0.8 Jaro-Winkler cut) — kept in
        # the corpus deliberately: the paper itself admits "empirical
        # tests proof that such technique must be further improved as it
        # still provides false positives" (§2.2.2).
        "Piazza San Carlo sotto la neve", language="it",
        expected={"Piazza San Carlo": None},
    ),
]


@dataclass
class ScoredCorpus:
    """Precision/recall of a pipeline run against the gold corpus."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    abstain_correct: int = 0
    abstain_expected: int = 0
    language_correct: int = 0
    language_total: int = 0

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def language_accuracy(self) -> float:
        if not self.language_total:
            return 1.0
        return self.language_correct / self.language_total


def score_pipeline(annotator, corpus=None) -> ScoredCorpus:
    """Run ``annotator`` over the gold corpus and score it.

    A gold word scores a true positive when the pipeline annotated it
    (or an equivalent full-text surface form) with the expected resource;
    a false positive when it annotated it with something else; a false
    negative when it abstained despite an expected resource. ``None``
    expectations score ``abstain_correct`` when the pipeline indeed did
    not annotate the word.
    """
    examples = corpus if corpus is not None else GOLD_CORPUS
    score = ScoredCorpus()
    for example in examples:
        result = annotator.annotate(example.title, example.tags)
        if example.language is not None:
            score.language_total += 1
            if result.language == example.language:
                score.language_correct += 1
        produced = {
            a.word.lower(): a.resource for a in result.annotations
        }
        for word, expected in example.expected.items():
            actual = produced.get(word.lower())
            if expected is None:
                score.abstain_expected += 1
                if actual is None:
                    score.abstain_correct += 1
                else:
                    score.false_positives += 1
            elif actual is None:
                score.false_negatives += 1
            elif actual == expected:
                score.true_positives += 1
            else:
                score.false_positives += 1
    return score
