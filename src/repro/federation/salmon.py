"""Salmon-style upstream replies (paper §6.2).

"A Salmon protocol implementation to comment and annotate the original
sources of updates and content." — replies made downstream "swim
upstream" to the node hosting the original content, carried as signed
envelopes. Signatures here are HMACs over the payload with a per-node
key registered in the federation's key directory (standing in for the
magic-signature public keys).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict


class SalmonError(Exception):
    """Bad envelope, unknown signer or signature mismatch."""


@dataclass(frozen=True)
class Slap:
    """A salmon "slap": a reply/mention heading upstream."""

    author: str        # acct:user@domain
    in_reply_to: str   # content URL on the upstream node
    content: str
    published: int


@dataclass(frozen=True)
class Envelope:
    """A signed slap."""

    slap: Slap
    signer_domain: str
    signature: str


class KeyDirectory:
    """Per-domain signing keys (the magic-signature key registry)."""

    def __init__(self) -> None:
        self._keys: Dict[str, bytes] = {}

    def register(self, domain: str, key: bytes) -> None:
        self._keys[domain.lower()] = key

    def key_for(self, domain: str) -> bytes:
        key = self._keys.get(domain.lower())
        if key is None:
            raise SalmonError(f"no key for domain {domain}")
        return key


def _payload(slap: Slap) -> bytes:
    return "\n".join(
        (slap.author, slap.in_reply_to, slap.content,
         str(slap.published))
    ).encode("utf-8")


def sign_slap(
    slap: Slap, signer_domain: str, directory: KeyDirectory
) -> Envelope:
    key = directory.key_for(signer_domain)
    signature = hmac.new(key, _payload(slap), hashlib.sha256).hexdigest()
    return Envelope(slap, signer_domain, signature)


def verify_envelope(
    envelope: Envelope, directory: KeyDirectory
) -> Slap:
    """Verify and open an envelope; raises :class:`SalmonError` on any
    mismatch (forged content, wrong signer, unknown domain)."""
    key = directory.key_for(envelope.signer_domain)
    expected = hmac.new(
        key, _payload(envelope.slap), hashlib.sha256
    ).hexdigest()
    if not hmac.compare_digest(expected, envelope.signature):
        raise SalmonError("signature mismatch")
    author_domain = envelope.slap.author.rsplit("@", 1)[-1].lower()
    if author_domain != envelope.signer_domain.lower():
        raise SalmonError(
            "author domain does not match signing domain"
        )
    return envelope.slap
