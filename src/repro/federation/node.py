"""The federated node (paper §6): one home-network device per family.

Graph-writes: fresh per-request profile/content graphs only; no
shared store

Each node hosts its members' content, exposes WebFinger discovery, a
FOAF profile graph, ActivityStreams timelines, an OEmbed endpoint and a
UPnP media server, publishes updates through the PubSubHubbub hub and
accepts Salmon replies on its content. A :class:`Federation` wires the
shared infrastructure (directory, hub, key registry) together.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rdf.graph import Graph
from ..rdf.namespace import FOAF, RDF
from ..rdf.terms import Literal, URIRef
from .activitystreams import Activity, Timeline, merge_timelines
from .oembed import OEmbedError, photo_response
from .pubsub import Hub
from .salmon import (
    Envelope,
    KeyDirectory,
    SalmonError,
    Slap,
    sign_slap,
    verify_envelope,
)
from .upnp import MediaItem, MediaServer, SsdpRegistry
from .webfinger import WebFingerDirectory, WebFingerError, parse_account


@dataclass
class FederatedContent:
    """A content item hosted on a node."""

    url: str
    author: str          # acct:user@domain
    title: str
    media_url: str
    published: int
    comments: List[Slap] = field(default_factory=list)


class FederatedNode:
    """One family's home server."""

    def __init__(self, domain: str, federation: "Federation",
                 signing_key: bytes) -> None:
        self.domain = domain.lower()
        self.federation = federation
        self._members: Dict[str, str] = {}
        self._timelines: Dict[str, Timeline] = {}
        self._inbox: Timeline = Timeline(f"{self.domain}/inbox")
        self._contents: Dict[str, FederatedContent] = {}
        self._follows: Dict[str, List[str]] = {}
        self._content_counter = itertools.count(1)
        self.media_server = MediaServer(f"{self.domain} media")
        self.media_server.add_container("family", "Family album")
        federation.directory.register_node(self)
        federation.keys.register(self.domain, signing_key)
        federation.ssdp.advertise(self.media_server)

    # ------------------------------------------------------------------
    # Members
    # ------------------------------------------------------------------
    def add_member(self, username: str, full_name: str) -> str:
        """Each family member gets an account; returns the acct URI."""
        if username in self._members:
            raise ValueError(f"member exists: {username}")
        self._members[username] = full_name
        self._timelines[username] = Timeline(self.acct(username))
        self._follows[username] = []
        return self.acct(username)

    def acct(self, username: str) -> str:
        return f"acct:{username}@{self.domain}"

    def has_member(self, username: str) -> bool:
        return username in self._members

    def member_full_name(self, username: str) -> str:
        return self._members[username]

    def members(self) -> List[str]:
        return sorted(self._members)

    # ------------------------------------------------------------------
    # Content publication
    # ------------------------------------------------------------------
    def publish(
        self,
        username: str,
        title: str,
        media_url: str,
        published: int,
    ) -> FederatedContent:
        if username not in self._members:
            raise KeyError(f"unknown member: {username}")
        content_id = next(self._content_counter)
        url = f"https://{self.domain}/content/{content_id}"
        content = FederatedContent(
            url=url,
            author=self.acct(username),
            title=title,
            media_url=media_url,
            published=published,
        )
        self._contents[url] = content
        activity = Activity(
            actor=self.acct(username),
            verb="post",
            object_id=url,
            published=published,
            summary=title,
        )
        self._timelines[username].push(activity)
        self.media_server.add_item(
            "family",
            MediaItem(
                item_id=f"item-{content_id}",
                title=title,
                media_url=media_url,
            ),
        )
        self.federation.hub.publish(
            self.topic(username),
            {
                "activity": activity.to_json(),
                "media_url": media_url,
                "url": url,
            },
        )
        return content

    def topic(self, username: str) -> str:
        return f"https://{self.domain}/feeds/{username}"

    def content(self, url: str) -> FederatedContent:
        if url not in self._contents:
            raise KeyError(f"no content at {url}")
        return self._contents[url]

    def contents(self) -> List[FederatedContent]:
        return list(self._contents.values())

    # ------------------------------------------------------------------
    # Following across nodes
    # ------------------------------------------------------------------
    def follow(self, username: str, remote_acct: str) -> None:
        """Subscribe ``username`` to a remote member's updates."""
        if not self.federation.directory.validate(remote_acct):
            raise WebFingerError(f"cannot validate {remote_acct}")
        account = parse_account(remote_acct)
        remote = self.federation.directory.node_for(account.domain)
        self.federation.hub.subscribe(
            subscriber_id=f"{self.acct(username)}",
            topic=remote.topic(account.user),
            callback=self._receive_notification,
            verify=lambda challenge: challenge,
        )
        self._follows[username].append(account.acct)

    def follows(self, username: str) -> List[str]:
        return list(self._follows.get(username, []))

    def _receive_notification(self, topic: str, payload) -> None:
        self._inbox.push(Activity.from_json(payload["activity"]))

    def home_timeline(self, limit: Optional[int] = None) -> List[Activity]:
        """Local members' activities merged with followed remote ones."""
        return merge_timelines(
            list(self._timelines.values()) + [self._inbox], limit=limit
        )

    def timeline(self, username: str) -> Timeline:
        return self._timelines[username]

    # ------------------------------------------------------------------
    # Salmon replies
    # ------------------------------------------------------------------
    def comment(
        self,
        username: str,
        content_url: str,
        text: str,
        published: int,
    ) -> Envelope:
        """Reply to content hosted anywhere in the federation; the slap
        swims upstream to the hosting node."""
        slap = Slap(
            author=self.acct(username),
            in_reply_to=content_url,
            content=text,
            published=published,
        )
        envelope = sign_slap(slap, self.domain, self.federation.keys)
        target_domain = content_url.split("/")[2]
        target = self.federation.directory.node_for(target_domain)
        target.receive_slap(envelope)
        return envelope

    def receive_slap(self, envelope: Envelope) -> None:
        slap = verify_envelope(envelope, self.federation.keys)
        if slap.in_reply_to not in self._contents:
            raise SalmonError(
                f"no such content: {slap.in_reply_to}"
            )
        self._contents[slap.in_reply_to].comments.append(slap)

    # ------------------------------------------------------------------
    # FOAF + OEmbed endpoints
    # ------------------------------------------------------------------
    def foaf_graph(self) -> Graph:
        """The node's FOAF document: members and their relationships
        (including cross-network foaf:knows via acct URIs)."""
        g = Graph()
        for username, full_name in self._members.items():
            person = URIRef(
                f"https://{self.domain}/people/{username}"
            )
            g.add((person, RDF.type, FOAF.Person))
            g.add((person, FOAF.nick, Literal(username)))
            g.add((person, FOAF.name, Literal(full_name)))
            g.add((person, FOAF.account, URIRef(self.acct(username))))
            for remote in self._follows.get(username, ()):
                g.add((person, FOAF.knows, URIRef(remote)))
        return g

    def oembed(self, url: str) -> dict:
        if url not in self._contents:
            raise OEmbedError(f"unknown content: {url}")
        content = self._contents[url]
        username = content.author.split(":", 1)[1].split("@", 1)[0]
        return photo_response(
            url=url,
            title=content.title,
            author=self._members.get(username, username),
            provider=self.domain,
            media_url=content.media_url,
        )


class Federation:
    """Shared infrastructure: directory, hub, keys, SSDP."""

    def __init__(self) -> None:
        self.directory = WebFingerDirectory()
        self.hub = Hub()
        self.keys = KeyDirectory()
        self.ssdp = SsdpRegistry()

    def create_node(self, domain: str, signing_key: bytes
                    ) -> FederatedNode:
        return FederatedNode(domain, self, signing_key)
