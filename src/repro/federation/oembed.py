"""OEmbed provider (paper §6.2).

"Multimedia content sharing, accomplished by using OEmbed." — given a
content URL hosted on a node, returns the standard OEmbed response dict
(type ``photo``/``video``, provider metadata, embed HTML).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class OEmbedError(Exception):
    """Unknown content URL."""


def photo_response(
    url: str,
    title: str,
    author: str,
    provider: str,
    width: int = 640,
    height: int = 480,
    media_url: Optional[str] = None,
) -> Dict[str, Any]:
    """Build an OEmbed 1.0 ``photo`` response."""
    media = media_url or url
    return {
        "version": "1.0",
        "type": "photo",
        "title": title,
        "author_name": author,
        "provider_name": provider,
        "provider_url": f"https://{provider}",
        "url": media,
        "width": width,
        "height": height,
        "html": (
            f'<img src="{media}" width="{width}" height="{height}" '
            f'alt="{_attr_escape(title)}"/>'
        ),
    }


def video_response(
    url: str,
    title: str,
    author: str,
    provider: str,
    width: int = 640,
    height: int = 360,
) -> Dict[str, Any]:
    """Build an OEmbed 1.0 ``video`` response."""
    return {
        "version": "1.0",
        "type": "video",
        "title": title,
        "author_name": author,
        "provider_name": provider,
        "provider_url": f"https://{provider}",
        "width": width,
        "height": height,
        "html": (
            f'<video src="{url}" width="{width}" height="{height}" '
            "controls></video>"
        ),
    }


def _attr_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace('"', "&quot;")
        .replace("<", "&lt;").replace(">", "&gt;")
    )
