"""WebFinger-style identity discovery (paper §6.2).

"A Webfinger protocol implementation enables the identification of
users across different social networks and the identity validation."

Identifiers are ``acct:user@domain``; lookups return a JRD-like
descriptor with the user's profile, FOAF document and activity feed
links on their home node.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict

_ACCT_RE = re.compile(r"^(?:acct:)?([A-Za-z0-9._-]+)@([A-Za-z0-9.-]+)$")


class WebFingerError(Exception):
    """Malformed account or unknown domain/user."""


@dataclass(frozen=True)
class Account:
    """A parsed ``acct:`` identifier."""

    user: str
    domain: str

    @property
    def acct(self) -> str:
        return f"acct:{self.user}@{self.domain}"


def parse_account(identifier: str) -> Account:
    match = _ACCT_RE.match(identifier.strip())
    if not match:
        raise WebFingerError(f"not an account identifier: {identifier!r}")
    return Account(match.group(1), match.group(2).lower())


@dataclass
class Descriptor:
    """The JRD-ish resource descriptor returned by a lookup."""

    subject: str
    links: Dict[str, str] = field(default_factory=dict)
    properties: Dict[str, str] = field(default_factory=dict)


class WebFingerDirectory:
    """The federation-wide account directory (DNS + /.well-known)."""

    def __init__(self) -> None:
        self._nodes: Dict[str, "object"] = {}

    def register_node(self, node) -> None:
        domain = node.domain.lower()
        if domain in self._nodes:
            raise WebFingerError(f"domain already registered: {domain}")
        self._nodes[domain] = node

    def node_for(self, domain: str):
        node = self._nodes.get(domain.lower())
        if node is None:
            raise WebFingerError(f"unknown domain: {domain}")
        return node

    def lookup(self, identifier: str) -> Descriptor:
        """Resolve an ``acct:`` identifier to its descriptor."""
        account = parse_account(identifier)
        node = self.node_for(account.domain)
        if not node.has_member(account.user):
            raise WebFingerError(
                f"no user {account.user!r} at {account.domain}"
            )
        base = f"https://{account.domain}"
        return Descriptor(
            subject=account.acct,
            links={
                "profile": f"{base}/people/{account.user}",
                "describedby": f"{base}/people/{account.user}/foaf",
                "activity": f"{base}/people/{account.user}/activity",
                "salmon": f"{base}/salmon/{account.user}",
            },
            properties={"name": node.member_full_name(account.user)},
        )

    def validate(self, identifier: str) -> bool:
        """Identity validation: does the account actually exist?"""
        try:
            self.lookup(identifier)
            return True
        except WebFingerError:
            return False
