"""UPnP-style home media sharing (paper §6.1 / §6.3).

The home network device acts as a UPnP media server: compatible home
devices (TVs, photo frames) discover it, browse its content directory
(organized by user and album) and request items for playback. The
paper's example — "a UPnP-compatible photoframe displaying a real-time
slideshow of the media content that a family member is taking during his
holidays" — is reproduced by combining this directory with the pub/sub
notifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class UpnpError(Exception):
    """Unknown container or item."""


@dataclass(frozen=True)
class MediaItem:
    """One playable item of the content directory."""

    item_id: str
    title: str
    media_url: str
    media_class: str = "object.item.imageItem.photo"


@dataclass
class Container:
    """A browsable folder."""

    container_id: str
    title: str
    children: List[str] = field(default_factory=list)  # container ids
    items: List[MediaItem] = field(default_factory=list)


class MediaServer:
    """The UPnP media server on the home network device."""

    def __init__(self, friendly_name: str) -> None:
        self.friendly_name = friendly_name
        self._containers: Dict[str, Container] = {
            "0": Container("0", "Root")
        }
        self._items: Dict[str, MediaItem] = {}

    # ------------------------------------------------------------------
    def add_container(
        self, container_id: str, title: str, parent: str = "0"
    ) -> Container:
        if container_id in self._containers:
            raise UpnpError(f"container exists: {container_id}")
        parent_container = self._container(parent)
        container = Container(container_id, title)
        self._containers[container_id] = container
        parent_container.children.append(container_id)
        return container

    def add_item(self, container_id: str, item: MediaItem) -> None:
        container = self._container(container_id)
        if item.item_id in self._items:
            raise UpnpError(f"item exists: {item.item_id}")
        self._items[item.item_id] = item
        container.items.append(item)

    def _container(self, container_id: str) -> Container:
        if container_id not in self._containers:
            raise UpnpError(f"no container: {container_id}")
        return self._containers[container_id]

    # ------------------------------------------------------------------
    # The ContentDirectory Browse action
    # ------------------------------------------------------------------
    def browse(self, container_id: str = "0") -> Dict[str, list]:
        """Children and items of a container (Browse/DirectChildren)."""
        container = self._container(container_id)
        return {
            "containers": [
                self._containers[c] for c in container.children
            ],
            "items": list(container.items),
        }

    def request_playback(self, item_id: str) -> str:
        """A device requests a file for playback; returns the media URL."""
        if item_id not in self._items:
            raise UpnpError(f"no item: {item_id}")
        return self._items[item_id].media_url


class SsdpRegistry:
    """Very small SSDP stand-in: device discovery on the home network."""

    def __init__(self) -> None:
        self._servers: List[MediaServer] = []

    def advertise(self, server: MediaServer) -> None:
        self._servers.append(server)

    def discover(self) -> List[MediaServer]:
        """What an M-SEARCH for MediaServer devices returns."""
        return list(self._servers)


class PhotoFrame:
    """A UPnP-compatible photo frame running a slideshow."""

    def __init__(self, registry: SsdpRegistry) -> None:
        self.registry = registry
        self.slideshow: List[str] = []

    def refresh(self, container_id: str = "0") -> int:
        """Discover a media server and (re)load the slideshow."""
        servers = self.registry.discover()
        if not servers:
            return 0
        server = servers[0]
        listing = server.browse(container_id)
        self.slideshow = [
            server.request_playback(item.item_id)
            for item in listing["items"]
        ]
        return len(self.slideshow)

    def on_new_content(self, topic: str, payload) -> None:
        """PubSub callback: append freshly-published media in real time."""
        media_url = payload.get("media_url") if isinstance(
            payload, dict
        ) else None
        if media_url:
            self.slideshow.append(media_url)
