"""ActivityStreams timelines (paper §6.2).

"A users' activities timeline in the ActivityStreams format." —
activities follow the 2011 JSON Activity Streams shape (actor / verb /
object / published) and timelines can be merged across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

VERBS = frozenset({"post", "share", "like", "follow", "tag", "comment"})


class ActivityError(ValueError):
    """Invalid activity structure."""


@dataclass(frozen=True)
class Activity:
    """One activity entry."""

    actor: str          # acct:user@domain
    verb: str
    object_id: str      # URL or URI of the object
    object_type: str = "photo"
    published: int = 0  # epoch seconds
    summary: Optional[str] = None

    def __post_init__(self) -> None:
        if self.verb not in VERBS:
            raise ActivityError(f"unknown verb: {self.verb!r}")

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "actor": {"objectType": "person", "id": self.actor},
            "verb": self.verb,
            "object": {
                "objectType": self.object_type,
                "id": self.object_id,
            },
            "published": self.published,
        }
        if self.summary is not None:
            doc["summary"] = self.summary
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "Activity":
        try:
            return cls(
                actor=doc["actor"]["id"],
                verb=doc["verb"],
                object_id=doc["object"]["id"],
                object_type=doc["object"].get("objectType", "photo"),
                published=doc.get("published", 0),
                summary=doc.get("summary"),
            )
        except (KeyError, TypeError) as exc:
            raise ActivityError(f"malformed activity: {doc!r}") from exc


class Timeline:
    """An append-only activity stream, newest first on read."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._activities: List[Activity] = []

    def push(self, activity: Activity) -> None:
        self._activities.append(activity)

    def entries(self, limit: Optional[int] = None) -> List[Activity]:
        ordered = sorted(
            self._activities,
            key=lambda a: (-a.published, a.actor, a.object_id),
        )
        return ordered[:limit] if limit is not None else ordered

    def __len__(self) -> int:
        return len(self._activities)


def merge_timelines(
    timelines: Iterable[Timeline], limit: Optional[int] = None
) -> List[Activity]:
    """The federated home view: activities of several nodes interleaved
    by publication time (newest first)."""
    merged: List[Activity] = []
    for timeline in timelines:
        merged.extend(timeline.entries())
    merged.sort(key=lambda a: (-a.published, a.actor, a.object_id))
    return merged[:limit] if limit is not None else merged
