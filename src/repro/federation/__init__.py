"""The paper's §6 future-work architecture: federated home-hosted
social nodes with WebFinger, FOAF, ActivityStreams, PubSubHubbub,
Salmon, OEmbed and UPnP media sharing."""

from .activitystreams import (
    Activity,
    ActivityError,
    Timeline,
    VERBS,
    merge_timelines,
)
from .node import Federation, FederatedContent, FederatedNode
from .oembed import OEmbedError, photo_response, video_response
from .pubsub import Hub, PubSubError
from .salmon import (
    Envelope,
    KeyDirectory,
    SalmonError,
    Slap,
    sign_slap,
    verify_envelope,
)
from .upnp import (
    Container,
    MediaItem,
    MediaServer,
    PhotoFrame,
    SsdpRegistry,
    UpnpError,
)
from .webfinger import (
    Account,
    Descriptor,
    WebFingerDirectory,
    WebFingerError,
    parse_account,
)

__all__ = [
    "Account",
    "Activity",
    "ActivityError",
    "Container",
    "Descriptor",
    "Envelope",
    "FederatedContent",
    "FederatedNode",
    "Federation",
    "Hub",
    "KeyDirectory",
    "MediaItem",
    "MediaServer",
    "OEmbedError",
    "PhotoFrame",
    "PubSubError",
    "SalmonError",
    "Slap",
    "SsdpRegistry",
    "Timeline",
    "UpnpError",
    "VERBS",
    "WebFingerDirectory",
    "WebFingerError",
    "merge_timelines",
    "parse_account",
    "photo_response",
    "sign_slap",
    "verify_envelope",
    "video_response",
]
