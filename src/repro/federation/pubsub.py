"""PubSubHubbub-style publish/subscribe (paper §6.2).

"Publish and subscribe mechanism implemented through the PubSubHubBub
open protocol which also provides near-instant notifications."

The hub keeps per-topic subscriber lists; subscription requires the
subscriber to echo a verification challenge (the protocol's intent
verification), and publishing fans the payload out synchronously —
"near-instant" in-process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple


class PubSubError(Exception):
    """Subscription/verification failures."""


#: A subscriber callback: (topic, payload) -> None.
Callback = Callable[[str, Any], None]


@dataclass
class Subscription:
    subscriber_id: str
    topic: str
    callback: Callback
    verified: bool = False


class Hub:
    """The hub all nodes publish through."""

    def __init__(self) -> None:
        self._subscriptions: Dict[str, List[Subscription]] = {}
        self._challenges: Dict[str, Tuple[Subscription, str]] = {}
        self._challenge_counter = itertools.count(1)
        self.delivery_log: List[Tuple[str, str]] = []  # (topic, subscriber)

    # ------------------------------------------------------------------
    def subscribe(
        self,
        subscriber_id: str,
        topic: str,
        callback: Callback,
        verify: Optional[Callable[[str], str]] = None,
    ) -> str:
        """Request a subscription. Returns the challenge token; the
        subscription activates only when :meth:`verify` is called with
        the echoed challenge (or immediately when ``verify`` is given
        and echoes correctly)."""
        subscription = Subscription(subscriber_id, topic, callback)
        challenge = f"challenge-{next(self._challenge_counter)}"
        self._challenges[challenge] = (subscription, challenge)
        if verify is not None:
            echoed = verify(challenge)
            self.verify(challenge, echoed)
        return challenge

    def verify(self, challenge: str, echoed: str) -> None:
        entry = self._challenges.pop(challenge, None)
        if entry is None:
            raise PubSubError("unknown challenge")
        subscription, expected = entry
        if echoed != expected:
            raise PubSubError("challenge mismatch")
        subscription.verified = True
        self._subscriptions.setdefault(subscription.topic, []).append(
            subscription
        )

    def unsubscribe(self, subscriber_id: str, topic: str) -> bool:
        subs = self._subscriptions.get(topic, [])
        before = len(subs)
        subs[:] = [s for s in subs if s.subscriber_id != subscriber_id]
        return len(subs) < before

    def subscribers(self, topic: str) -> List[str]:
        return [
            s.subscriber_id for s in self._subscriptions.get(topic, [])
        ]

    # ------------------------------------------------------------------
    def publish(self, topic: str, payload: Any) -> int:
        """Fan out to all verified subscribers; returns delivery count."""
        delivered = 0
        for subscription in self._subscriptions.get(topic, []):
            subscription.callback(topic, payload)
            self.delivery_log.append((topic, subscription.subscriber_id))
            delivered += 1
        return delivered
