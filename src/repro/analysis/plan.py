"""Static query planner: rewrite passes over the SPARQL algebra.

The planner lowers a parsed query (:func:`repro.sparql.algebra`) and
runs a pipeline of *pure* algebra→algebra passes, each of which may also
emit :class:`~repro.analysis.diagnostics.Diagnostic` records — the
planner *is* a static analyzer whose findings double as rewrites:

==========  ============================================================
SP010       constant FILTER expression folded at plan time
SP011       FILTER pushed down into the BGP binding its variables
SP012       triple patterns / join elements reordered by selectivity
SP013       join order forces a cartesian product
SP014       provably empty pattern pruned (contradictory FILTERs,
            predicates absent from the data, empty UNION branches)
SP015       redundant DISTINCT eliminated
SP016       redundant ORDER BY eliminated
==========  ============================================================

Soundness notes (why each rewrite preserves the naive evaluator's
result multiset) are documented on the individual passes. Passes never
mutate the input AST — plan nodes reference the parser's frozen
expressions and triple patterns, and rewrites rebuild plan structure
only.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import Variable
from ..sparql.algebra import (
    AggregateNode,
    BGPNode,
    DistinctNode,
    EmptyNode,
    ExtendNode,
    FilterNode,
    GraphNode,
    JoinNode,
    LeftJoinNode,
    OrderNode,
    PlanNode,
    ProjectNode,
    ScanStep,
    SliceNode,
    SubSelectNode,
    UnionNode,
    ValuesNode,
    lower_query,
    render_expression,
    render_plan,
)
from ..sparql.ast import (
    AndExpr,
    ArithExpr,
    CompareExpr,
    ExistsExpr,
    Expression,
    FunctionCall,
    InExpr,
    NegExpr,
    NotExpr,
    OrExpr,
    Query,
    SelectQuery,
    TermExpr,
)
from .diagnostics import Diagnostic
from .rules import make
from .sparql_lint import (
    _expr_vars,
    _flatten_and,
    _function_calls,
    _interval_contradiction,
    _statically_false,
)
from .stats import GraphStatistics

#: Magic predicates are constraints, not scans — they bind nothing and
#: require their subject bound before they run.
_MAGIC = "bif:contains"

#: Function names whose value depends on more than their arguments; a
#: filter calling one of these is never folded or pushed.
_BOUNDNESS_SENSITIVE = frozenset({"BOUND", "COALESCE"})


class _PassContext:
    """Shared state threaded through one planning run."""

    def __init__(
        self,
        stats: Optional[GraphStatistics],
        functions: Optional[Dict[str, object]],
        name: Optional[str],
    ) -> None:
        self.stats = stats
        self.functions = functions
        self.name = name
        self.diagnostics: List[Diagnostic] = []
        self._fold_evaluator = None

    def diag(self, rule_id: str, message: str) -> None:
        self.diagnostics.append(
            make(rule_id, message, source=self.name)
        )

    def fold_evaluator(self):
        """A throwaway evaluator for constant-expression evaluation."""
        if self._fold_evaluator is None:
            from ..rdf.graph import Graph
            from ..sparql.evaluator import Evaluator

            self._fold_evaluator = Evaluator(
                Graph(), functions=self.functions, optimize=False
            )
        return self._fold_evaluator


Pass = Callable[[PlanNode, _PassContext], PlanNode]


# ---------------------------------------------------------------------------
# Pass: constant folding (SP010)
# ---------------------------------------------------------------------------


def fold_constants(root: PlanNode, ctx: _PassContext) -> PlanNode:
    """Evaluate variable-free (sub)expressions of FILTERs at plan time.

    Sound because every supported function is deterministic: a subtree
    mentioning no variables evaluates to the same term for every
    solution. A filter folding to false (or to an error) rejects every
    solution, so its group becomes :class:`EmptyNode`.
    """

    def fold_filter(expr: Expression) -> Tuple[Expression, str]:
        """Returns (expression, verdict): verdict in keep/true/false."""
        folded, changed = _fold_expression(expr, ctx)
        if not _expr_vars(folded) and not _contains_exists(folded):
            verdict = _constant_truth(folded, ctx)
            if verdict is not None:
                return folded, "true" if verdict else "false"
        if changed:
            return folded, "folded"
        return expr, "keep"

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, JoinNode):
            elements: List[PlanNode] = []
            for element in node.elements:
                element = rewrite(element)
                if isinstance(element, FilterNode):
                    folded, verdict = fold_filter(element.expression)
                    if verdict == "true":
                        ctx.diag(
                            "SP010",
                            "FILTER "
                            f"{render_expression(element.expression)} "
                            "is constant true — removed",
                        )
                        continue
                    if verdict == "false":
                        ctx.diag(
                            "SP010",
                            "FILTER "
                            f"{render_expression(element.expression)} "
                            "is constant false — group is empty",
                        )
                        elements.append(
                            EmptyNode("constant-false FILTER")
                        )
                        continue
                    if verdict == "folded":
                        ctx.diag(
                            "SP010",
                            "constant subexpression folded in FILTER "
                            f"{render_expression(element.expression)}",
                        )
                        element = FilterNode(folded)
                elements.append(element)
            return JoinNode(elements)
        return _rewrite_children(node, rewrite)

    return rewrite(root)


def _fold_expression(
    expr: Expression, ctx: _PassContext
) -> Tuple[Expression, bool]:
    """Bottom-up fold; returns (expression, changed)."""
    if isinstance(expr, TermExpr) or isinstance(expr, ExistsExpr):
        return expr, False

    rebuilt, changed = _rebuild_operands(expr, ctx)
    if (
        not isinstance(rebuilt, TermExpr)
        and not _expr_vars(rebuilt)
        and not _contains_exists(rebuilt)
        and not any(
            c.name in _BOUNDNESS_SENSITIVE
            for c in _function_calls(rebuilt)
        )
    ):
        from ..sparql.errors import ExpressionError, SparqlEvalError

        try:
            value = ctx.fold_evaluator()._eval_expression(rebuilt, {})
            return TermExpr(value), True
        except (ExpressionError, SparqlEvalError):
            pass  # leave for runtime (same error → filter rejects)
    return rebuilt, changed


def _rebuild_operands(
    expr: Expression, ctx: _PassContext
) -> Tuple[Expression, bool]:
    def fold(sub: Expression) -> Tuple[Expression, bool]:
        return _fold_expression(sub, ctx)

    if isinstance(expr, (OrExpr, AndExpr)):
        pairs = [fold(operand) for operand in expr.operands]
        if any(changed for _, changed in pairs):
            operands = tuple(e for e, _ in pairs)
            return type(expr)(operands), True
        return expr, False
    if isinstance(expr, (NotExpr, NegExpr)):
        inner, changed = fold(expr.operand)
        return (type(expr)(inner), True) if changed else (expr, False)
    if isinstance(expr, (CompareExpr, ArithExpr)):
        left, lc = fold(expr.left)
        right, rc = fold(expr.right)
        if lc or rc:
            return type(expr)(expr.op, left, right), True
        return expr, False
    if isinstance(expr, InExpr):
        operand, oc = fold(expr.operand)
        pairs = [fold(choice) for choice in expr.choices]
        if oc or any(changed for _, changed in pairs):
            choices = tuple(e for e, _ in pairs)
            return InExpr(operand, choices, expr.negated), True
        return expr, False
    if isinstance(expr, FunctionCall):
        pairs = [fold(arg) for arg in expr.args]
        if any(changed for _, changed in pairs):
            args = tuple(e for e, _ in pairs)
            return FunctionCall(expr.name, args), True
        return expr, False
    return expr, False


def _constant_truth(
    expr: Expression, ctx: _PassContext
) -> Optional[bool]:
    """Effective boolean value of a variable-free expression."""
    from ..sparql.errors import ExpressionError, SparqlEvalError
    from ..sparql.functions import ebv

    try:
        value = ctx.fold_evaluator()._eval_expression(expr, {})
        return bool(ebv(value))
    except ExpressionError:
        return False  # an erroring FILTER rejects every solution
    except SparqlEvalError:
        return None  # unknown function: leave for the real evaluator


def _contains_exists(expr: Expression) -> bool:
    if isinstance(expr, ExistsExpr):
        return True
    if isinstance(expr, (OrExpr, AndExpr)):
        return any(_contains_exists(o) for o in expr.operands)
    if isinstance(expr, (NotExpr, NegExpr)):
        return _contains_exists(expr.operand)
    if isinstance(expr, (CompareExpr, ArithExpr)):
        return _contains_exists(expr.left) or _contains_exists(
            expr.right
        )
    if isinstance(expr, InExpr):
        return _contains_exists(expr.operand) or any(
            _contains_exists(c) for c in expr.choices
        )
    if isinstance(expr, FunctionCall):
        return any(_contains_exists(a) for a in expr.args)
    return False


# ---------------------------------------------------------------------------
# Pass: unsatisfiable-pattern pruning (SP014)
# ---------------------------------------------------------------------------


def prune_unsatisfiable(root: PlanNode, ctx: _PassContext) -> PlanNode:
    """Prune patterns that provably yield no solutions.

    * contradictory FILTER conjunctions over one variable
      (``?x > 5 && ?x < 3``) — reusing the SP007 interval machinery;
    * scans whose concrete predicate (or ``rdf:type`` class) has zero
      triples in the statistics snapshot — sound because statistics are
      collected from the very graph the query will run against;
    * empty UNION branches are dropped; a join containing an empty
      element is itself empty; ``OPTIONAL {}``-empty is the identity.

    Aggregation is the one non-monotone modifier: an empty input still
    produces a row (``COUNT() = 0``), so emptiness is never propagated
    through :class:`AggregateNode`.
    """

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, JoinNode):
            elements = [rewrite(e) for e in node.elements]
            conjuncts: List[Expression] = []
            for element in elements:
                if isinstance(element, FilterNode):
                    conjuncts.extend(_flatten_and(element.expression))
                elif isinstance(element, BGPNode):
                    for expr in element.pushed:
                        conjuncts.extend(_flatten_and(expr))
                    for scan in element.scans:
                        for expr in scan.filters:
                            conjuncts.extend(_flatten_and(expr))
            for conjunct in conjuncts:
                if _statically_false(conjunct):
                    ctx.diag(
                        "SP014",
                        "group pruned: FILTER "
                        f"{render_expression(conjunct)} is always "
                        "false",
                    )
                    return EmptyNode("always-false FILTER")
            contradiction = _interval_contradiction(conjuncts)
            if contradiction is not None:
                ctx.diag(
                    "SP014",
                    f"group pruned: contradictory bounds on "
                    f"?{contradiction}",
                )
                return EmptyNode(
                    f"contradictory bounds on ?{contradiction}"
                )

            pruned: List[PlanNode] = []
            for element in elements:
                if isinstance(element, LeftJoinNode) and isinstance(
                    element.group, EmptyNode
                ):
                    # left join with an empty right side is the identity
                    continue
                pruned.append(element)
            for element in pruned:
                if isinstance(element, EmptyNode):
                    return element
                if isinstance(element, (BGPNode, SubSelectNode)):
                    empty = _element_emptiness(element, ctx)
                    if empty is not None:
                        return empty
            return JoinNode(pruned)

        if isinstance(node, UnionNode):
            branches = []
            for branch in node.branches:
                branch = rewrite(branch)
                if isinstance(branch, EmptyNode):
                    ctx.diag(
                        "SP014",
                        "empty UNION branch pruned "
                        f"({branch.reason})",
                    )
                    continue
                branches.append(branch)
            if not branches:
                return EmptyNode("all UNION branches empty")
            if len(branches) == 1:
                return branches[0]
            return UnionNode(branches)

        return _rewrite_children(node, rewrite)

    return rewrite(root)


def _element_emptiness(
    element: PlanNode, ctx: _PassContext
) -> Optional[EmptyNode]:
    if isinstance(element, BGPNode):
        if ctx.stats is None:
            return None
        from ..rdf.namespace import RDF
        from ..rdf.terms import URIRef

        for scan in element.scans:
            predicate = scan.pattern.predicate
            if isinstance(predicate, Variable):
                continue
            if str(predicate).startswith("bif:"):
                continue
            if ctx.stats.predicate_count(predicate) == 0:
                ctx.diag(
                    "SP014",
                    f"pattern pruned: predicate <{predicate}> has no "
                    "triples in the data",
                )
                return EmptyNode(f"no triples for <{predicate}>")
            if (
                predicate == RDF.type
                and isinstance(scan.pattern.object, URIRef)
                and ctx.stats.class_counts.get(
                    scan.pattern.object, 0
                ) == 0
            ):
                ctx.diag(
                    "SP014",
                    "pattern pruned: class "
                    f"<{scan.pattern.object}> has no instances",
                )
                return EmptyNode(
                    f"no instances of <{scan.pattern.object}>"
                )
        return None
    if isinstance(element, SubSelectNode):
        if _plan_certainly_empty(element.plan):
            return EmptyNode("empty sub-select")
    return None


def _plan_certainly_empty(node: PlanNode) -> bool:
    """True when a modifier chain provably yields zero rows."""
    if isinstance(node, EmptyNode):
        return True
    if isinstance(node, AggregateNode):
        return False  # COUNT over nothing still yields one row
    if isinstance(
        node, (ProjectNode, DistinctNode, OrderNode, SliceNode)
    ):
        return _plan_certainly_empty(node.children()[0])
    return False


# ---------------------------------------------------------------------------
# Pass: BGP merging
# ---------------------------------------------------------------------------


def merge_bgps(root: PlanNode, ctx: _PassContext) -> PlanNode:
    """Merge *adjacent* BGPs into one conjunctive block.

    Adjacent basic graph patterns form a single conjunction (joins of
    triple patterns commute), so merging them gives the scan reorderer
    a larger search space. Non-adjacent BGPs are left alone: an
    intervening OPTIONAL / BIND is order-sensitive, and even a UNION
    may bind a ``bif:contains`` subject the later BGP depends on.
    """

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, JoinNode):
            elements: List[PlanNode] = []
            for element in node.elements:
                element = rewrite(element)
                if (
                    isinstance(element, BGPNode)
                    and elements
                    and isinstance(elements[-1], BGPNode)
                ):
                    previous = elements[-1]
                    elements[-1] = BGPNode(
                        previous.scans + element.scans,
                        previous.pushed + element.pushed,
                    )
                    continue
                elements.append(element)
            return JoinNode(elements)
        return _rewrite_children(node, rewrite)

    return rewrite(root)


# ---------------------------------------------------------------------------
# Pass: FILTER pushdown (SP011)
# ---------------------------------------------------------------------------


def push_filters(root: PlanNode, ctx: _PassContext) -> PlanNode:
    """Move group-level FILTERs into the BGP binding their variables.

    Sound when every variable of the filter is *certainly* bound by one
    BGP of the same group: once bound, no later element can rebind a
    variable (joins merge compatibly, BIND refuses rebinding), so the
    filter's value for a solution is fixed as soon as that BGP has run.
    Filters containing EXISTS (which reads the whole current binding)
    or boundness-sensitive calls (BOUND / COALESCE) stay at group
    level.
    """

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, JoinNode):
            elements = [rewrite(e) for e in node.elements]
            bgps = [e for e in elements if isinstance(e, BGPNode)]
            kept: List[PlanNode] = []
            for element in elements:
                if not isinstance(element, FilterNode):
                    kept.append(element)
                    continue
                expr = element.expression
                if _contains_exists(expr) or any(
                    call.name in _BOUNDNESS_SENSITIVE
                    for call in _function_calls(expr)
                ):
                    kept.append(element)
                    continue
                variables = _expr_vars(expr)
                if not variables:
                    kept.append(element)  # fold_constants' business
                    continue
                target = next(
                    (
                        bgp for bgp in bgps
                        if variables <= bgp.variables()
                    ),
                    None,
                )
                if target is None:
                    kept.append(element)
                    continue
                target.pushed.append(expr)
                ctx.diag(
                    "SP011",
                    f"FILTER {render_expression(expr)} pushed into "
                    "the graph pattern binding "
                    + ", ".join(f"?{v}" for v in sorted(variables)),
                )
            return JoinNode(kept)
        return _rewrite_children(node, rewrite)

    return rewrite(root)


# ---------------------------------------------------------------------------
# Pass: selectivity-based reordering (SP012 / SP013)
# ---------------------------------------------------------------------------


def reorder_scans(root: PlanNode, ctx: _PassContext) -> PlanNode:
    """Order scans (and commutative join elements) by selectivity.

    Within a BGP, scans are greedily ordered cheapest-first under the
    accumulating set of bound variables (estimates from
    :class:`GraphStatistics`, falling back to a bound-position count).
    ``bif:contains`` is a constraint, not a scan: it is only eligible
    once its subject is bound. Maximal runs of join-commutative
    elements (BGP / VALUES / sub-select / UNION / GRAPH) are reordered
    the same way; OPTIONAL and BIND are order barriers.

    Sound because joins of those elements commute — only the result
    *order* changes, never the multiset of solutions.
    """

    def visit(node: PlanNode, bound: Set[str]) -> PlanNode:
        if isinstance(node, JoinNode):
            return _reorder_join(node, bound, ctx, visit)
        if isinstance(node, BGPNode):
            return _reorder_bgp(node, bound, ctx)
        if isinstance(node, LeftJoinNode):
            return LeftJoinNode(visit(node.group, set(bound)))
        if isinstance(node, UnionNode):
            return UnionNode(
                [visit(b, set(bound)) for b in node.branches]
            )
        if isinstance(node, GraphNode):
            inner = set(bound)
            if isinstance(node.target, Variable):
                inner.add(str(node.target))
            return GraphNode(node.target, visit(node.group, inner))
        if isinstance(node, SubSelectNode):
            # sub-selects are evaluated independently of outer bindings
            return SubSelectNode(node.query, visit(node.plan, set()))
        if isinstance(node, (ProjectNode, DistinctNode, OrderNode,
                             SliceNode, AggregateNode)):
            return _rewrite_children(
                node, lambda child: visit(child, set(bound))
            )
        return node

    return visit(root, set())


def _reorder_join(
    node: JoinNode,
    bound: Set[str],
    ctx: _PassContext,
    visit,
) -> PlanNode:
    commutative = (
        BGPNode, ValuesNode, SubSelectNode, UnionNode, GraphNode,
        EmptyNode,
    )
    result: List[PlanNode] = []
    run: List[PlanNode] = []
    running_bound = set(bound)

    def flush() -> None:
        nonlocal run, running_bound
        if len(run) > 1:
            ordered = _greedy_order(
                run,
                running_bound,
                lambda e, b: _quick_estimate(e, b, ctx),
                lambda e: _element_vars(e),
                ctx,
                kind="join elements",
            )
            if ordered != run:
                ctx.diag(
                    "SP012",
                    f"{len(run)} join elements reordered by "
                    "estimated selectivity",
                )
            run = ordered
        for element in run:
            element = visit(element, set(running_bound))
            running_bound |= element.certain_vars()
            result.append(element)
        run = []

    for element in node.elements:
        if isinstance(element, commutative):
            run.append(element)
        else:
            flush()
            element = visit(element, set(running_bound))
            running_bound |= element.certain_vars()
            result.append(element)
    flush()
    return JoinNode(result)


def _reorder_bgp(
    node: BGPNode, bound: Set[str], ctx: _PassContext
) -> BGPNode:
    scans = list(node.scans)
    if len(scans) > 1:
        ordered = _greedy_order(
            scans,
            set(bound),
            lambda s, b: _scan_estimate(s, b, ctx),
            lambda s: s.variables(),
            ctx,
            kind="triple patterns",
            defer=_scan_deferred,
        )
        if [s.pattern for s in ordered] != [s.pattern for s in scans]:
            ctx.diag(
                "SP012",
                f"{len(scans)} triple patterns reordered by "
                "estimated selectivity",
            )
        scans = ordered
    # attach pushed filters at the earliest scan where all their
    # variables are bound; whatever cannot attach stays on the BGP
    leftover: List[Expression] = []
    attached = [ScanStep(s.pattern, s.filters) for s in scans]
    for expr in node.pushed:
        variables = _expr_vars(expr)
        running = set(bound)
        placed = False
        for scan in attached:
            running |= scan.variables()
            if variables <= running:
                scan.filters.append(expr)
                placed = True
                break
        if not placed:
            leftover.append(expr)
    return BGPNode(attached, leftover)


def _scan_deferred(scan: ScanStep, bound: Set[str]) -> bool:
    """True when a scan may not run yet (magic predicate, subject
    unbound)."""
    pattern = scan.pattern
    if (
        not isinstance(pattern.predicate, Variable)
        and str(pattern.predicate) == _MAGIC
    ):
        subject = pattern.subject
        return isinstance(subject, Variable) and str(
            subject
        ) not in bound
    return False


def _greedy_order(
    items: list,
    bound: Set[str],
    estimate,
    variables_of,
    ctx: _PassContext,
    kind: str,
    defer=None,
) -> list:
    """Cheapest-first greedy ordering under an accumulating bound set.

    Prefers items connected to already-bound variables; warns (SP013)
    when it is forced to pick a disconnected item — a cartesian
    product.
    """
    remaining = list(items)
    ordered = []
    running = set(bound)
    while remaining:
        eligible = [
            item for item in remaining
            if defer is None or not defer(item, running)
        ]
        if not eligible:
            # e.g. bif:contains whose subject is never bound: keep the
            # written order and let the executor raise the same error
            # the naive path raises.
            ordered.extend(remaining)
            break
        connected = [
            item for item in eligible
            if not running or variables_of(item) & running
            or not variables_of(item)
        ]
        cartesian = not connected
        candidates = eligible if cartesian else connected
        best = min(
            candidates, key=lambda item: estimate(item, running)
        )
        if cartesian:
            ctx.diag(
                "SP013",
                f"cartesian product: one of the {kind} shares no "
                "variable with those placed before it",
            )
        ordered.append(best)
        running |= variables_of(best)
        remaining.remove(best)
    return ordered


def _element_vars(element: PlanNode) -> Set[str]:
    if isinstance(element, BGPNode):
        return set(element.variables())
    if isinstance(element, ValuesNode):
        return {str(v) for v in element.variables}
    if isinstance(element, SubSelectNode):
        variables = element.query.variables
        return {str(v) for v in variables}
    if isinstance(element, UnionNode):
        names: Set[str] = set()
        for branch in element.branches:
            for child in branch.children() if isinstance(
                branch, JoinNode
            ) else ():
                names |= _element_vars(child)
        return names
    if isinstance(element, GraphNode):
        names = set()
        if isinstance(element.target, Variable):
            names.add(str(element.target))
        if isinstance(element.group, JoinNode):
            for child in element.group.children():
                names |= _element_vars(child)
        return names
    return set(element.certain_vars())


def _scan_estimate(
    scan: ScanStep, bound: Set[str], ctx: _PassContext
) -> float:
    if ctx.stats is not None:
        return ctx.stats.scan_cardinality(scan.pattern, bound)
    # fallback: prefer patterns with more bound positions
    score = 0
    for position in (
        scan.pattern.subject,
        scan.pattern.predicate,
        scan.pattern.object,
    ):
        if not isinstance(position, Variable) or str(
            position
        ) in bound:
            score += 1
    return float(3 - score)


def _quick_estimate(
    element: PlanNode, bound: Set[str], ctx: _PassContext
) -> float:
    """Rough per-input-solution cost of a join element."""
    big = float(ctx.stats.total) if ctx.stats else 1e6
    if isinstance(element, EmptyNode):
        return 0.0
    if isinstance(element, ValuesNode):
        return float(len(element.rows))
    if isinstance(element, BGPNode):
        total = 1.0
        running = set(bound)
        for scan in _greedy_order(
            list(element.scans),
            set(bound),
            lambda s, b: _scan_estimate(s, b, ctx),
            lambda s: s.variables(),
            _PassContext(ctx.stats, ctx.functions, ctx.name),
            kind="triple patterns",
            defer=_scan_deferred,
        ):
            total *= max(_scan_estimate(scan, running, ctx), 0.001)
            running |= scan.variables()
        return total
    if isinstance(element, UnionNode):
        return sum(
            _quick_estimate(b, bound, ctx) for b in element.branches
        )
    if isinstance(element, JoinNode):
        total = 1.0
        running = set(bound)
        for child in element.elements:
            total *= max(_quick_estimate(child, running, ctx), 0.001)
            running |= child.certain_vars()
        return total
    if isinstance(element, GraphNode):
        return _quick_estimate(element.group, bound, ctx)
    return big


# ---------------------------------------------------------------------------
# Pass: redundant DISTINCT / ORDER elimination (SP015 / SP016)
# ---------------------------------------------------------------------------


def drop_redundant(root: PlanNode, ctx: _PassContext) -> PlanNode:
    """Drop DISTINCT / ORDER BY modifiers that cannot affect results.

    * duplicate ORDER BY keys: a second key over the same expression
      can never break a tie the first key left (SP016);
    * ORDER BY in a sub-select without LIMIT/OFFSET: the outer join
      consumes the rows as a multiset, so their order is unobservable
      (SP016);
    * DISTINCT over a grouped aggregation that projects all the
      group-by variables: aggregation already emits one row per group
      (SP015).
    """

    def rewrite(node: PlanNode, in_subselect: bool) -> PlanNode:
        if isinstance(node, OrderNode):
            conditions = []
            seen_exprs = []
            for condition in node.conditions:
                if condition.expression in seen_exprs:
                    ctx.diag(
                        "SP016",
                        "duplicate ORDER BY key "
                        f"{render_expression(condition.expression)} "
                        "removed",
                    )
                    continue
                seen_exprs.append(condition.expression)
                conditions.append(condition)
            child = rewrite(node.children()[0], in_subselect)
            if in_subselect:
                ctx.diag(
                    "SP016",
                    "ORDER BY in a sub-select without LIMIT/OFFSET "
                    "removed (row order is unobservable)",
                )
                return child
            return OrderNode(conditions, child)
        if isinstance(node, DistinctNode):
            child = node.children()[0]
            if _distinct_redundant(child):
                ctx.diag(
                    "SP015",
                    "DISTINCT removed: grouped aggregation already "
                    "emits unique rows",
                )
                return rewrite(child, in_subselect)
            return DistinctNode(rewrite(child, in_subselect))
        if isinstance(node, SubSelectNode):
            no_slice = not any(
                isinstance(n, SliceNode)
                for n in _modifier_chain(node.plan)
            )
            return SubSelectNode(
                node.query, rewrite(node.plan, no_slice)
            )
        if isinstance(node, SliceNode):
            # below a LIMIT/OFFSET the row order is observable again
            return SliceNode(
                node.limit, node.offset,
                rewrite(node.children()[0], False),
            )
        if isinstance(node, (JoinNode, UnionNode, LeftJoinNode,
                             GraphNode, ProjectNode, AggregateNode)):
            return _rewrite_children(
                node, lambda child: rewrite(child, False)
                if isinstance(node, (JoinNode, UnionNode, LeftJoinNode,
                                     GraphNode))
                else rewrite(child, in_subselect)
            )
        return node

    return rewrite(root, False)


def _modifier_chain(node: PlanNode) -> List[PlanNode]:
    chain: List[PlanNode] = []
    while isinstance(
        node, (SliceNode, DistinctNode, ProjectNode, OrderNode,
               AggregateNode)
    ):
        chain.append(node)
        node = node.children()[0]
    return chain


def _distinct_redundant(node: PlanNode) -> bool:
    """True when the rows under a DISTINCT are already unique."""
    if not isinstance(node, ProjectNode):
        return False
    child = node.child
    if not isinstance(child, AggregateNode) or not child.grouped:
        return False
    query = child.query
    group_vars: Set[str] = set()
    for expr in query.group_by:
        if isinstance(expr, TermExpr) and isinstance(
            expr.term, Variable
        ):
            group_vars.add(str(expr.term))
        else:
            return False
    aliases = {str(agg.alias) for agg in query.aggregates}
    projected = {str(v) for v in node.variables}
    # every group key must survive projection, and nothing beyond keys
    # and aggregate aliases may be projected
    return group_vars <= projected and projected <= (
        group_vars | aliases
    )


# ---------------------------------------------------------------------------
# Cardinality estimation (always runs last)
# ---------------------------------------------------------------------------


def estimate(root: PlanNode, ctx: _PassContext) -> PlanNode:
    """Annotate every node with estimated output rows (``est_rows``)."""
    if ctx.stats is None:
        return root
    _estimate(root, 1.0, set(), ctx.stats)
    return root


def _estimate(
    node: PlanNode,
    in_rows: float,
    bound: Set[str],
    stats: GraphStatistics,
) -> Tuple[float, Set[str]]:
    if isinstance(node, BGPNode):
        rows = in_rows
        running = set(bound)
        for scan in node.scans:
            rows *= max(
                stats.scan_cardinality(scan.pattern, running), 0.0
            )
            for expr in scan.filters:
                rows *= stats.filter_selectivity(expr)
            scan.est_rows = rows
            running |= scan.variables()
        for expr in node.pushed:
            rows *= stats.filter_selectivity(expr)
        node.est_rows = rows
        return rows, running
    if isinstance(node, JoinNode):
        rows = in_rows
        running = set(bound)
        for element in node.elements:
            rows, running = _estimate(element, rows, running, stats)
        node.est_rows = rows
        return rows, running
    if isinstance(node, FilterNode):
        rows = in_rows * stats.filter_selectivity(node.expression)
        node.est_rows = rows
        return rows, set(bound)
    if isinstance(node, LeftJoinNode):
        inner, _ = _estimate(node.group, in_rows, set(bound), stats)
        rows = max(in_rows, inner)
        node.est_rows = rows
        return rows, set(bound)
    if isinstance(node, UnionNode):
        rows = 0.0
        certain: Optional[Set[str]] = None
        for branch in node.branches:
            branch_rows, branch_bound = _estimate(
                branch, in_rows, set(bound), stats
            )
            rows += branch_rows
            certain = (
                branch_bound if certain is None
                else certain & branch_bound
            )
        node.est_rows = rows
        return rows, set(bound) | (certain or set())
    if isinstance(node, ExtendNode):
        node.est_rows = in_rows
        return in_rows, set(bound) | {str(node.variable)}
    if isinstance(node, ValuesNode):
        rows = in_rows * max(1, len(node.rows))
        node.est_rows = rows
        return rows, set(bound) | {str(v) for v in node.variables}
    if isinstance(node, SubSelectNode):
        inner, _ = _estimate(node.plan, 1.0, set(), stats)
        rows = in_rows * max(inner, 0.0)
        node.est_rows = rows
        projected = {str(v) for v in node.query.variables}
        return rows, set(bound) | projected
    if isinstance(node, GraphNode):
        inner_bound = set(bound)
        if isinstance(node.target, Variable):
            inner_bound.add(str(node.target))
        rows, running = _estimate(
            node.group, in_rows, inner_bound, stats
        )
        node.est_rows = rows
        return rows, running
    if isinstance(node, EmptyNode):
        node.est_rows = 0.0
        return 0.0, set(bound)
    if isinstance(node, ProjectNode):
        rows, running = _estimate(node.child, in_rows, bound, stats)
        node.est_rows = rows
        return rows, running
    if isinstance(node, DistinctNode):
        rows, running = _estimate(node.child, in_rows, bound, stats)
        node.est_rows = rows
        return rows, running
    if isinstance(node, OrderNode):
        rows, running = _estimate(node.child, in_rows, bound, stats)
        node.est_rows = rows
        return rows, running
    if isinstance(node, SliceNode):
        rows, running = _estimate(node.child, in_rows, bound, stats)
        rows = max(rows - node.offset, 0.0)
        if node.limit is not None:
            rows = min(rows, float(node.limit))
        node.est_rows = rows
        return rows, running
    if isinstance(node, AggregateNode):
        rows, running = _estimate(node.child, in_rows, bound, stats)
        if node.grouped:
            if node.query.group_by:
                rows = max(1.0, rows * 0.5)
            else:
                rows = 1.0
        node.est_rows = rows
        return rows, running
    if isinstance(node, ScanStep):  # pragma: no cover - via BGPNode
        return in_rows, set(bound)
    node.est_rows = in_rows
    return in_rows, set(bound)


def _rewrite_children(node: PlanNode, rewrite) -> PlanNode:
    """Rebuild a non-join node with rewritten children."""
    if isinstance(node, LeftJoinNode):
        return LeftJoinNode(rewrite(node.group))
    if isinstance(node, UnionNode):
        return UnionNode([rewrite(b) for b in node.branches])
    if isinstance(node, GraphNode):
        return GraphNode(node.target, rewrite(node.group))
    if isinstance(node, SubSelectNode):
        return SubSelectNode(node.query, rewrite(node.plan))
    if isinstance(node, ProjectNode):
        return ProjectNode(node.variables, rewrite(node.child))
    if isinstance(node, DistinctNode):
        return DistinctNode(rewrite(node.child))
    if isinstance(node, OrderNode):
        return OrderNode(node.conditions, rewrite(node.child))
    if isinstance(node, SliceNode):
        return SliceNode(node.limit, node.offset, rewrite(node.child))
    if isinstance(node, AggregateNode):
        return AggregateNode(node.query, rewrite(node.child))
    if isinstance(node, JoinNode):
        return JoinNode([rewrite(e) for e in node.elements])
    return node


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------

#: The default pass pipeline, in the order that composes best. Every
#: pass is sound in isolation, so any permutation is also correct —
#: property-tested in ``tests/analysis/test_plan_property.py``.
DEFAULT_PASSES: Tuple[Tuple[str, Pass], ...] = (
    ("fold_constants", fold_constants),
    ("prune_unsatisfiable", prune_unsatisfiable),
    ("merge_bgps", merge_bgps),
    ("push_filters", push_filters),
    ("reorder_scans", reorder_scans),
    ("drop_redundant", drop_redundant),
)

PASSES: Dict[str, Pass] = dict(DEFAULT_PASSES)


class PlannedQuery:
    """The outcome of planning one query."""

    def __init__(
        self,
        query: Query,
        plan: PlanNode,
        diagnostics: List[Diagnostic],
        passes: List[str],
    ) -> None:
        self.query = query
        self.plan = plan
        self.diagnostics = diagnostics
        self.passes = passes


class QueryPlanner:
    """Runs the pass pipeline over lowered queries.

    ``stats`` feeds the cardinality model (estimates are skipped
    without it); ``passes`` overrides the pipeline — a sequence of
    names from :data:`PASSES` or ``(name, fn)`` pairs. The final
    estimation step always runs.
    """

    def __init__(
        self,
        stats: Optional[GraphStatistics] = None,
        passes: Optional[Sequence] = None,
        functions: Optional[Dict[str, object]] = None,
    ) -> None:
        self.stats = stats
        self.functions = functions
        if passes is None:
            self.passes: List[Tuple[str, Pass]] = list(DEFAULT_PASSES)
        else:
            self.passes = [
                (p, PASSES[p]) if isinstance(p, str) else tuple(p)
                for p in passes
            ]

    def plan(
        self, query: Query, name: Optional[str] = None
    ) -> PlannedQuery:
        """Lower ``query`` and run the pipeline; the AST is untouched."""
        ctx = _PassContext(self.stats, self.functions, name)
        plan = lower_query(query)
        applied: List[str] = []
        for pass_name, pass_fn in self.passes:
            plan = pass_fn(plan, ctx)
            applied.append(pass_name)
        plan = estimate(plan, ctx)
        return PlannedQuery(query, plan, ctx.diagnostics, applied)


# ---------------------------------------------------------------------------
# EXPLAIN
# ---------------------------------------------------------------------------


class Explanation:
    """Everything ``repro explain`` reports for one query."""

    def __init__(
        self,
        planned: PlannedQuery,
        name: Optional[str] = None,
        row_count: Optional[int] = None,
        optimized_ms: Optional[float] = None,
        naive_ms: Optional[float] = None,
        generation: Optional[int] = None,
    ) -> None:
        self.planned = planned
        self.name = name
        self.row_count = row_count
        self.optimized_ms = optimized_ms
        self.naive_ms = naive_ms
        #: MVCC generation the evaluator pinned (None for plain graphs)
        self.generation = generation

    def render(self) -> str:
        lines: List[str] = []
        title = self.name or getattr(
            self.planned.query, "form", "query"
        )
        lines.append(f"== plan for {title} ==")
        lines.append(
            "passes: " + ", ".join(self.planned.passes)
        )
        if self.generation is not None:
            lines.append(
                f"pinned store generation: {self.generation}"
            )
        if self.planned.diagnostics:
            lines.append("rewrites:")
            for diag in self.planned.diagnostics:
                lines.append(f"  {diag.rule}: {diag.message}")
        else:
            lines.append("rewrites: (none)")
        lines.append("plan:")
        for line in render_plan(self.planned.plan).splitlines():
            lines.append("  " + line)
        if self.row_count is not None:
            timing = f"rows: {self.row_count}"
            if self.optimized_ms is not None:
                timing += f"  optimized: {self.optimized_ms:.1f} ms"
            if self.naive_ms is not None:
                timing += f"  naive: {self.naive_ms:.1f} ms"
                if self.optimized_ms:
                    speedup = self.naive_ms / self.optimized_ms
                    timing += f"  speedup: {speedup:.1f}x"
            lines.append(timing)
        return "\n".join(lines)


def explain(
    evaluator,
    query,
    name: Optional[str] = None,
    execute: bool = True,
    compare: bool = False,
) -> Explanation:
    """Plan (and optionally run) a query, collecting cardinalities.

    With ``execute`` the optimized plan runs and every node records its
    actual row count; with ``compare`` the naive path is also timed so
    the report shows the speedup.
    """
    from ..sparql.parser import parse_query

    if isinstance(query, str):
        query = parse_query(query)
    planned = evaluator._plan(query, name=name)
    row_count = None
    optimized_ms = None
    naive_ms = None
    if execute and isinstance(query, SelectQuery):
        # per-node wall-time accounting (PlanNode.actual_ms / the
        # plan.* spans) is normally off — EXPLAIN is the one consumer
        # that always wants it
        previous_timing = getattr(
            evaluator, "_time_plan_nodes", False
        )
        evaluator._time_plan_nodes = True
        try:
            start = time.perf_counter()
            rows = evaluator._exec_select_plan(query, planned.plan)
            optimized_ms = (time.perf_counter() - start) * 1000.0
        finally:
            evaluator._time_plan_nodes = previous_timing
        row_count = len(rows)
        if compare:
            start = time.perf_counter()
            evaluator._select_rows(query)
            naive_ms = (time.perf_counter() - start) * 1000.0
    return Explanation(
        planned,
        name=name,
        row_count=row_count,
        optimized_ms=optimized_ms,
        naive_ms=naive_ms,
        generation=getattr(evaluator, "generation", None),
    )
