"""SPARQL query linter.

Operates on the parsed AST (:mod:`repro.sparql.ast`) rather than the query
text — the analyzers see exactly the structures the evaluator executes, so
a clean lint means the evaluator agrees on every term, variable and
function the query touches. The linter never mutates the AST.

Rules (ids registered in :mod:`repro.analysis.rules`):

========  ==============================================================
SP001     projected variable never bound in the WHERE pattern
SP002     variable used in FILTER / ORDER BY / BIND / template but
          never bound
SP003     prefix resolved via the forgiving ``DEFAULT_PREFIXES`` fallback
SP004     predicate not in the published vocabulary (with "did you mean")
SP005     class not in the published vocabulary (with "did you mean")
SP006     disconnected pattern — a cartesian product the joins cannot fix
SP007     statically always-false filter (contradictory bounds)
SP008     ``bif:`` extension misuse (unknown name, wrong arity,
          non-geometry argument, non-constant pattern)
SP009     variable occurring exactly once — a likely typo
========  ==============================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.namespace import RDF
from ..rdf.terms import Literal, Term, URIRef, Variable
from ..sparql.ast import (
    AndExpr,
    ArithExpr,
    AskQuery,
    BGP,
    BindPattern,
    CompareExpr,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionCall,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    NegExpr,
    NotExpr,
    OptionalPattern,
    OrExpr,
    Query,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    UnionPattern,
    ValuesPattern,
)
from ..sparql.geo import try_parse_point
from ..sparql.parser import parse_query
from .diagnostics import Diagnostic, Span
from .rules import make
from .vocabulary import VocabularyIndex, _suggest

_RDF_TYPE = str(RDF.type)

#: ``bif:`` extension functions the engine implements: name → (min, max)
#: positional arity.
BIF_ARITY: Dict[str, Tuple[int, int]] = {
    "bif:st_intersects": (2, 3),
    "bif:st_distance": (2, 2),
    "bif:st_point": (2, 2),
    "bif:contains": (2, 2),
}

#: ``bif:`` names usable as magic predicates in triple position.
BIF_MAGIC_PREDICATES = frozenset({"bif:contains"})


class _Scope:
    """Per-(sub)query facts gathered in one walk over the pattern tree."""

    def __init__(self) -> None:
        self.bound: Set[str] = set()
        self.used: Set[str] = set()
        self.counts: Dict[str, int] = {}
        self.sp009_eligible: Set[str] = set()
        # connectivity nodes: each is a frozenset of variable names
        self.nodes: List[Set[str]] = []
        # filters grouped by their enclosing group (conjunctions)
        self.filter_groups: List[List[Expression]] = []

    def count(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1


class SparqlLinter:
    """Multi-rule linter over parsed SPARQL queries.

    ``vocabulary`` enables the SP004/SP005 vocabulary rules; without one
    those rules are skipped (the structural rules always run).
    """

    def __init__(
        self, vocabulary: Optional[VocabularyIndex] = None
    ) -> None:
        self.vocabulary = vocabulary

    @classmethod
    def default(cls) -> "SparqlLinter":
        """A linter armed with the deployment's full vocabulary."""
        from .vocabulary import default_vocabulary

        return cls(vocabulary=default_vocabulary())

    # ------------------------------------------------------------------
    def lint(
        self,
        query,
        source: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[Diagnostic]:
        """Lint a query string or a parsed AST; returns diagnostics."""
        if isinstance(query, str):
            source = query
            query = parse_query(query)
        diags: List[Diagnostic] = []
        self._check_fallback_prefixes(query, name, diags)
        self._lint_query(query, source, name, diags)
        return diags

    # ------------------------------------------------------------------
    # SP003 — recorded by the parser (see parser.Parser._expand_pname)
    # ------------------------------------------------------------------
    def _check_fallback_prefixes(self, query, name, diags) -> None:
        fallback = getattr(query, "fallback_prefixes", None) or {}
        for prefix in sorted(fallback):
            pos = fallback[prefix]
            span = Span(pos, pos + len(prefix) + 1) if pos >= 0 else None
            diags.append(make(
                "SP003",
                f"prefix {prefix + ':'!r} is not declared; it resolved "
                f"via the built-in default prefix table",
                span=span, source=name,
            ))

    # ------------------------------------------------------------------
    # Per-query scope
    # ------------------------------------------------------------------
    def _lint_query(self, query: Query, source, name, diags) -> None:
        scope = _Scope()
        if isinstance(query, SelectQuery):
            self._scan_group(query.where, scope, source, name, diags)
            self._scan_modifiers(query, scope)
            self._check_projection(query, scope, source, name, diags)
        elif isinstance(query, AskQuery):
            self._scan_group(query.where, scope, source, name, diags)
        elif isinstance(query, ConstructQuery):
            self._scan_group(query.where, scope, source, name, diags)
            for triple in query.template:
                for var in triple.variables():
                    scope.used.add(str(var))
                    scope.count(str(var))
        elif isinstance(query, DescribeQuery):
            if query.where is not None:
                self._scan_group(query.where, scope, source, name, diags)
            for term in query.terms:
                if isinstance(term, Variable):
                    scope.used.add(str(term))
                    scope.count(str(term))
        self._check_unbound_used(scope, source, name, diags)
        self._check_connectivity(scope, source, name, diags)
        self._check_filter_contradictions(scope, source, name, diags)
        self._check_single_use(query, scope, source, name, diags)

    def _scan_modifiers(self, query: SelectQuery, scope: _Scope) -> None:
        for condition in query.order_by:
            for var in _expr_vars(condition.expression):
                scope.used.add(var)
                scope.count(var)
                scope.sp009_eligible.add(var)
        for expr in query.group_by:
            for var in _expr_vars(expr):
                scope.used.add(var)
                scope.count(var)
        for agg in query.aggregates:
            if agg.argument is not None:
                for var in _expr_vars(agg.argument):
                    scope.used.add(var)
                    scope.count(var)

    # ------------------------------------------------------------------
    # Pattern walk
    # ------------------------------------------------------------------
    def _scan_group(self, group: GroupPattern, scope, source, name,
                    diags) -> None:
        filters: List[Expression] = []
        for element in group.elements:
            if isinstance(element, BGP):
                for triple in element.triples:
                    self._scan_triple(triple, scope, source, name, diags)
            elif isinstance(element, FilterPattern):
                filters.append(element.expression)
                self._scan_expression(
                    element.expression, scope, source, name, diags
                )
                variables = _expr_vars(element.expression)
                if variables:
                    scope.nodes.append(set(variables))
            elif isinstance(element, OptionalPattern):
                self._scan_group(element.group, scope, source, name, diags)
            elif isinstance(element, UnionPattern):
                for branch in element.branches:
                    self._scan_group(branch, scope, source, name, diags)
            elif isinstance(element, GraphGraphPattern):
                if isinstance(element.target, Variable):
                    target = str(element.target)
                    scope.bound.add(target)
                    scope.count(target)
                self._scan_group(element.group, scope, source, name, diags)
            elif isinstance(element, BindPattern):
                expr_vars = _expr_vars(element.expression)
                for var in expr_vars:
                    scope.used.add(var)
                    scope.count(var)
                    scope.sp009_eligible.add(var)
                alias = str(element.variable)
                scope.bound.add(alias)
                scope.count(alias)
                scope.sp009_eligible.add(alias)
                scope.nodes.append(set(expr_vars) | {alias})
                self._scan_expression(
                    element.expression, scope, source, name, diags,
                    count_vars=False,
                )
            elif isinstance(element, ValuesPattern):
                names = {str(v) for v in element.variables}
                for var in names:
                    scope.bound.add(var)
                    scope.count(var)
                    scope.sp009_eligible.add(var)
                scope.nodes.append(names)
            elif isinstance(element, SubSelectPattern):
                # a nested scope: lint independently, then its projection
                # binds in the outer scope
                self._lint_query(element.query, source, name, diags)
                projected = {str(v) for v in element.query.variables}
                for var in projected:
                    scope.bound.add(var)
                    scope.count(var)
                scope.nodes.append(projected)
            elif isinstance(element, GroupPattern):
                self._scan_group(element, scope, source, name, diags)
        if filters:
            scope.filter_groups.append(filters)

    def _scan_triple(self, triple, scope, source, name, diags) -> None:
        predicate = triple.predicate
        concrete_predicate = not isinstance(predicate, Variable)
        variables: Set[str] = set()
        for position, term in (
            ("subject", triple.subject),
            ("predicate", predicate),
            ("object", triple.object),
        ):
            if isinstance(term, Variable):
                var = str(term)
                variables.add(var)
                scope.bound.add(var)
                scope.count(var)
                if concrete_predicate or position == "subject":
                    scope.sp009_eligible.add(var)
        if variables:
            scope.nodes.append(variables)

        if isinstance(predicate, URIRef) and str(predicate).startswith(
            "bif:"
        ):
            self._check_magic_predicate(triple, source, name, diags)
            return
        if self.vocabulary is None:
            return
        if isinstance(predicate, URIRef) and not \
                self.vocabulary.knows_predicate(str(predicate)):
            diags.append(make(
                "SP004",
                f"predicate <{predicate}> is not in the known vocabulary",
                span=_term_span(source, predicate),
                suggestion=self.vocabulary.suggest_predicate(
                    str(predicate)
                ),
                source=name,
            ))
        if (
            isinstance(predicate, URIRef)
            and str(predicate) == _RDF_TYPE
            and isinstance(triple.object, URIRef)
            and not self.vocabulary.knows_class(str(triple.object))
        ):
            diags.append(make(
                "SP005",
                f"class <{triple.object}> is not in the known vocabulary",
                span=_term_span(source, triple.object),
                suggestion=self.vocabulary.suggest_class(
                    str(triple.object)
                ),
                source=name,
            ))

    # ------------------------------------------------------------------
    # Expressions (SP008 + usage tracking)
    # ------------------------------------------------------------------
    def _scan_expression(self, expr, scope, source, name, diags,
                         count_vars: bool = True) -> None:
        if count_vars:
            for var in _expr_vars(expr):
                scope.used.add(var)
                scope.count(var)
                scope.sp009_eligible.add(var)
        for call in _function_calls(expr):
            if call.name.startswith("bif:"):
                self._check_bif_call(call, source, name, diags)

    def _check_bif_call(self, call: FunctionCall, source, name,
                        diags) -> None:
        if call.name not in BIF_ARITY:
            local = call.name[4:]
            suggestion = _suggest(
                local, {key[4:] for key in BIF_ARITY}
            )
            diags.append(make(
                "SP008",
                f"unknown bif: function {call.name!r}",
                span=_text_span(source, call.name),
                suggestion=f"bif:{suggestion}" if suggestion else None,
                source=name,
            ))
            return
        low, high = BIF_ARITY[call.name]
        if not low <= len(call.args) <= high:
            expected = str(low) if low == high else f"{low}-{high}"
            diags.append(make(
                "SP008",
                f"{call.name} expects {expected} argument(s), "
                f"got {len(call.args)}",
                span=_text_span(source, call.name),
                source=name,
            ))
            return
        if call.name in ("bif:st_intersects", "bif:st_distance"):
            for arg in call.args[:2]:
                literal = _constant_literal(arg)
                if literal is not None and \
                        try_parse_point(literal.lexical) is None:
                    diags.append(make(
                        "SP008",
                        f"{call.name} argument {literal.lexical!r} is "
                        f"not a geometry (WKT POINT expected)",
                        span=_text_span(source, literal.lexical),
                        source=name,
                    ))
        if call.name == "bif:st_intersects" and len(call.args) == 3:
            literal = _constant_literal(call.args[2])
            if literal is not None and not literal.is_numeric:
                diags.append(make(
                    "SP008",
                    f"bif:st_intersects precision {literal.lexical!r} "
                    f"is not numeric",
                    span=_text_span(source, literal.lexical),
                    source=name,
                ))
        if call.name == "bif:contains":
            pattern = call.args[1]
            literal = _constant_literal(pattern)
            if literal is None or literal.is_numeric:
                diags.append(make(
                    "SP008",
                    "bif:contains pattern must be a constant string",
                    span=_text_span(source, "bif:contains"),
                    source=name,
                ))

    def _check_magic_predicate(self, triple, source, name, diags) -> None:
        predicate = str(triple.predicate)
        if predicate not in BIF_MAGIC_PREDICATES:
            suggestion = _suggest(
                predicate[4:], {p[4:] for p in BIF_MAGIC_PREDICATES}
            )
            diags.append(make(
                "SP008",
                f"{predicate!r} is not usable as a magic predicate",
                span=_text_span(source, predicate),
                suggestion=f"bif:{suggestion}" if suggestion else None,
                source=name,
            ))
            return
        obj = triple.object
        if not isinstance(obj, Literal) or obj.is_numeric:
            diags.append(make(
                "SP008",
                "bif:contains magic predicate needs a constant string "
                "pattern as object",
                span=_text_span(source, predicate),
                source=name,
            ))

    # ------------------------------------------------------------------
    # Scope-level rules
    # ------------------------------------------------------------------
    def _check_projection(self, query: SelectQuery, scope, source, name,
                          diags) -> None:
        aliases = {str(a.alias) for a in query.aggregates}
        for variable in query.variables:
            var = str(variable)
            scope.count(var)
            if var in aliases:
                continue
            scope.used.add(var)
            if var not in scope.bound:
                diags.append(make(
                    "SP001",
                    f"?{var} is projected but never bound in the "
                    f"pattern",
                    span=_var_span(source, var),
                    source=name,
                ))

    def _check_unbound_used(self, scope, source, name, diags) -> None:
        for var in sorted(scope.used - scope.bound):
            diags.append(make(
                "SP002",
                f"?{var} is used in an expression but never bound in "
                f"the pattern",
                span=_var_span(source, var),
                source=name,
            ))

    def _check_connectivity(self, scope, source, name, diags) -> None:
        components = _connected_components(scope.nodes)
        if len(components) <= 1:
            return
        summary = "; ".join(
            "{" + ", ".join(f"?{v}" for v in sorted(c)[:3]) + "}"
            for c in sorted(components, key=lambda c: sorted(c))
        )
        diags.append(make(
            "SP006",
            f"pattern splits into {len(components)} disconnected "
            f"variable groups ({summary}) — a cartesian product",
            source=name,
        ))

    def _check_filter_contradictions(self, scope, source, name,
                                     diags) -> None:
        for filters in scope.filter_groups:
            conjuncts: List[Expression] = []
            for expression in filters:
                conjuncts.extend(_flatten_and(expression))
            for conjunct in conjuncts:
                if _statically_false(conjunct):
                    diags.append(make(
                        "SP007",
                        "filter condition is always false (constant "
                        "comparison)",
                        source=name,
                    ))
            contradiction = _interval_contradiction(conjuncts)
            if contradiction is not None:
                diags.append(make(
                    "SP007",
                    f"contradictory bounds on ?{contradiction}: the "
                    f"filter conjunction can never hold",
                    span=_var_span(source, contradiction),
                    source=name,
                ))

    def _check_single_use(self, query, scope, source, name, diags) -> None:
        projected: Set[str] = set()
        if isinstance(query, SelectQuery):
            projected = {str(v) for v in query.variables}
        unbound_used = scope.used - scope.bound
        for var in sorted(scope.counts):
            if scope.counts[var] != 1 or var not in scope.sp009_eligible:
                continue
            if var in projected or var in unbound_used:
                continue  # already covered by SP001/SP002
            diags.append(make(
                "SP009",
                f"?{var} occurs exactly once — dead binding or typo",
                span=_var_span(source, var),
                source=name,
            ))


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------


def _expr_vars(expr: Expression) -> Set[str]:
    """All variable names mentioned in ``expr`` (EXISTS groups included)."""
    found: Set[str] = set()
    _collect_vars(expr, found)
    return found


def _collect_vars(expr: Expression, found: Set[str]) -> None:
    if isinstance(expr, TermExpr):
        if isinstance(expr.term, Variable):
            found.add(str(expr.term))
    elif isinstance(expr, (OrExpr, AndExpr)):
        for operand in expr.operands:
            _collect_vars(operand, found)
    elif isinstance(expr, (NotExpr, NegExpr)):
        _collect_vars(expr.operand, found)
    elif isinstance(expr, (CompareExpr, ArithExpr)):
        _collect_vars(expr.left, found)
        _collect_vars(expr.right, found)
    elif isinstance(expr, InExpr):
        _collect_vars(expr.operand, found)
        for choice in expr.choices:
            _collect_vars(choice, found)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            _collect_vars(arg, found)
    elif isinstance(expr, ExistsExpr):
        for triple_vars in _group_vars(expr.group):
            found.update(triple_vars)


def _group_vars(group: GroupPattern):
    for element in group.elements:
        if isinstance(element, BGP):
            for triple in element.triples:
                yield {str(v) for v in triple.variables()}
        elif isinstance(element, (OptionalPattern, GraphGraphPattern)):
            yield from _group_vars(element.group)
        elif isinstance(element, UnionPattern):
            for branch in element.branches:
                yield from _group_vars(branch)
        elif isinstance(element, GroupPattern):
            yield from _group_vars(element)


def _function_calls(expr: Expression) -> List[FunctionCall]:
    calls: List[FunctionCall] = []
    _collect_calls(expr, calls)
    return calls


def _collect_calls(expr: Expression, calls: List[FunctionCall]) -> None:
    if isinstance(expr, FunctionCall):
        calls.append(expr)
        for arg in expr.args:
            _collect_calls(arg, calls)
    elif isinstance(expr, (OrExpr, AndExpr)):
        for operand in expr.operands:
            _collect_calls(operand, calls)
    elif isinstance(expr, (NotExpr, NegExpr)):
        _collect_calls(expr.operand, calls)
    elif isinstance(expr, (CompareExpr, ArithExpr)):
        _collect_calls(expr.left, calls)
        _collect_calls(expr.right, calls)
    elif isinstance(expr, InExpr):
        _collect_calls(expr.operand, calls)
        for choice in expr.choices:
            _collect_calls(choice, calls)


def _constant_literal(expr: Expression) -> Optional[Literal]:
    if isinstance(expr, TermExpr) and isinstance(expr.term, Literal):
        return expr.term
    return None


def _flatten_and(expr: Expression) -> List[Expression]:
    if isinstance(expr, AndExpr):
        flattened: List[Expression] = []
        for operand in expr.operands:
            flattened.extend(_flatten_and(operand))
        return flattened
    return [expr]


def _statically_false(expr: Expression) -> bool:
    """True when ``expr`` is a constant comparison that evaluates false."""
    if not isinstance(expr, CompareExpr):
        return False
    left = _constant_term(expr.left)
    right = _constant_term(expr.right)
    if left is None or right is None:
        return False
    from ..sparql.errors import ExpressionError
    from ..sparql.functions import compare

    try:
        return not compare(expr.op, left, right)
    except ExpressionError:
        return False


def _constant_term(expr: Expression) -> Optional[Term]:
    if isinstance(expr, TermExpr) and not isinstance(expr.term, Variable):
        return expr.term
    return None


def _interval_contradiction(
    conjuncts: Sequence[Expression],
) -> Optional[str]:
    """Detect an empty numeric interval over one variable, e.g.
    ``?x > 5 && ?x < 3`` or ``?x = 1 && ?x = 2``; returns the variable."""
    lower: Dict[str, Tuple[float, bool]] = {}  # var → (bound, strict)
    upper: Dict[str, Tuple[float, bool]] = {}
    equal: Dict[str, float] = {}

    def tighten(var: str, op: str, value: float) -> Optional[str]:
        if op == "=":
            if var in equal and equal[var] != value:
                return var
            equal[var] = value
        elif op in (">", ">="):
            strict = op == ">"
            current = lower.get(var)
            if current is None or value > current[0] or (
                value == current[0] and strict
            ):
                lower[var] = (value, strict)
        elif op in ("<", "<="):
            strict = op == "<"
            current = upper.get(var)
            if current is None or value < current[0] or (
                value == current[0] and strict
            ):
                upper[var] = (value, strict)
        return None

    for conjunct in conjuncts:
        bound = _var_numeric_bound(conjunct)
        if bound is None:
            continue
        var, op, value = bound
        conflict = tighten(var, op, value)
        if conflict is not None:
            return conflict

    for var in set(lower) | set(upper) | set(equal):
        low = lower.get(var)
        high = upper.get(var)
        if var in equal:
            value = equal[var]
            if low is not None and (
                value < low[0] or (value == low[0] and low[1])
            ):
                return var
            if high is not None and (
                value > high[0] or (value == high[0] and high[1])
            ):
                return var
        if low is not None and high is not None:
            if low[0] > high[0]:
                return var
            if low[0] == high[0] and (low[1] or high[1]):
                return var
    return None


def _var_numeric_bound(
    expr: Expression,
) -> Optional[Tuple[str, str, float]]:
    """Match ``?v <op> number`` (either side); normalized to var-first."""
    if not isinstance(expr, CompareExpr) or expr.op == "!=":
        return None
    flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "="}
    left, right = expr.left, expr.right
    if isinstance(left, TermExpr) and isinstance(left.term, Variable):
        literal = _constant_literal(right)
        if literal is not None and literal.is_numeric:
            return str(left.term), expr.op, float(literal.value)
    if isinstance(right, TermExpr) and isinstance(right.term, Variable):
        literal = _constant_literal(left)
        if literal is not None and literal.is_numeric:
            return str(right.term), flip[expr.op], float(literal.value)
    return None


# ---------------------------------------------------------------------------
# Connectivity
# ---------------------------------------------------------------------------


def _connected_components(nodes: List[Set[str]]) -> List[Set[str]]:
    """Union-find over variable co-occurrence sets."""
    parent: Dict[str, str] = {}

    def find(item: str) -> str:
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(a: str, b: str) -> None:
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for variables in nodes:
        ordered = sorted(variables)
        if not ordered:
            continue
        parent.setdefault(ordered[0], ordered[0])
        for other in ordered[1:]:
            union(ordered[0], other)

    components: Dict[str, Set[str]] = {}
    for var in parent:
        components.setdefault(find(var), set()).add(var)
    return list(components.values())


# ---------------------------------------------------------------------------
# Span helpers — best-effort location of a term in the source text
# ---------------------------------------------------------------------------


def _text_span(source: Optional[str], needle: str) -> Optional[Span]:
    if not source or not needle:
        return None
    index = source.find(needle)
    if index < 0:
        return None
    return Span(index, index + len(needle))


def _var_span(source: Optional[str], name: str) -> Optional[Span]:
    if not source:
        return None
    for sigil in ("?", "$"):
        span = _text_span(source, sigil + name)
        if span is not None:
            return span
    return None


def _term_span(source: Optional[str], term: URIRef) -> Optional[Span]:
    span = _text_span(source, f"<{term}>")
    if span is not None:
        return span
    local = str(term)
    for sep in ("#", "/"):
        if sep in local:
            local = local.rsplit(sep, 1)[1]
            break
    return _text_span(source, local)
