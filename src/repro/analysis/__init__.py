"""Static analysis: lint declarative artifacts before anything executes.

The retrieval surface of the system is declarative — SPARQL queries,
D2R table maps, RDF vocabulary — and a typo in any of them fails
*silently* (the forgiving prefix fallback resolves misspelled prefixes,
an unknown predicate just matches zero triples, a bad mapping column
emits nothing). This package is the correctness gate in front of that:

* :class:`SparqlLinter` — multi-rule lint over the parsed AST;
* :class:`MappingLinter` — D2R table maps vs. the relational schema;
* :class:`ShapeChecker` — domain/range/cardinality validation of graphs;
* :func:`self_check` — all of the above over the paper's own artifacts
  (``repro lint --self-check``);
* :class:`QueryPlanner` — static algebra analysis and selectivity-driven
  rewrites behind ``Evaluator(optimize=True)`` and ``repro explain``;
* :class:`ConcurrencyAnalyzer` — CC-rule lock-discipline analysis over
  the repo's own Python source (``repro lint --concurrency``), with
  :class:`LockSanitizer` as its runtime complement (``repro sanitize``);
* :class:`StoreEffectAnalyzer` — EF-rule interprocedural read/write
  discipline for the quad-store (``repro lint --effects``), with
  :class:`StoreSanitizer` as its runtime complement
  (``repro sanitize --store``).
"""

from .concurrency import ConcurrencyAnalyzer, analyze_paths
from .effects import StoreEffectAnalyzer, analyze_effects
from .d2r_lint import MappingLinter
from .diagnostics import (
    AnalysisError,
    Diagnostic,
    DiagnosticReport,
    Severity,
    Span,
)
from .plan import (
    DEFAULT_PASSES,
    Explanation,
    PlannedQuery,
    QueryPlanner,
    explain,
)
from .rules import CATALOG_VERSION, RULES, Rule, rule
from .sanitizer import LockSanitizer, SanitizerReport
from .store_sanitizer import StoreReport, StoreSanitizer
from .self_check import (
    builtin_queries,
    extract_sparql_strings,
    lint_path,
    self_check,
)
from .shapes import DEFAULT_CARDINALITIES, ShapeChecker
from .sparql_lint import SparqlLinter
from .stats import GraphStatistics
from .vocabulary import (
    SUGGESTION_THRESHOLD,
    VocabularyIndex,
    default_vocabulary,
)

__all__ = [
    "AnalysisError",
    "CATALOG_VERSION",
    "ConcurrencyAnalyzer",
    "DEFAULT_CARDINALITIES",
    "DEFAULT_PASSES",
    "Diagnostic",
    "DiagnosticReport",
    "Explanation",
    "GraphStatistics",
    "LockSanitizer",
    "MappingLinter",
    "PlannedQuery",
    "QueryPlanner",
    "RULES",
    "Rule",
    "SUGGESTION_THRESHOLD",
    "SanitizerReport",
    "Severity",
    "ShapeChecker",
    "Span",
    "SparqlLinter",
    "StoreEffectAnalyzer",
    "StoreReport",
    "StoreSanitizer",
    "VocabularyIndex",
    "analyze_effects",
    "analyze_paths",
    "builtin_queries",
    "default_vocabulary",
    "explain",
    "extract_sparql_strings",
    "lint_path",
    "rule",
    "self_check",
]
