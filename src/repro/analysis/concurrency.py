"""Static concurrency-safety analyzer over the repo's own Python source.

The ROADMAP's next refactor — a concurrent MVCC quad-store serving
batch writers and query readers at once — lands on modules with wildly
different lock discipline: :mod:`repro.resolvers.resilience` and
:mod:`repro.obs` are carefully locked, :mod:`repro.rdf.graph` follows a
single-writer contract, and a future contributor can silently break
either. This module makes thread-safety a *checked* property, exactly
the way the SPARQL linter made the declarative surface checked: it
parses Python files with :mod:`ast`, reconstructs each class's lock
discipline, and emits the shared :class:`~repro.analysis.diagnostics.
Diagnostic` model under the ``CC*`` rule catalog.

Checked properties (see :mod:`repro.analysis.rules` for severities):

* **CC001** — an attribute written under a class's lock in one method
  but read or written outside that lock in another. Only attributes
  with at least one *guarded write* participate, so configuration
  fields set in ``__init__`` and read under a lock never fire.
* **CC002** — inconsistent nested lock acquisition order. Every nested
  ``with`` acquisition contributes an edge to an inter-module
  lock-order graph (lock identity is ``Class.attr`` / ``module:name``);
  any strongly-connected component is a potential deadlock cycle.
* **CC003** — blocking work while holding a lock: ``time`` functions,
  ``sleep``, ``Future.result()``, ``Thread.join()``, ``open()``,
  socket/urllib calls, and — the class of bug fixed in
  :class:`~repro.resolvers.resilience.TTLCache` — calls through
  *injected* attributes (``self._clock()``, ``self.on_progress(...)``:
  anything assigned from a constructor parameter is caller-supplied
  code of unknown cost and lock appetite).
* **CC004** — a lambda / nested function submitted to an executor that
  captures a local mutated in the enclosing scope: the closure reads
  shared state from worker threads without a guard.
* **CC005** — ``threading.Lock()`` created inside a regular function
  or method: a fresh lock per call guards nothing.
* **CC006** — manual ``lock.acquire()`` not immediately followed by a
  ``try/finally`` that releases it.
* **CC007** — nested ``with`` acquisition of the same non-reentrant
  ``threading.Lock`` attribute (guaranteed self-deadlock).
* **CC008** — a mutable class-body attribute (list/dict/set literal)
  mutated through ``self``: shared across every instance.
* **CC009** — ``Condition.wait()`` outside a ``while`` predicate loop
  (wakeups are spurious by contract).
* **CC010** — module-level mutable containers mutated inside functions
  of a module that imports ``threading``/``concurrent.futures``.

Suppressions are explicit and reviewable:

* a trailing ``# cc: allow=CC001,CC003`` (or bare ``# cc: allow``)
  comment suppresses the named rules on that line;
* a module docstring line ``Concurrency: <contract>`` declares the
  module's concurrency contract. ``single-threaded`` and ``immutable``
  disable the shared-state rules (CC001/CC004/CC008/CC010) for the
  whole module; ``single-writer`` keeps guarded-write checking but
  accepts lock-free *reads* (the :class:`repro.rdf.graph.Graph`
  contract); ``thread-safe`` (the default) checks everything.

The analyzer is intra-procedural by design — it tracks ``with`` blocks
on ``self.<lock>`` / module-level locks and does not chase calls. Its
runtime complement, :mod:`repro.analysis.sanitizer`, observes the
*actual* acquisition order of every lock under test and catches what
static analysis cannot.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .diagnostics import Diagnostic, Span
from .rules import make

__all__ = [
    "ConcurrencyAnalyzer",
    "LockOrderEdge",
    "ModuleContract",
    "analyze_paths",
]

#: Module docstring contract values (``Concurrency: <value>`` line).
CONTRACT_THREAD_SAFE = "thread-safe"
CONTRACT_SINGLE_WRITER = "single-writer"
CONTRACT_SINGLE_THREADED = "single-threaded"
CONTRACT_IMMUTABLE = "immutable"

_CONTRACTS = (
    CONTRACT_THREAD_SAFE,
    CONTRACT_SINGLE_WRITER,
    CONTRACT_SINGLE_THREADED,
    CONTRACT_IMMUTABLE,
)

#: Rules that check shared mutable state (disabled by a
#: ``single-threaded`` / ``immutable`` module contract).
_SHARED_STATE_RULES = ("CC001", "CC004", "CC008", "CC010")

_CONTRACT_RE = re.compile(
    r"^\s*Concurrency:\s*([a-z-]+)", re.MULTILINE
)
_PRAGMA_RE = re.compile(
    r"#\s*cc:\s*allow(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+))?"
)

#: Dotted call names that block (or read clocks) — forbidden under a
#: held lock. Matched after import-alias resolution.
_BLOCKING_CALLS = {
    "time.sleep",
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "socket.create_connection",
    "urllib.request.urlopen",
    "subprocess.run",
    "subprocess.check_output",
    "subprocess.check_call",
}

#: Dotted-prefixes that imply I/O under a lock.
_BLOCKING_PREFIXES = ("socket.", "urllib.", "requests.", "subprocess.")

#: Method calls on an attribute that count as *writes* to it.
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem",
    "clear", "add", "discard", "update", "setdefault",
    "move_to_end", "appendleft", "popleft", "sort", "reverse",
}

_LOCK_CTORS = {"Lock": "lock", "RLock": "rlock"}
_CONDITION_CTORS = {"Condition"}
_EXECUTOR_CTORS = {"ThreadPoolExecutor", "ProcessPoolExecutor"}

_CONSTRUCTORS = {"__init__", "__new__", "__post_init__", "__del__"}


# ----------------------------------------------------------------------
# Collected facts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockOrderEdge:
    """``held`` was held while ``acquired`` was acquired at ``span``."""

    held: str
    acquired: str
    source: str
    span: Span
    lineno: int


@dataclass
class ModuleContract:
    """The concurrency contract a module declares in its docstring."""

    name: str
    contract: str = CONTRACT_THREAD_SAFE

    @property
    def skip_shared_state(self) -> bool:
        return self.contract in (
            CONTRACT_SINGLE_THREADED, CONTRACT_IMMUTABLE
        )

    @property
    def reads_unguarded_ok(self) -> bool:
        return self.contract == CONTRACT_SINGLE_WRITER


@dataclass
class _Access:
    """One ``self.X`` access inside a method."""

    attr: str
    is_write: bool
    held: FrozenSet[str]
    span: Span
    lineno: int
    method: str


@dataclass
class _FileFacts:
    """Everything one file contributes to the whole-repo analysis."""

    name: str
    contract: ModuleContract
    diagnostics: List[Diagnostic] = field(default_factory=list)
    edges: List[LockOrderEdge] = field(default_factory=list)


# ----------------------------------------------------------------------
# Per-file analysis
# ----------------------------------------------------------------------
class _SourceFile:
    """Line-offset math and pragma lookup for one source file."""

    def __init__(self, text: str, name: str) -> None:
        self.text = text
        self.name = name
        self.line_starts = [0]
        for line in text.splitlines(keepends=True):
            self.line_starts.append(self.line_starts[-1] + len(line))
        self.pragmas = self._collect_pragmas(text)

    @staticmethod
    def _collect_pragmas(text: str) -> Dict[int, Optional[Set[str]]]:
        """``lineno -> allowed rule ids`` (``None`` = all rules)."""
        pragmas: Dict[int, Optional[Set[str]]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                pragmas[lineno] = None
            else:
                pragmas[lineno] = {
                    r.strip() for r in rules.split(",") if r.strip()
                }
        return pragmas

    def span(self, node: ast.AST) -> Span:
        start = (
            self.line_starts[node.lineno - 1] + node.col_offset
        )
        end_lineno = getattr(node, "end_lineno", None) or node.lineno
        end_col = getattr(node, "end_col_offset", None)
        if end_col is None:
            end = start
        else:
            end = self.line_starts[end_lineno - 1] + end_col
        return Span(start, max(end, start))

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        if lineno not in self.pragmas:
            return False
        allowed = self.pragmas[lineno]
        return allowed is None or rule_id in allowed


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return name in (
            "list", "dict", "set", "collections.OrderedDict",
            "collections.defaultdict", "collections.deque",
            "OrderedDict", "defaultdict", "deque",
        )
    return False


class _ImportMap:
    """Resolve local names back to dotted module paths."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        self.modules: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules.add(alias.name)
                    self.aliases[alias.asname or alias.name] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                self.modules.add(node.module)
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.aliases.get(head)
        if resolved is None:
            return dotted
        return f"{resolved}.{rest}" if rest else resolved

    @property
    def threaded(self) -> bool:
        """Does the module import threading machinery at all?"""
        return any(
            m == "threading" or m.startswith("concurrent")
            for m in self.modules
        )


def _lock_ctor_kind(
    call: ast.Call, imports: _ImportMap
) -> Optional[str]:
    """``"lock"`` / ``"rlock"`` / ``"condition"`` if ``call`` creates
    one, else ``None``."""
    resolved = imports.resolve(_dotted_name(call.func))
    if resolved in ("threading.Lock", "threading.RLock",
                    "threading.Condition"):
        short = resolved.rsplit(".", 1)[1]
        if short in _CONDITION_CTORS:
            return "condition"
        return _LOCK_CTORS[short]
    return None


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------
class ConcurrencyAnalyzer:
    """AST-based lock-discipline analysis with a shared order graph.

    ``analyze_source`` / ``analyze_path`` run every per-file rule;
    CC002 needs the union of lock-order edges across files, so callers
    analyzing a tree should use :meth:`analyze_paths` (or the
    module-level :func:`analyze_paths`) which appends the cross-file
    cycle diagnostics after the per-file passes.

    ``long_hold`` style runtime properties are out of scope here — the
    :mod:`repro.analysis.sanitizer` owns everything observable only at
    runtime.
    """

    def __init__(self) -> None:
        self._edges: List[LockOrderEdge] = []
        self.contracts: Dict[str, ModuleContract] = {}

    # -- entry points ---------------------------------------------------
    def analyze_source(
        self, text: str, name: str = "<input>"
    ) -> List[Diagnostic]:
        facts = self._analyze_file(text, name)
        self._edges.extend(facts.edges)
        self.contracts[name] = facts.contract
        return facts.diagnostics

    def analyze_path(self, path: Path) -> List[Diagnostic]:
        path = Path(path)
        if path.is_dir():
            diags: List[Diagnostic] = []
            for child in sorted(path.rglob("*.py")):
                diags.extend(self.analyze_path(child))
            return diags
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            return [make("SP000", f"cannot read file: {exc}",
                         source=str(path))]
        return self.analyze_source(text, name=str(path))

    def analyze_paths(
        self, paths: Iterable[Path]
    ) -> List[Diagnostic]:
        """Per-file rules over every path, then cross-file CC002."""
        diags: List[Diagnostic] = []
        for path in paths:
            diags.extend(self.analyze_path(Path(path)))
        diags.extend(self.order_graph_diagnostics())
        return diags

    # -- CC002: the lock-order graph ------------------------------------
    def order_graph_diagnostics(self) -> List[Diagnostic]:
        """Cycles in the accumulated (cross-file) lock-order graph."""
        adjacency: Dict[str, Set[str]] = {}
        for edge in self._edges:
            adjacency.setdefault(edge.held, set()).add(edge.acquired)
            adjacency.setdefault(edge.acquired, set())
        cyclic = _cyclic_nodes(adjacency)
        diags: List[Diagnostic] = []
        seen: Set[Tuple[str, str, str, int]] = set()
        for edge in self._edges:
            if edge.held in cyclic and edge.acquired in cyclic:
                key = (
                    edge.held, edge.acquired, edge.source, edge.lineno
                )
                if key in seen:
                    continue
                seen.add(key)
                diags.append(make(
                    "CC002",
                    f"acquiring {edge.acquired!r} while holding "
                    f"{edge.held!r} participates in a lock-order "
                    f"cycle; acquire locks in one global order",
                    span=edge.span,
                    source=edge.source,
                ))
        return diags

    # -- per-file machinery ---------------------------------------------
    def _analyze_file(self, text: str, name: str) -> _FileFacts:
        contract = ModuleContract(name)
        facts = _FileFacts(name=name, contract=contract)
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            facts.diagnostics.append(make(
                "SP000", f"cannot parse python source: {exc}",
                source=name,
            ))
            return facts

        docstring = ast.get_docstring(tree) or ""
        match = _CONTRACT_RE.search(docstring)
        if match and match.group(1) in _CONTRACTS:
            contract.contract = match.group(1)

        source = _SourceFile(text, name)
        imports = _ImportMap(tree)

        def emit(rule_id: str, message: str, node: ast.AST,
                 lineno: Optional[int] = None) -> None:
            if contract.skip_shared_state and (
                rule_id in _SHARED_STATE_RULES
            ):
                return
            line = lineno if lineno is not None else node.lineno
            if source.suppressed(rule_id, line):
                return
            span = getattr(node, "precomputed", None)
            if span is None:
                span = source.span(node)
            facts.diagnostics.append(make(
                rule_id, message, span=span, source=name,
            ))

        # module-level locks and mutable globals
        module_locks: Dict[str, str] = {}
        module_mutables: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(node.value, ast.Call):
                    kind = _lock_ctor_kind(node.value, imports)
                    if kind is not None:
                        module_locks[target.id] = kind
                        continue
                if _mutable_literal(node.value):
                    module_mutables.add(target.id)

        checker = _FunctionChecker(
            source=source,
            imports=imports,
            emit=emit,
            module_locks=module_locks,
            module_mutables=module_mutables,
            module_name=Path(name).stem,
            edges=facts.edges,
            contract=contract,
        )

        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                checker.check_class(node)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                checker.check_function(
                    node, cls=None, class_locks={},
                    injected=set(), class_mutables=set(),
                    conditions=set(),
                )
        checker.finish()
        return facts


def _cyclic_nodes(adjacency: Dict[str, Set[str]]) -> Set[str]:
    """Nodes on any cycle (Tarjan SCCs of size > 1, plus self-loops)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cyclic: Set[str] = set()

    def strongconnect(node: str) -> None:
        # iterative Tarjan: (node, iterator) frames
        work = [(node, iter(sorted(adjacency.get(node, ()))))]
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ, iter(sorted(adjacency.get(succ, ()))))
                    )
                    advanced = True
                    break
                if succ in on_stack:
                    low[current] = min(low[current], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    cyclic.update(component)
                elif current in adjacency.get(current, ()):
                    cyclic.add(current)

    for node in adjacency:
        if node not in index:
            strongconnect(node)
    return cyclic


# ----------------------------------------------------------------------
# Function-level walking
# ----------------------------------------------------------------------
class _FunctionChecker:
    """Walks classes and functions tracking the held-lock context."""

    def __init__(self, source, imports, emit, module_locks,
                 module_mutables, module_name, edges, contract):
        self.source = source
        self.imports = imports
        self.emit = emit
        self.module_locks = module_locks
        self.module_mutables = module_mutables
        self.module_name = module_name
        self.edges = edges
        self.contract = contract
        self._accesses: List[Tuple[str, _Access]] = []
        self._class_lock_kinds: Dict[Tuple[str, str], str] = {}

    # -- classes --------------------------------------------------------
    def check_class(self, cls: ast.ClassDef) -> None:
        methods = [
            n for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        class_locks: Dict[str, str] = {}
        conditions: Set[str] = set()
        injected: Set[str] = set()
        class_mutables: Set[str] = set()

        for node in cls.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and (
                        _mutable_literal(node.value)
                    ):
                        class_mutables.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.value is not None
                    and _mutable_literal(node.value)
                ):
                    class_mutables.add(node.target.id)

        for method in methods:
            params = set()
            if method.name in _CONSTRUCTORS:
                params = {
                    a.arg for a in (
                        method.args.posonlyargs
                        + method.args.args
                        + method.args.kwonlyargs
                    )
                    if a.arg != "self"
                }
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    attr = _is_self_attr(target)
                    if attr is None:
                        continue
                    if isinstance(node.value, ast.Call):
                        kind = _lock_ctor_kind(
                            node.value, self.imports
                        )
                        if kind == "condition":
                            conditions.add(attr)
                            continue
                        if kind is not None:
                            class_locks[attr] = kind
                            continue
                    if params and any(
                        isinstance(n, ast.Name) and n.id in params
                        for n in ast.walk(node.value)
                    ):
                        injected.add(attr)

        for attr, kind in class_locks.items():
            self._class_lock_kinds[(cls.name, attr)] = kind

        for method in methods:
            self.check_function(
                method, cls=cls.name, class_locks=class_locks,
                injected=injected, class_mutables=class_mutables,
                conditions=conditions,
            )

    # -- functions ------------------------------------------------------
    def check_function(self, func, cls, class_locks, injected,
                       class_mutables, conditions) -> None:
        in_ctor = cls is not None and func.name in _CONSTRUCTORS
        local_threads: Set[str] = set()
        local_executors: Set[str] = set()
        local_conditions: Set[str] = set(conditions)
        nested_defs: Dict[str, ast.AST] = {}
        local_writes: Set[str] = set()

        # pre-pass: local classification (threads, executors, nested
        # defs, written locals) — order-insensitive on purpose
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                value = node.value
                resolved = None
                if isinstance(value, ast.Call):
                    resolved = self.imports.resolve(
                        _dotted_name(value.func)
                    )
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        if isinstance(target, ast.Subscript) and (
                            isinstance(target.value, ast.Name)
                        ):
                            local_writes.add(target.value.id)
                        continue
                    local_writes.add(target.id)
                    if resolved == "threading.Thread":
                        local_threads.add(target.id)
                    elif resolved is not None and resolved.rsplit(
                        ".", 1
                    )[-1] in _EXECUTOR_CTORS:
                        local_executors.add(target.id)
                    elif resolved == "threading.Condition":
                        local_conditions.add(target.id)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    local_writes.add(node.target.id)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node is not func:
                nested_defs[node.name] = node
            elif isinstance(node, ast.withitem):
                ctx = node.context_expr
                if isinstance(ctx, ast.Call):
                    resolved = self.imports.resolve(
                        _dotted_name(ctx.func)
                    )
                    if (
                        resolved is not None
                        and resolved.rsplit(".", 1)[-1]
                        in _EXECUTOR_CTORS
                        and node.optional_vars is not None
                        and isinstance(
                            node.optional_vars, ast.Name
                        )
                    ):
                        local_executors.add(node.optional_vars.id)

        ctx = _WalkContext(
            checker=self, cls=cls, func=func, in_ctor=in_ctor,
            class_locks=class_locks, injected=injected,
            class_mutables=class_mutables,
            conditions=local_conditions, threads=local_threads,
            executors=local_executors, nested_defs=nested_defs,
            local_writes=local_writes,
        )
        ctx.walk_body(func.body, held=())

    # -- aggregation ----------------------------------------------------
    def record_access(self, cls: str, access: _Access) -> None:
        self._accesses.append((cls, access))

    def finish(self) -> None:
        """CC001 aggregation once every class has been walked."""
        guarded_writes: Dict[Tuple[str, str], Set[str]] = {}
        for cls, access in self._accesses:
            if access.is_write and access.held:
                guarded_writes.setdefault(
                    (cls, access.attr), set()
                ).update(access.held)
        for cls, access in self._accesses:
            guards = guarded_writes.get((cls, access.attr))
            if not guards:
                continue
            if access.held & guards:
                continue
            if (
                self.contract.reads_unguarded_ok
                and not access.is_write
            ):
                continue
            if self.source.suppressed("CC001", access.lineno):
                continue
            kind = "written" if access.is_write else "read"
            lock_list = ", ".join(sorted(guards))
            self.emit(
                "CC001",
                f"attribute {access.attr!r} is {kind} in "
                f"{access.method!r} without holding {lock_list} "
                f"(mutations of it are guarded elsewhere)",
                _SpanNode(access.span, access.lineno),
                lineno=access.lineno,
            )


class _SpanNode:
    """A pre-computed span masquerading as an AST node for emit()."""

    def __init__(self, span: Span, lineno: int) -> None:
        self._span = span
        self.lineno = lineno
        self.col_offset = 0
        self.end_lineno = lineno
        self.end_col_offset = 0
        self.precomputed = span


@dataclass
class _WalkContext:
    checker: _FunctionChecker
    cls: Optional[str]
    func: ast.AST
    in_ctor: bool
    class_locks: Dict[str, str]
    injected: Set[str]
    class_mutables: Set[str]
    conditions: Set[str]
    threads: Set[str]
    executors: Set[str]
    nested_defs: Dict[str, ast.AST]
    local_writes: Set[str]
    loop_depth: int = 0

    # -- lock identity --------------------------------------------------
    def lock_key(self, expr: ast.AST) -> Optional[Tuple[str, str]]:
        """``(key, kind)`` when ``expr`` denotes a known lock."""
        attr = _is_self_attr(expr)
        if attr is not None and attr in self.class_locks:
            return (
                f"{self.cls}.{attr}", self.class_locks[attr]
            )
        if isinstance(expr, ast.Name) and (
            expr.id in self.checker.module_locks
        ):
            return (
                f"{self.checker.module_name}:{expr.id}",
                self.checker.module_locks[expr.id],
            )
        return None

    # -- statement walking ----------------------------------------------
    def walk_body(
        self, stmts: Sequence[ast.stmt], held: Tuple[str, ...]
    ) -> None:
        for index, stmt in enumerate(stmts):
            self.walk_stmt(stmt, held, stmts, index)

    def walk_stmt(self, stmt, held, siblings, index) -> None:
        source = self.checker.source
        if isinstance(stmt, ast.With) or isinstance(
            stmt, ast.AsyncWith
        ):
            new_held = held
            for item in stmt.items:
                key = self.lock_key(item.context_expr)
                if key is None:
                    self.walk_expr(item.context_expr, new_held)
                    continue
                name, kind = key
                if name in new_held and kind == "lock":
                    self.checker.emit(
                        "CC007",
                        f"re-acquiring non-reentrant lock {name!r} "
                        f"already held on this path",
                        item.context_expr,
                    )
                for holder in new_held:
                    if holder != name:
                        self.checker.edges.append(LockOrderEdge(
                            held=holder,
                            acquired=name,
                            source=source.name,
                            span=source.span(item.context_expr),
                            lineno=item.context_expr.lineno,
                        ))
                new_held = new_held + (name,)
            self.walk_body(stmt.body, new_held)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run later; analyzed at submit sites
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self.loop_depth += 1
            body_is_loop = isinstance(stmt, ast.While)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.walk_expr(stmt.iter, held)
                self.walk_target(stmt.target, held)
            else:
                self.walk_expr(stmt.test, held, in_while=True)
            self.walk_body(stmt.body, held)
            self.walk_body(stmt.orelse, held)
            self.loop_depth -= 1
            del body_is_loop
            return
        if isinstance(stmt, ast.If):
            self.walk_expr(stmt.test, held)
            self.walk_body(stmt.body, held)
            self.walk_body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self.walk_body(stmt.body, held)
            for handler in stmt.handlers:
                self.walk_body(handler.body, held)
            self.walk_body(stmt.orelse, held)
            self.walk_body(stmt.finalbody, held)
            return
        if isinstance(stmt, ast.Expr):
            self.check_manual_acquire(stmt, siblings, index)
            self.walk_expr(stmt.value, held)
            return
        if isinstance(stmt, ast.Assign):
            self.walk_expr(stmt.value, held)
            for target in stmt.targets:
                self.walk_target(target, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self.walk_expr(stmt.value, held)
            self.walk_target(stmt.target, held, aug=True)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.walk_expr(stmt.value, held)
            self.walk_target(stmt.target, held)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self.walk_expr(stmt.value, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.walk_target(target, held)
            return
        # fall back: walk child expressions generically
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.walk_expr(child, held)
            elif isinstance(child, ast.stmt):
                self.walk_stmt(child, held, [child], 0)

    # -- CC006 ----------------------------------------------------------
    def check_manual_acquire(self, stmt, siblings, index) -> None:
        value = stmt.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "acquire"
        ):
            return
        if self.lock_key(value.func.value) is None:
            return
        next_stmt = (
            siblings[index + 1] if index + 1 < len(siblings) else None
        )
        if isinstance(next_stmt, ast.Try) and any(
            self._releases_lock(s, value.func.value)
            for s in next_stmt.finalbody
        ):
            return
        self.checker.emit(
            "CC006",
            "manual acquire() without an immediate try/finally "
            "release; prefer a with statement",
            value,
        )

    def _releases_lock(self, stmt, lock_expr) -> bool:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
                and ast.dump(node.func.value) == ast.dump(lock_expr)
            ):
                return True
        return False

    # -- targets (writes) ------------------------------------------------
    def walk_target(self, target, held, aug: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.walk_target(element, held, aug=aug)
            return
        attr = _is_self_attr(target)
        if attr is not None:
            self.record_self_access(target, attr, held, is_write=True)
            return
        if isinstance(target, ast.Subscript):
            inner = _is_self_attr(target.value)
            if inner is not None:
                self.record_self_access(
                    target.value, inner, held, is_write=True
                )
            elif isinstance(target.value, ast.Name):
                self.check_global_mutation(target.value, held)
            self.walk_expr(target.slice, held)
            return
        if isinstance(target, ast.Name):
            if aug:
                self.check_global_mutation(target, held)
            return
        if isinstance(target, ast.Attribute):
            # attribute write on something other than self: walk the
            # receiver for reads (x.y.z = ... reads x.y)
            self.walk_expr(target.value, held)

    # -- expressions -----------------------------------------------------
    def walk_expr(self, expr, held, in_while: bool = False) -> None:
        if expr is None:
            return
        for node in self._iter_nodes(expr):
            if isinstance(node, ast.Call):
                self.check_call(node, held, in_while=in_while)
            attr = _is_self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                # receiver of a mutating-method call is a write
                self.record_self_access(
                    node, attr, held, is_write=False
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
            ):
                pass  # global reads are fine

    def _iter_nodes(self, expr):
        """Walk an expression, skipping nested function/lambda bodies."""
        stack = [expr]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef,
                     ast.Lambda),
                ):
                    continue
                stack.append(child)

    # -- access recording ------------------------------------------------
    def record_self_access(
        self, node, attr: str, held, is_write: bool
    ) -> None:
        if self.cls is None or self.in_ctor:
            return
        if attr in self.class_locks:
            return
        source = self.checker.source
        self.checker.record_access(self.cls, _Access(
            attr=attr,
            is_write=is_write,
            held=frozenset(held),
            span=source.span(node),
            lineno=node.lineno,
            method=self.func.name,
        ))
        if is_write and attr in self.class_mutables:
            self.checker.emit(
                "CC008",
                f"class-level mutable attribute {attr!r} mutated "
                f"through an instance — state is shared across every "
                f"instance of {self.cls}",
                node,
            )

    def check_global_mutation(self, name_node, held) -> None:
        if name_node.id not in self.checker.module_mutables:
            return
        if held:
            return
        if not self.checker.imports.threaded:
            return
        self.checker.emit(
            "CC010",
            f"module-level mutable {name_node.id!r} mutated without "
            f"holding a lock in a module that uses threads",
            name_node,
        )

    # -- calls -----------------------------------------------------------
    def check_call(self, call: ast.Call, held,
                   in_while: bool = False) -> None:
        func = call.func
        dotted = _dotted_name(func)
        resolved = self.checker.imports.resolve(dotted)

        # CC005: lock construction inside a regular function
        kind = _lock_ctor_kind(call, self.checker.imports)
        if kind in ("lock", "rlock") and not self.in_ctor:
            self.checker.emit(
                "CC005",
                "lock created per-call guards nothing — create it "
                "once per instance (in __init__) or at module level",
                call,
            )

        # CC008 via mutating method on a class-level mutable; also a
        # write access for CC001 purposes
        if isinstance(func, ast.Attribute) and (
            func.attr in _MUTATING_METHODS
        ):
            receiver = func.value
            attr = _is_self_attr(receiver)
            if attr is not None:
                self.record_self_access(
                    receiver, attr, held, is_write=True
                )
            elif isinstance(receiver, ast.Name):
                self.check_global_mutation(receiver, held)

        # CC009: condition wait outside a while loop
        if isinstance(func, ast.Attribute) and func.attr == "wait":
            receiver_attr = _is_self_attr(func.value)
            is_condition = (
                receiver_attr is not None
                and receiver_attr in self.conditions
            ) or (
                isinstance(func.value, ast.Name)
                and func.value.id in self.conditions
            )
            if is_condition and self.loop_depth == 0:
                self.checker.emit(
                    "CC009",
                    "Condition.wait() outside a while loop — wakeups "
                    "are spurious; re-check the predicate in a loop",
                    call,
                )

        # CC004: closures submitted to executors
        if isinstance(func, ast.Attribute) and func.attr in (
            "submit", "map"
        ):
            receiver = func.value
            is_executor = (
                isinstance(receiver, ast.Name)
                and receiver.id in self.executors
            )
            if is_executor and call.args:
                self.check_submitted_closure(call.args[0])

        # CC003: blocking work while a lock is held
        if held:
            self.check_blocking(call, resolved)

    def check_submitted_closure(self, target: ast.AST) -> None:
        closure: Optional[ast.AST] = None
        if isinstance(target, ast.Lambda):
            closure = target
        elif isinstance(target, ast.Name) and (
            target.id in self.nested_defs
        ):
            closure = self.nested_defs[target.id]
        if closure is None:
            return
        body = (
            closure.body if isinstance(closure, ast.Lambda)
            else closure
        )
        params = set()
        args = closure.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            params.add(a.arg)
        captured_mutated = set()
        for node in ast.walk(
            body if isinstance(body, ast.AST) else closure
        ):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                name = node.id
                if name in params:
                    continue
                if name in self.local_writes and (
                    name not in self.executors
                ):
                    captured_mutated.add(name)
        if captured_mutated:
            names = ", ".join(sorted(captured_mutated))
            self.checker.emit(
                "CC004",
                f"closure submitted to an executor captures "
                f"mutable local(s) {names} written in the enclosing "
                f"scope — guard them or pass values as arguments",
                target,
            )

    def check_blocking(self, call: ast.Call, resolved) -> None:
        func = call.func
        if resolved in _BLOCKING_CALLS or (
            resolved is not None
            and resolved.startswith(_BLOCKING_PREFIXES)
        ):
            self.checker.emit(
                "CC003",
                f"blocking call {resolved}() while holding a lock",
                call,
            )
            return
        if resolved == "open":
            self.checker.emit(
                "CC003",
                "file open() while holding a lock — open outside "
                "the critical section",
                call,
            )
            return
        if isinstance(func, ast.Attribute):
            receiver_attr = _is_self_attr(func.value)
            # injected callable: self._clock(), self.on_progress(...)
            if (
                receiver_attr is not None
                and func.attr != receiver_attr
                and receiver_attr in self.injected
                and isinstance(func.value, ast.Attribute)
            ):
                pass  # self.X.method handled below
            if func.attr == "result":
                self.checker.emit(
                    "CC003",
                    "Future.result() while holding a lock blocks "
                    "every other acquirer until the future resolves",
                    call,
                )
                return
            if func.attr == "join" and (
                not call.args
                or (
                    isinstance(func.value, ast.Name)
                    and func.value.id in self.threads
                )
            ):
                self.checker.emit(
                    "CC003",
                    "thread join() while holding a lock",
                    call,
                )
                return
            # method on an injected object: self.inner.resolve(...)
            inner = _is_self_attr(func.value)
            if inner is not None and inner in self.injected:
                self.checker.emit(
                    "CC003",
                    f"call through injected attribute "
                    f"{inner!r} while holding a lock — caller-"
                    f"supplied code has unknown cost and may "
                    f"acquire locks of its own",
                    call,
                )
                return
        # direct injected callable: self._clock()
        direct = _is_self_attr(func)
        if direct is not None and direct in self.injected:
            self.checker.emit(
                "CC003",
                f"injected callable self.{direct}() invoked while "
                f"holding a lock — move the call outside the "
                f"critical section",
                call,
            )


# ----------------------------------------------------------------------
# Convenience entry point
# ----------------------------------------------------------------------
def analyze_paths(paths: Iterable[Path]) -> List[Diagnostic]:
    """One-shot analysis of files/directories with cross-file CC002."""
    return ConcurrencyAnalyzer().analyze_paths(paths)
