"""D2R mapping linter.

Checks every :class:`~repro.d2r.mapping.TableMap` against the actual
relational schema (:class:`repro.relational.database.Database`) *before*
a dump runs — the mapper itself only discovers a bad column name when it
hits the first row, and a misspelled column in a ``PropertyMap`` silently
emits nothing at all (``row.get`` returns ``None``).

Rules: DM001 unknown URI-pattern column, DM002 unknown mapped column,
DM003 link to unmapped table, DM004 unresolvable link target, DM005
duplicate URI pattern, DM006 datatype/column-type mismatch, DM007 table
missing from the schema, DM008 keyword split on a non-text column, DM009
constant URI pattern, DM010 lang+datatype conflict.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..d2r.mapping import D2RMapping, TableMap
from ..relational.database import Database
from ..relational.table import ColumnType, Table
from .diagnostics import Diagnostic
from .rules import make
from .vocabulary import _suggest

#: XSD datatypes each column type can faithfully serialize to.
_COMPATIBLE: Dict[ColumnType, frozenset] = {
    ColumnType.INTEGER: frozenset({
        "http://www.w3.org/2001/XMLSchema#integer",
        "http://www.w3.org/2001/XMLSchema#int",
        "http://www.w3.org/2001/XMLSchema#long",
        "http://www.w3.org/2001/XMLSchema#decimal",
        "http://www.w3.org/2001/XMLSchema#double",
        "http://www.w3.org/2001/XMLSchema#float",
        "http://www.w3.org/2001/XMLSchema#string",
        "http://www.w3.org/2001/XMLSchema#dateTime",
    }),
    ColumnType.REAL: frozenset({
        "http://www.w3.org/2001/XMLSchema#decimal",
        "http://www.w3.org/2001/XMLSchema#double",
        "http://www.w3.org/2001/XMLSchema#float",
        "http://www.w3.org/2001/XMLSchema#string",
    }),
    ColumnType.BOOLEAN: frozenset({
        "http://www.w3.org/2001/XMLSchema#boolean",
        "http://www.w3.org/2001/XMLSchema#string",
    }),
    ColumnType.TIMESTAMP: frozenset({
        "http://www.w3.org/2001/XMLSchema#integer",
        "http://www.w3.org/2001/XMLSchema#long",
        "http://www.w3.org/2001/XMLSchema#dateTime",
        "http://www.w3.org/2001/XMLSchema#string",
    }),
    # TEXT serializes to anything stringy but not to numerics/booleans
    ColumnType.TEXT: frozenset({
        "http://www.w3.org/2001/XMLSchema#string",
        "http://www.w3.org/2001/XMLSchema#anyURI",
        "http://www.w3.org/2001/XMLSchema#dateTime",
    }),
}


class MappingLinter:
    """Validates a :class:`D2RMapping` against a database schema."""

    def lint(
        self, mapping: D2RMapping, db: Database,
        name: Optional[str] = None,
    ) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        self._check_duplicate_patterns(mapping, name, diags)
        for table_name in sorted(mapping.table_maps):
            table_map = mapping.table_maps[table_name]
            source = name or f"mapping:{table_name}"
            if table_name not in db.tables:
                suggestion = _suggest(table_name, set(db.tables))
                diags.append(make(
                    "DM007",
                    f"table map {table_name!r} refers to a table "
                    f"missing from the schema",
                    suggestion=suggestion, source=source,
                ))
                continue
            table = db.tables[table_name]
            self._check_table_map(table_map, table, mapping, db, source,
                                  diags)
        return diags

    # ------------------------------------------------------------------
    def _check_duplicate_patterns(self, mapping, name, diags) -> None:
        seen: Dict[str, str] = {}
        for table_name in sorted(mapping.table_maps):
            template = mapping.table_maps[table_name].uri_pattern.template
            if template in seen:
                diags.append(make(
                    "DM005",
                    f"tables {seen[template]!r} and {table_name!r} share "
                    f"the URI pattern {template!r} — their resources "
                    f"collide",
                    source=name or f"mapping:{table_name}",
                ))
            else:
                seen[template] = table_name

    def _check_table_map(self, table_map: TableMap, table: Table,
                         mapping: D2RMapping, db: Database, source,
                         diags) -> None:
        pattern_columns = table_map.uri_pattern.columns()
        if not pattern_columns:
            diags.append(make(
                "DM009",
                f"URI pattern {table_map.uri_pattern.template!r} has no "
                f"placeholders: every row of {table_map.table!r} mints "
                f"the same subject",
                source=source,
            ))
        for column in pattern_columns:
            if not table.has_column(column):
                diags.append(make(
                    "DM001",
                    f"URI pattern {table_map.uri_pattern.template!r} "
                    f"names unknown column {column!r}",
                    suggestion=_suggest(column, set(table.column_names)),
                    source=source,
                ))

        for prop in table_map.properties:
            if not table.has_column(prop.column):
                diags.append(make(
                    "DM002",
                    f"property map for <{prop.predicate}> names unknown "
                    f"column {prop.column!r}",
                    suggestion=_suggest(
                        prop.column, set(table.column_names)
                    ),
                    source=source,
                ))
                continue
            if prop.lang is not None and prop.datatype is not None:
                diags.append(make(
                    "DM010",
                    f"property map for <{prop.predicate}> declares both "
                    f"lang {prop.lang!r} and datatype "
                    f"<{prop.datatype}> — the datatype wins and the "
                    f"language tag is dropped",
                    source=source,
                ))
            if prop.datatype is not None:
                column_type = table.column(prop.column).type
                compatible = _COMPATIBLE[column_type]
                if str(prop.datatype) not in compatible:
                    diags.append(make(
                        "DM006",
                        f"column {prop.column!r} has type "
                        f"{column_type.value} but the property map "
                        f"declares datatype <{prop.datatype}>",
                        source=source,
                    ))

        for link in table_map.links:
            if not table.has_column(link.column):
                diags.append(make(
                    "DM002",
                    f"link map for <{link.predicate}> names unknown "
                    f"column {link.column!r}",
                    suggestion=_suggest(
                        link.column, set(table.column_names)
                    ),
                    source=source,
                ))
            if link.target_table not in mapping:
                diags.append(make(
                    "DM003",
                    f"link {table_map.table}.{link.column} targets "
                    f"table {link.target_table!r} which has no table "
                    f"map",
                    suggestion=_suggest(
                        link.target_table, set(mapping.table_maps)
                    ),
                    source=source,
                ))
            if link.target_table not in db.tables:
                diags.append(make(
                    "DM004",
                    f"link {table_map.table}.{link.column} targets "
                    f"table {link.target_table!r} which is missing "
                    f"from the schema",
                    suggestion=_suggest(link.target_table,
                                        set(db.tables)),
                    source=source,
                ))
            elif db.tables[link.target_table].primary_key is None:
                diags.append(make(
                    "DM004",
                    f"link {table_map.table}.{link.column} targets "
                    f"table {link.target_table!r} which has no primary "
                    f"key to resolve rows by",
                    source=source,
                ))

        for split in table_map.keyword_splits:
            if not table.has_column(split.column):
                diags.append(make(
                    "DM002",
                    f"keyword split for <{split.predicate}> names "
                    f"unknown column {split.column!r}",
                    suggestion=_suggest(
                        split.column, set(table.column_names)
                    ),
                    source=source,
                ))
                continue
            column_type = table.column(split.column).type
            if column_type is not ColumnType.TEXT:
                diags.append(make(
                    "DM008",
                    f"keyword split over column {split.column!r} of "
                    f"type {column_type.value} — token splitting "
                    f"expects text",
                    source=source,
                ))
