"""Runtime lock sanitizer: observe every lock the code under test takes.

Concurrency: thread-safe

The static analyzer (:mod:`repro.analysis.concurrency`) proves
properties it can see in the AST; this module catches what it cannot —
the *actual* interleavings of a live run. While installed, it patches
``threading.Lock`` and ``threading.RLock`` so every lock created by the
code under test is wrapped in a recording proxy:

* each lock is named by its **creation site** (``file:lineno``), so all
  locks born on one line — e.g. every ``ResilientResolver._lock`` —
  share an identity, and an order inversion between two *instances* of
  the same class pair is still caught;
* each thread keeps a stack of held locks; acquiring ``B`` while
  holding ``A`` records the edge ``A → B``. The first acquisition that
  reverses a previously-seen edge is a **lock-order inversion** — the
  deterministic shadow of a probabilistic deadlock;
* hold times beyond ``long_hold_threshold`` are flagged (the runtime
  analogue of static CC003);
* counters are exported through the :mod:`repro.obs` metrics registry
  (``repro_sanitizer_*``) so sanitized test runs surface in the same
  exposition as production metrics.

Two deliberate exclusions keep the signal clean:

* nesting two locks from the *same* creation site is counted
  (``same_site_nestings``) but never treated as an inversion —
  ``concurrent.futures`` legitimately nests many per-``Future``
  condition locks, and a site cannot be ordered against itself;
* the sanitizer's own bookkeeping uses the **original** lock class
  captured at import time, so installing it never recurses.

Usage::

    sanitizer = LockSanitizer()
    with sanitizer.installed():
        run_threaded_workload()
    report = sanitizer.report()
    assert not report.inversions

or via the opt-in pytest fixture ``lock_sanitizer`` (see
``tests/conftest.py``), which fails the test on any inversion.

The ``enabled`` flag mirrors :class:`repro.obs.tracing.Tracer`: a
disabled sanitizer's ``installed()`` is a no-op context manager, so
call sites can keep the ``with`` structure unconditionally.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..obs import get_registry

__all__ = [
    "LockSanitizer",
    "SanitizerReport",
    "Inversion",
    "LongHold",
]

# The genuine factories, captured at import time. The wrappers call
# these, never ``threading.Lock`` (which may already be patched).
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


def _thread_name() -> str:
    """Current thread's name without ``threading.current_thread()``.

    ``current_thread()`` allocates a ``_DummyThread`` when called from
    a thread that has not finished bootstrapping (``Thread.start``
    acquires its started-Event lock *before* registering the thread in
    ``threading._active``) — and ``_DummyThread.__init__`` creates an
    Event, which would re-enter the patched lock factory recursively.
    Reading ``_active`` directly is a plain dict get under the GIL and
    allocates nothing.
    """
    ident = threading.get_ident()
    thread = threading._active.get(ident)  # type: ignore[attr-defined]
    return thread.name if thread is not None else f"thread-{ident}"


@dataclass(frozen=True)
class Inversion:
    """Edge ``first → second`` observed after ``second → first``."""

    first: str
    second: str
    thread: str

    def describe(self) -> str:
        return (
            f"lock-order inversion in {self.thread}: acquired "
            f"{self.second!r} while holding {self.first!r}, but the "
            f"opposite order was observed earlier"
        )


@dataclass(frozen=True)
class LongHold:
    """A lock held beyond the configured threshold."""

    name: str
    seconds: float
    thread: str

    def describe(self) -> str:
        return (
            f"{self.name!r} held for {self.seconds * 1000:.1f} ms "
            f"by {self.thread}"
        )


@dataclass
class SanitizerReport:
    """Everything one sanitized run observed."""

    acquisitions: int = 0
    contended: int = 0
    same_site_nestings: int = 0
    locks_created: int = 0
    inversions: List[Inversion] = field(default_factory=list)
    long_holds: List[LongHold] = field(default_factory=list)
    edges: Set[Tuple[str, str]] = field(default_factory=set)

    def render(self) -> str:
        lines = [
            f"locks created:      {self.locks_created}",
            f"acquisitions:       {self.acquisitions}",
            f"contended:          {self.contended}",
            f"order edges:        {len(self.edges)}",
            f"same-site nestings: {self.same_site_nestings}",
            f"inversions:         {len(self.inversions)}",
            f"long holds:         {len(self.long_holds)}",
        ]
        for inv in self.inversions:
            lines.append(f"  INVERSION {inv.describe()}")
        for hold in self.long_holds:
            lines.append(f"  LONG HOLD {hold.describe()}")
        return "\n".join(lines)


class LockSanitizer:
    """Wrap ``threading.Lock``/``RLock`` creation to record ordering.

    Parameters
    ----------
    enabled:
        A disabled sanitizer installs nothing; ``installed()`` becomes
        a no-op so the guard costs one attribute check.
    long_hold_threshold:
        Hold duration (seconds) beyond which a release is recorded as
        a long hold. ``None`` disables hold timing entirely.
    """

    def __init__(
        self,
        enabled: bool = True,
        long_hold_threshold: Optional[float] = 0.25,
    ) -> None:
        self.enabled = enabled
        self.long_hold_threshold = long_hold_threshold
        self._state_lock = _REAL_LOCK()
        self._held = threading.local()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._inversions: List[Inversion] = []
        self._long_holds: List[LongHold] = []
        self._inverted_pairs: Set[FrozenSet[str]] = set()
        self._acquisitions = 0
        self._contended = 0
        self._same_site = 0
        self._locks_created = 0
        self._installed = False
        registry = get_registry()
        self._acq_counter = registry.counter(
            "repro_sanitizer_acquisitions_total",
            "Lock acquisitions observed by the sanitizer",
        )
        self._inv_counter = registry.counter(
            "repro_sanitizer_inversions_total",
            "Lock-order inversions detected by the sanitizer",
        )
        self._hold_counter = registry.counter(
            "repro_sanitizer_long_holds_total",
            "Lock holds beyond the configured threshold",
        )
        self._contention_counter = registry.counter(
            "repro_sanitizer_contended_acquisitions_total",
            "Acquisitions that had to wait for another holder",
        )

    # -- installation ---------------------------------------------------
    @contextmanager
    def installed(self) -> Iterator["LockSanitizer"]:
        """Patch the ``threading`` factories for the ``with`` body."""
        if not self.enabled or self._installed:
            yield self
            return
        previous_lock = threading.Lock
        previous_rlock = threading.RLock
        threading.Lock = self._make_lock  # type: ignore[assignment]
        threading.RLock = self._make_rlock  # type: ignore[assignment]
        self._installed = True
        try:
            yield self
        finally:
            threading.Lock = previous_lock  # type: ignore[assignment]
            threading.RLock = previous_rlock  # type: ignore[assignment]
            self._installed = False

    def _creation_site(self) -> str:
        # two frames up: _make_lock/_make_rlock -> caller
        frame = sys._getframe(2)
        return f"{frame.f_code.co_filename}:{frame.f_lineno}"

    def _make_lock(self):
        with self._state_lock:
            self._locks_created += 1
        return _SanitizedLock(
            self, _REAL_LOCK(), self._creation_site(), reentrant=False
        )

    def _make_rlock(self):
        with self._state_lock:
            self._locks_created += 1
        return _SanitizedLock(
            self, _REAL_RLOCK(), self._creation_site(), reentrant=True
        )

    # -- recording (called from the wrappers) ---------------------------
    def _stack(self) -> List[Tuple[str, int]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquired(
        self, name: str, lock_id: int, contended: bool
    ) -> None:
        stack = self._stack()
        thread = _thread_name()
        new_inversions = 0
        with self._state_lock:
            self._acquisitions += 1
            if contended:
                self._contended += 1
            for held_name, held_id in stack:
                if held_id == lock_id:
                    continue  # RLock re-entry: not a new edge
                if held_name == name:
                    self._same_site += 1
                    continue
                edge = (held_name, name)
                reverse = (name, held_name)
                self._edges[edge] = self._edges.get(edge, 0) + 1
                pair = frozenset(edge)
                if reverse in self._edges and (
                    pair not in self._inverted_pairs
                ):
                    self._inverted_pairs.add(pair)
                    self._inversions.append(Inversion(
                        first=held_name, second=name, thread=thread,
                    ))
                    new_inversions += 1
        self._acq_counter.inc()
        if contended:
            self._contention_counter.inc()
        if new_inversions:
            self._inv_counter.inc(new_inversions)
        stack.append((name, lock_id))

    def on_released(
        self, name: str, lock_id: int, held_for: Optional[float]
    ) -> None:
        stack = self._stack()
        # release order may not mirror acquire order; remove the
        # topmost matching entry
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][1] == lock_id:
                del stack[index]
                break
        threshold = self.long_hold_threshold
        if (
            held_for is not None
            and threshold is not None
            and held_for >= threshold
        ):
            with self._state_lock:
                self._long_holds.append(LongHold(
                    name=name,
                    seconds=held_for,
                    thread=_thread_name(),
                ))
            self._hold_counter.inc()

    # -- results --------------------------------------------------------
    def report(self) -> SanitizerReport:
        with self._state_lock:
            return SanitizerReport(
                acquisitions=self._acquisitions,
                contended=self._contended,
                same_site_nestings=self._same_site,
                locks_created=self._locks_created,
                inversions=list(self._inversions),
                long_holds=list(self._long_holds),
                edges=set(self._edges),
            )

    def reset(self) -> None:
        with self._state_lock:
            self._edges.clear()
            self._inversions.clear()
            self._long_holds.clear()
            self._inverted_pairs.clear()
            self._acquisitions = 0
            self._contended = 0
            self._same_site = 0
            self._locks_created = 0


class _SanitizedLock:
    """Proxy around a real lock that reports to the sanitizer.

    Implements the private ``_release_save`` / ``_acquire_restore`` /
    ``_is_owned`` trio so a wrapped RLock still works as the backing
    lock of ``threading.Condition``.
    """

    __slots__ = (
        "_sanitizer", "_lock", "name", "_reentrant",
        "_owner", "_depth", "_acquired_at",
    )

    def __init__(self, sanitizer, lock, name, reentrant) -> None:
        self._sanitizer = sanitizer
        self._lock = lock
        self.name = name
        self._reentrant = reentrant
        self._owner: Optional[int] = None
        self._depth = 0
        self._acquired_at: Optional[float] = None

    # -- core protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1):
        me = threading.get_ident()
        if self._reentrant and self._owner == me:
            # pure re-entry: delegate, bump depth, no edges
            acquired = self._lock.acquire(blocking, timeout)
            if acquired:
                self._depth += 1
            return acquired
        contended = False
        if blocking and timeout == -1:
            # probe first so contention is observable
            acquired = self._lock.acquire(False)
            if not acquired:
                contended = True
                acquired = self._lock.acquire(True, -1)
        else:
            acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = me
            self._depth = 1
            self._acquired_at = time.monotonic()
            self._sanitizer.on_acquired(
                self.name, id(self), contended
            )
        return acquired

    def release(self) -> None:
        me = threading.get_ident()
        if self._reentrant and self._owner == me and self._depth > 1:
            self._depth -= 1
            self._lock.release()
            return
        held_for = None
        if self._acquired_at is not None:
            held_for = time.monotonic() - self._acquired_at
        self._owner = None
        self._depth = 0
        self._acquired_at = None
        self._lock.release()
        self._sanitizer.on_released(self.name, id(self), held_for)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        return self._lock.locked()

    # -- Condition compatibility ---------------------------------------
    def _release_save(self):
        """Fully release (Condition.wait), remembering the depth."""
        state = (self._depth, self._acquired_at)
        depth = self._depth
        self._owner = None
        self._depth = 0
        self._acquired_at = None
        for _ in range(max(depth, 1)):
            self._lock.release()
        self._sanitizer.on_released(self.name, id(self), None)
        return state

    def _acquire_restore(self, state) -> None:
        depth, _ = state
        for _ in range(max(depth, 1)):
            self._lock.acquire()
        self._owner = threading.get_ident()
        self._depth = max(depth, 1)
        self._acquired_at = time.monotonic()
        self._sanitizer.on_acquired(self.name, id(self), False)

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def __repr__(self) -> str:
        kind = "RLock" if self._reentrant else "Lock"
        return f"<sanitized {kind} {self.name}>"
