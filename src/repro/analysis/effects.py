"""Interprocedural store-effect analyzer over the repo's own source.

The planned MVCC quad-store (see ROADMAP) needs every read and write of
:class:`repro.rdf.graph.Graph` / ``Dataset`` to flow through a
sanctioned API: generation-stamped snapshots for readers, the single
write lock for mutators. PR 5's concurrency analyzer only sees *locks*;
this pass sees *data flow*. It parses Python files with :mod:`ast`,
infers a per-function effect summary over the vocabulary

    ``graph-read``  ``graph-write``  ``index-mutate``
    ``stats-read``  ``io``  ``clock``

builds a module-level call graph, propagates summaries to a fixpoint
through internal call edges, and emits the shared
:class:`~repro.analysis.diagnostics.Diagnostic` model under the ``EF*``
rule catalog:

* **EF001** — direct mutation of the ``_spo``/``_pos``/``_osp`` hash
  indexes outside ``repro.rdf.graph`` (bypasses size/version/lock).
* **EF002** — a graph writer entangled with a *live* read generator:
  either a write call on a store while lexically inside a ``for`` loop
  iterating that same store's ``triples()``/``subjects()``/``__iter__``
  generator, or a bulk write (``add_all``) whose argument is a call to
  a lazy, io-performing producer — the store lock is then held across
  the whole external scan and a mid-stream failure leaves the store
  half-populated.
* **EF003** — mutation of a graph obtained from ``union_graph()`` /
  ``union()``: a derived merged copy, so the write never reaches the
  underlying stores. The sanctioned build-then-publish idiom — mutate
  the merged copy, then pass it to ``freeze()`` before it escapes — is
  recognized and not flagged.
* **EF004** — a bare statistics read (``len()``, ``count()``,
  ``predicate_statistics()``, ``GraphStatistics.collect``) on a store
  that the same function also writes, without going through the
  freshness-checked ``GraphStatistics.cached()`` (or the atomic
  ``Graph.insert``): the read/write straddle is not a consistent
  snapshot.
* **EF005** — a live reference to an internal index dict returned or
  stored (snapshot escape: the caller now shares mutable index state).
* **EF006** — a module whose functions perform direct graph writes
  without declaring a ``Graph-writes:`` line in its module docstring.
* **EF007** — ``io``/``clock`` effects inferred in a module whose
  docstring declares ``Effects: pure``.
* **EF008** — a function that (transitively) writes the store inside a
  module whose contract is ``Graph-writes: none``.
* **EF009** — ``Dataset.remove_graph()`` called as a bare statement:
  the boolean result is the only record of whether anything happened.
* **EF010** — a function docstring declares an ``Effects:`` summary
  that the inferred effects exceed.

Suppressions mirror the concurrency analyzer: a trailing
``# ef: allow=EF003`` (or bare ``# ef: allow``) comment suppresses the
named rules on that line, and the docstring contracts above are the
reviewable, per-module escape hatch.

Like :mod:`repro.analysis.concurrency`, the analyzer is zero-dependency
and best-effort: provenance is inferred from construction sites
(``Graph()``, ``dump_graph()``, ``union_graph()``, ``freeze()``,
parameter annotations and graph-named parameters), so a store smuggled
through an untyped container is invisible — the runtime complement,
:mod:`repro.analysis.store_sanitizer`, catches those under test.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic
from .rules import make

__all__ = [
    "EFFECTS",
    "FunctionSummary",
    "StoreEffectAnalyzer",
    "analyze_effects",
]

#: The effect vocabulary, in the order summaries render.
EFFECTS = (
    "graph-read", "graph-write", "index-mutate",
    "stats-read", "io", "clock",
)

_PRAGMA_RE = re.compile(
    r"#\s*ef:\s*allow(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+))?"
)
_WRITES_CONTRACT_RE = re.compile(
    r"^\s*Graph-writes:\s*(?P<value>\S.*?)\s*$", re.MULTILINE
)
_PURE_CONTRACT_RE = re.compile(
    r"^\s*Effects:\s*pure\s*$", re.MULTILINE
)
_EFFECTS_DECL_RE = re.compile(
    r"^\s*Effects:\s*(?P<effects>[a-z][a-z, -]*?)\s*$", re.MULTILINE
)

#: Graph index internals whose identity must not leak (EF001/EF005).
_INDEX_ATTRS = frozenset({"_spo", "_pos", "_osp"})
#: The module allowed to touch them.
_INDEX_OWNER = "repro.rdf.graph"

#: Graph API classification (method name on a graph-typed receiver).
_WRITE_METHODS = frozenset({"add", "add_all", "insert", "remove",
                            "clear"})
_LAZY_READ_METHODS = frozenset({"triples", "subjects", "predicates",
                                "objects", "predicate_objects",
                                "__iter__"})
_READ_METHODS = frozenset({"value", "label", "types",
                           "resource_exists", "serialize", "copy"})
_STATS_METHODS = frozenset({"count", "predicate_statistics"})

#: Parameter names treated as graph-typed even without an annotation.
_GRAPH_PARAM_NAMES = frozenset({"graph", "target"})
_DB_PARAM_NAMES = frozenset({"db", "database", "conn", "connection"})

#: Call basenames (after import resolution) that return a fresh graph.
_GRAPH_RETURNING = frozenset({
    "Graph", "FrozenGraph", "dump_graph", "load_ntriples",
    "build_ontology",
})

_CLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter", "time.sleep",
    "time.strftime", "datetime.datetime.now", "datetime.datetime.utcnow",
})
_IO_CALLS = frozenset({"open", "input"})
_IO_PREFIXES = ("socket.", "urllib.", "subprocess.", "requests.",
                "http.")
_IO_METHODS = frozenset({"read_text", "write_text", "read_bytes",
                         "write_bytes"})

#: Provenance kinds a value can have.
_KIND_GRAPH = "graph"
_KIND_UNION = "union"      # merged copy from union()/union_graph()
_KIND_FROZEN = "frozen"    # freeze() result — read-only view
_KIND_DATASET = "dataset"
_KIND_DB = "db"

_GRAPHLIKE = (_KIND_GRAPH, _KIND_UNION, _KIND_FROZEN)
_DERIVED = (_KIND_UNION, _KIND_FROZEN)


# ----------------------------------------------------------------------
# Source bookkeeping (line offsets + pragmas)
# ----------------------------------------------------------------------
class _SourceFile:
    """Line-offset math and ``# ef: allow`` pragma lookup."""

    def __init__(self, text: str, name: str) -> None:
        self.text = text
        self.name = name
        self.line_starts = [0]
        for line in text.splitlines(keepends=True):
            self.line_starts.append(self.line_starts[-1] + len(line))
        self.pragmas: Dict[int, Optional[Set[str]]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                self.pragmas[lineno] = None
            else:
                self.pragmas[lineno] = {
                    r.strip() for r in rules.split(",") if r.strip()
                }

    def span(self, node: ast.AST):
        from .diagnostics import Span

        start = self.line_starts[node.lineno - 1] + node.col_offset
        end_lineno = getattr(node, "end_lineno", None) or node.lineno
        end_col = getattr(node, "end_col_offset", None)
        end = (
            start if end_col is None
            else self.line_starts[end_lineno - 1] + end_col
        )
        return Span(start, max(end, start))

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        if lineno not in self.pragmas:
            return False
        allowed = self.pragmas[lineno]
        return allowed is None or rule_id in allowed


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _name_key(node: ast.AST) -> Optional[str]:
    """A stable per-function identity for a receiver expression."""
    return _dotted_name(node)


class _ImportMap:
    """Local name → absolute dotted path, honoring relative imports."""

    def __init__(self, tree: ast.Module, module: str) -> None:
        self.aliases: Dict[str, str] = {}
        parts = module.split(".")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                level = node.level or 0
                if level:
                    base = parts[:len(parts) - level]
                    absolute = ".".join(
                        base + ([node.module] if node.module else [])
                    )
                else:
                    absolute = node.module or ""
                if not absolute:
                    continue
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{absolute}.{alias.name}"
                    )

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.aliases.get(head)
        if resolved is None:
            return dotted
        return f"{resolved}.{rest}" if rest else resolved


def _module_for(name: str) -> str:
    """Dotted module name for a source path (``repro.rdf.graph``)."""
    parts = Path(name).parts
    if "repro" in parts:
        tail = parts[len(parts) - parts[::-1].index("repro") - 1:]
        dotted = ".".join(tail)
        for suffix in (".py",):
            if dotted.endswith(suffix):
                dotted = dotted[:-len(suffix)]
        if dotted.endswith(".__init__"):
            dotted = dotted[:-len(".__init__")]
        return dotted
    return Path(name).stem


# ----------------------------------------------------------------------
# Collected facts
# ----------------------------------------------------------------------
@dataclass
class _Call:
    """An internal call site (candidate for a call-graph edge)."""

    keys: Tuple[str, ...]
    node: ast.Call
    arg_kinds: Tuple[Optional[str], ...]
    arg_keys: Tuple[Optional[str], ...]
    is_return: bool = False


@dataclass
class _BulkWrite:
    """``recv.add_all(producer(...))`` — checked against the producer's
    summary (lazy + io ⇒ EF002) once the fixpoint has run."""

    receiver_key: Optional[str]
    producer_keys: Tuple[str, ...]
    node: ast.Call


@dataclass
class FunctionSummary:
    """The inferred effect summary of one function or method."""

    qualname: str
    module: str
    node: ast.AST = field(repr=False)
    params: Tuple[str, ...] = ()
    effects: Set[str] = field(default_factory=set)
    direct_effects: Set[str] = field(default_factory=set)
    writes_params: Set[str] = field(default_factory=set)
    lazy: bool = False
    declared: Optional[Set[str]] = None
    calls: List[_Call] = field(default_factory=list)
    bulk_writes: List[_BulkWrite] = field(default_factory=list)
    freeze_keys: Set[str] = field(default_factory=set)

    def render_effects(self) -> str:
        ordered = [e for e in EFFECTS if e in self.effects]
        return ", ".join(ordered) or "none"


@dataclass
class _ModuleFacts:
    name: str
    module: str
    source: _SourceFile
    writes_contract: Optional[str] = None
    pure: bool = False
    functions: List[FunctionSummary] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    first_write: Optional[ast.AST] = None


# ----------------------------------------------------------------------
# Per-function analysis
# ----------------------------------------------------------------------
class _FunctionAnalyzer:
    """One pass over a function body: provenance env, direct effects,
    call edges and the per-function EF diagnostics."""

    def __init__(
        self,
        facts: _ModuleFacts,
        summary: FunctionSummary,
        imports: _ImportMap,
        class_name: Optional[str],
        attr_kinds: Dict[str, str],
        param_kinds: Dict[str, str],
    ) -> None:
        self.facts = facts
        self.summary = summary
        self.imports = imports
        self.class_name = class_name
        self.attr_kinds = attr_kinds
        self.env: Dict[str, str] = dict(param_kinds)
        self.write_keys: Set[str] = set()
        self.stats_reads: List[Tuple[str, ast.AST]] = []
        self._returned_calls: Set[int] = set()

    # -- provenance -----------------------------------------------------
    def kind_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return self.attr_kinds.get(node.attr)
            base = self.kind_of(node.value)
            if base == _KIND_DATASET and node.attr == "default":
                return _KIND_GRAPH
            return None
        if isinstance(node, ast.Call):
            return self._kind_of_call(node)
        if isinstance(node, ast.IfExp):
            return self.kind_of(node.body) or self.kind_of(node.orelse)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                kind = self.kind_of(value)
                if kind is not None:
                    return kind
        if isinstance(node, ast.NamedExpr):
            return self.kind_of(node.value)
        return None

    def _kind_of_call(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            recv = self.kind_of(func.value)
            if func.attr == "union_graph" or func.attr == "union":
                return _KIND_UNION
            if func.attr == "copy" and recv in _GRAPHLIKE:
                return _KIND_GRAPH
            if func.attr == "graph" and recv == _KIND_DATASET:
                return _KIND_GRAPH
            if func.attr == "as_dataset":
                return _KIND_DATASET
            if recv == _KIND_DB:
                return _KIND_DB  # db.table(...) is still db-side
            return None
        resolved = self.imports.resolve(_dotted_name(func)) or ""
        base = resolved.rsplit(".", 1)[-1]
        if base == "freeze":
            return _KIND_FROZEN
        if base in _GRAPH_RETURNING:
            return _KIND_GRAPH
        if base == "Dataset":
            return _KIND_DATASET
        if base == "Database":
            return _KIND_DB
        return None

    # -- env construction ----------------------------------------------
    def build_env(self, body: Sequence[ast.stmt]) -> None:
        nodes = _local_nodes(body)
        for _ in range(3):  # enough for short provenance chains
            changed = False
            for node in nodes:
                if isinstance(node, ast.Assign):
                    kind = self.kind_of(node.value)
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    kind = self._annotation_kind(node.annotation)
                    if kind is None and node.value is not None:
                        kind = self.kind_of(node.value)
                    targets = [node.target]
                else:
                    continue
                if kind is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        if self._stronger(target.id, kind, self.env):
                            changed = True
            if not changed:
                break

    @staticmethod
    def _annotation_kind(annotation: ast.AST) -> Optional[str]:
        try:
            text = ast.unparse(annotation)
        except Exception:  # pragma: no cover - unparse always works
            return None
        if "Graph" in text:
            return _KIND_GRAPH
        if "Dataset" in text:
            return _KIND_DATASET
        if "Database" in text:
            return _KIND_DB
        return None

    @staticmethod
    def _stronger(key: str, kind: str, env: Dict[str, str]) -> bool:
        """Record ``kind`` for ``key`` unless a stronger kind is known
        (derived provenance outranks plain graph provenance)."""
        rank = {_KIND_UNION: 3, _KIND_FROZEN: 3, _KIND_GRAPH: 2,
                _KIND_DATASET: 1, _KIND_DB: 1}
        current = env.get(key)
        if current is None or rank.get(kind, 0) > rank.get(current, 0):
            env[key] = kind
            return True
        return False

    # -- diagnostics ----------------------------------------------------
    def emit(self, rule_id: str, message: str, node: ast.AST,
             suggestion: Optional[str] = None) -> None:
        if self.facts.source.suppressed(rule_id, node.lineno):
            return
        self.facts.diagnostics.append(make(
            rule_id, message,
            span=self.facts.source.span(node),
            source=self.facts.name,
            line=node.lineno,
            suggestion=suggestion,
        ))

    # -- the walk -------------------------------------------------------
    def run(self, fn: ast.AST) -> None:
        self.build_env(fn.body)
        self._visit_block(fn.body, loops=())
        # EF004: a bare stats read on a store this function also writes
        if _INDEX_OWNER != self.facts.module:
            for key, node in self.stats_reads:
                if key in self.write_keys:
                    self.emit(
                        "EF004",
                        f"bare statistics read of {key!r} in a function "
                        f"that also writes it — the read/write straddle "
                        f"is not a consistent snapshot",
                        node,
                        suggestion="Graph.insert() or "
                                   "GraphStatistics.cached()",
                    )

    def _visit_block(
        self, body: Sequence[ast.stmt], loops: Tuple[str, ...]
    ) -> None:
        for stmt in body:
            self._visit(stmt, loops)

    def _visit(self, node: ast.AST, loops: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are summarized separately (or not at all)
        if isinstance(node, ast.For):
            self._visit(node.iter, loops)
            key = self._live_iteration_key(node.iter)
            inner = loops + ((key,) if key else ())
            self._visit_block(node.body, inner)
            self._visit_block(node.orelse, loops)
            return
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "remove_graph"
            ):
                self.emit(
                    "EF009",
                    "remove_graph() result ignored — the boolean is the "
                    "only record of whether the named graph existed",
                    node,
                    suggestion="check (or explicitly discard) the result",
                )
        if isinstance(node, ast.Call):
            self._visit_call(node, loops)
            for child in ast.iter_child_nodes(node):
                self._visit(child, loops)
            return
        if isinstance(node, ast.AugAssign):
            self._visit_augassign(node, loops)
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.Return)):
            self._check_index_escape(node)
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            self._check_index_mutation(node)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self.summary.lazy = True
        if isinstance(node, ast.Return):
            self._note_return(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child, loops)

    # -- pieces ---------------------------------------------------------
    def _live_iteration_key(self, iter_node: ast.AST) -> Optional[str]:
        """The receiver key when ``iter_node`` lazily reads a store."""
        if isinstance(iter_node, ast.Call):
            func = iter_node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _LAZY_READ_METHODS
                and self.kind_of(func.value) in _GRAPHLIKE
            ):
                return _name_key(func.value)
            return None
        if self.kind_of(iter_node) in _GRAPHLIKE:
            return _name_key(iter_node)
        return None

    def _note_return(self, node: ast.Return) -> None:
        """Flag ``return f(...)`` so laziness propagates through
        delegating wrappers like ``dump_triples``."""
        value = node.value
        if not isinstance(value, ast.Call):
            return
        # the call edge is registered when the child Call is visited,
        # after this statement — remember the node identity instead
        self._returned_calls.add(id(value))
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LAZY_READ_METHODS
            and self.kind_of(func.value) in _GRAPHLIKE
        ):
            self.summary.lazy = True

    def _record_effect(self, effect: str) -> None:
        self.summary.direct_effects.add(effect)
        self.summary.effects.add(effect)

    def _note_write(self, recv_kind: Optional[str],
                    recv_key: Optional[str], node: ast.AST,
                    loops: Tuple[str, ...]) -> None:
        self._record_effect("graph-write")
        if recv_key is not None:
            self.write_keys.add(recv_key)
            if recv_key in self.summary.params:
                self.summary.writes_params.add(recv_key)
            if recv_key in loops:
                self.emit(
                    "EF002",
                    f"write to {recv_key!r} while iterating its live "
                    f"read generator — materialize the matches first",
                    node,
                )

    def _visit_call(self, call: ast.Call,
                    loops: Tuple[str, ...]) -> None:
        func = call.func
        # freeze(x): sanctions mutating the derived copy named x
        resolved = self.imports.resolve(_dotted_name(func)) or ""
        base = resolved.rsplit(".", 1)[-1] if resolved else ""
        if base == "freeze":
            for arg in call.args:
                key = _name_key(arg)
                if key is not None:
                    self.summary.freeze_keys.add(key)
        if base == "len" and call.args:
            if self.kind_of(call.args[0]) in _GRAPHLIKE:
                self._record_effect("stats-read")
                key = _name_key(call.args[0])
                if key is not None:
                    self.stats_reads.append((key, call))
        if resolved in _CLOCK_CALLS:
            self._record_effect("clock")
        elif resolved in _IO_CALLS or any(
            resolved.startswith(p) for p in _IO_PREFIXES
        ):
            self._record_effect("io")
        if resolved.endswith("GraphStatistics.collect"):
            self._record_effect("stats-read")
            if call.args:
                key = _name_key(call.args[0])
                if key is not None:
                    self.stats_reads.append((key, call))

        if isinstance(func, ast.Attribute):
            self._visit_method_call(call, func, loops)

        # call-graph edge candidates
        keys = self._callee_keys(call)
        if keys:
            arg_kinds = tuple(self.kind_of(a) for a in call.args)
            arg_keys = tuple(_name_key(a) for a in call.args)
            self.summary.calls.append(_Call(
                keys=keys, node=call,
                arg_kinds=arg_kinds, arg_keys=arg_keys,
                is_return=id(call) in self._returned_calls,
            ))

    def _visit_method_call(self, call: ast.Call, func: ast.Attribute,
                           loops: Tuple[str, ...]) -> None:
        recv_kind = self.kind_of(func.value)
        recv_key = _name_key(func.value)
        name = func.attr
        if recv_kind in _GRAPHLIKE:
            if name in _WRITE_METHODS:
                self._note_write(recv_kind, recv_key, call, loops)
                if recv_kind in _DERIVED:
                    self._pending_derived(recv_key, call, recv_kind)
                if name == "add_all" and call.args and isinstance(
                    call.args[0], ast.Call
                ):
                    producer_keys = self._callee_keys(call.args[0])
                    if producer_keys:
                        self.summary.bulk_writes.append(_BulkWrite(
                            receiver_key=recv_key,
                            producer_keys=producer_keys,
                            node=call,
                        ))
            elif name in _LAZY_READ_METHODS:
                self._record_effect("graph-read")
            elif name in _READ_METHODS:
                self._record_effect("graph-read")
            elif name in _STATS_METHODS:
                self._record_effect("stats-read")
                if recv_key is not None:
                    self.stats_reads.append((recv_key, call))
        if recv_kind == _KIND_DB:
            self._record_effect("io")
        if name in _IO_METHODS:
            self._record_effect("io")
        # index dicts mutated through their methods (g._spo.clear())
        if (
            isinstance(func.value, ast.Attribute)
            and func.value.attr in _INDEX_ATTRS
            and name in ("clear", "setdefault", "update", "pop",
                         "popitem")
            and self.facts.module != _INDEX_OWNER
        ):
            self._record_effect("index-mutate")
            self.emit(
                "EF001",
                f"direct mutation of Graph index {func.value.attr!r} "
                f"outside {_INDEX_OWNER} bypasses the size/version/"
                f"lock bookkeeping",
                call,
                suggestion="use add()/remove()/clear()",
            )

    def _pending_derived(self, key: Optional[str], node: ast.AST,
                         kind: str) -> None:
        pending = getattr(self, "_derived", None)
        if pending is None:
            pending = []
            self._derived = pending
        pending.append((key, node, kind))

    def flush_derived(self) -> None:
        """EF003 for direct writes to derived copies, after the whole
        function has been seen (freeze() may appear later)."""
        for key, node, kind in getattr(self, "_derived", []):
            if key is not None and key in self.summary.freeze_keys:
                continue
            what = (
                "frozen union view" if kind == _KIND_FROZEN
                else "derived union copy"
            )
            self.emit(
                "EF003",
                f"write to {key or 'a union graph'!s} mutates a {what} "
                f"— the change never reaches the underlying stores",
                node,
                suggestion="write to the source graphs, or freeze() "
                           "the copy before publishing it",
            )

    def _visit_augassign(self, node: ast.AugAssign,
                         loops: Tuple[str, ...]) -> None:
        if not isinstance(node.op, ast.Add):
            return
        kind = self.kind_of(node.target)
        if kind in _GRAPHLIKE:
            key = _name_key(node.target)
            self._note_write(kind, key, node, loops)
            if kind in _DERIVED:
                self._pending_derived(key, node, kind)

    def _check_index_escape(self, node: ast.AST) -> None:
        if self.facts.module == _INDEX_OWNER:
            return
        value = getattr(node, "value", None)
        target = value
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and target.attr in _INDEX_ATTRS
        ):
            verb = (
                "returned" if isinstance(node, ast.Return) else "stored"
            )
            self.emit(
                "EF005",
                f"live reference to internal index {target.attr!r} "
                f"{verb} — the caller now shares mutable index state",
                node,
                suggestion="copy the data out, or go through "
                           "triples()/count()",
            )

    def _check_index_mutation(self, node: ast.AST) -> None:
        if self.facts.module == _INDEX_OWNER:
            return
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            probe = target
            while isinstance(probe, ast.Subscript):
                probe = probe.value
            if (
                isinstance(probe, ast.Attribute)
                and probe.attr in _INDEX_ATTRS
            ):
                self._record_effect("index-mutate")
                self.emit(
                    "EF001",
                    f"direct mutation of Graph index {probe.attr!r} "
                    f"outside {_INDEX_OWNER} bypasses the size/version/"
                    f"lock bookkeeping",
                    node,
                    suggestion="use add()/remove()/clear()",
                )

    # -- call resolution ------------------------------------------------
    def _callee_keys(self, call: ast.Call) -> Tuple[str, ...]:
        func = call.func
        keys: List[str] = []
        if isinstance(func, ast.Name):
            keys.append(f"{self.facts.module}.{func.id}")
            resolved = self.imports.resolve(func.id)
            if resolved and resolved != func.id:
                keys.append(resolved)
        elif isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.class_name is not None
            ):
                keys.append(
                    f"{self.facts.module}.{self.class_name}.{func.attr}"
                )
            else:
                dotted = _dotted_name(func)
                resolved = self.imports.resolve(dotted)
                if resolved:
                    keys.append(resolved)
        return tuple(keys)


def _local_nodes(body: Sequence[ast.stmt]) -> List[ast.AST]:
    """Every node in ``body`` without descending into nested defs."""
    out: List[ast.AST] = []

    def rec(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            out.append(child)
            rec(child)

    for stmt in body:
        out.append(stmt)
        rec(stmt)
    return out


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------
class StoreEffectAnalyzer:
    """Whole-program pass: per-file facts, then a call-graph fixpoint,
    then the interprocedural EF diagnostics.

    Use :meth:`analyze_paths` (or module-level :func:`analyze_effects`)
    — effect propagation needs every file before the cross-function
    rules (EF002's producer check, EF003 through calls, EF007/EF008/
    EF010) can run.
    """

    def __init__(self) -> None:
        self.modules: List[_ModuleFacts] = []
        self.registry: Dict[str, FunctionSummary] = {}

    # -- entry points ---------------------------------------------------
    def analyze_source(
        self, text: str, name: str = "<input>"
    ) -> List[Diagnostic]:
        self._collect(text, name)
        return self.finish()

    def analyze_paths(
        self, paths: Iterable[Path]
    ) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for path in paths:
            diags.extend(self._collect_path(Path(path)))
        diags.extend(self.finish())
        return diags

    def _collect_path(self, path: Path) -> List[Diagnostic]:
        if path.is_dir():
            diags: List[Diagnostic] = []
            for child in sorted(path.rglob("*.py")):
                diags.extend(self._collect_path(child))
            return diags
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            return [make("SP000", f"cannot read file: {exc}",
                         source=str(path))]
        self._collect(text, str(path))
        return []

    # -- pass 1: per-file -----------------------------------------------
    def _collect(self, text: str, name: str) -> None:
        module = _module_for(name)
        source = _SourceFile(text, name)
        facts = _ModuleFacts(name=name, module=module, source=source)
        self.modules.append(facts)
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            facts.diagnostics.append(make(
                "SP000", f"cannot parse: {exc}", source=name,
            ))
            return
        docstring = ast.get_docstring(tree) or ""
        contract = _WRITES_CONTRACT_RE.search(docstring)
        facts.writes_contract = (
            contract.group("value") if contract else None
        )
        facts.pure = bool(_PURE_CONTRACT_RE.search(docstring))
        imports = _ImportMap(tree, module)

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(facts, imports, node, None, {})
            elif isinstance(node, ast.ClassDef):
                attr_kinds = self._class_attr_kinds(
                    facts, imports, node
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._collect_function(
                            facts, imports, item, node.name, attr_kinds
                        )

    def _class_attr_kinds(
        self, facts: _ModuleFacts, imports: _ImportMap,
        cls: ast.ClassDef,
    ) -> Dict[str, str]:
        """``self.X`` provenance, from assignments anywhere in the
        class (``__init__`` usually, but later methods may refine —
        e.g. a cache attribute re-assigned from ``union()``)."""
        kinds: Dict[str, str] = {}
        for _ in range(2):
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                probe = _FunctionAnalyzer(
                    facts, FunctionSummary("", facts.module, item),
                    imports, cls.name, kinds,
                    self._param_kinds(item),
                )
                probe.build_env(item.body)
                for node in _local_nodes(item.body):
                    if isinstance(node, ast.Assign):
                        kind = probe.kind_of(node.value)
                        targets = node.targets
                    elif isinstance(node, ast.AnnAssign):
                        kind = probe._annotation_kind(node.annotation)
                        if kind is None and node.value is not None:
                            kind = probe.kind_of(node.value)
                        targets = [node.target]
                    else:
                        continue
                    if kind is None:
                        continue
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            _FunctionAnalyzer._stronger(
                                target.attr, kind, kinds
                            )
        return kinds

    @staticmethod
    def _param_kinds(fn: ast.AST) -> Dict[str, str]:
        kinds: Dict[str, str] = {}
        args = fn.args
        every = (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        )
        for arg in every:
            kind: Optional[str] = None
            if arg.annotation is not None:
                kind = _FunctionAnalyzer._annotation_kind(
                    arg.annotation
                )
            if kind is None:
                if arg.arg in _GRAPH_PARAM_NAMES or arg.arg.endswith(
                    "_graph"
                ):
                    kind = _KIND_GRAPH
                elif arg.arg in _DB_PARAM_NAMES:
                    kind = _KIND_DB
            if kind is not None:
                kinds[arg.arg] = kind
        return kinds

    def _collect_function(
        self,
        facts: _ModuleFacts,
        imports: _ImportMap,
        fn: ast.AST,
        class_name: Optional[str],
        attr_kinds: Dict[str, str],
    ) -> None:
        path = f"{class_name}.{fn.name}" if class_name else fn.name
        qualname = f"{facts.module}.{path}"
        summary = FunctionSummary(
            qualname=qualname, module=facts.module, node=fn,
        )
        args = fn.args
        summary.params = tuple(
            a.arg for a in (
                list(args.posonlyargs) + list(args.args)
            ) if a.arg != "self"
        )
        doc = ast.get_docstring(fn) or ""
        decl = _EFFECTS_DECL_RE.search(doc)
        if decl and decl.group("effects").strip() != "pure":
            summary.declared = {
                e.strip() for e in decl.group("effects").split(",")
                if e.strip()
            }
        analyzer = _FunctionAnalyzer(
            facts, summary, imports, class_name, attr_kinds,
            self._param_kinds(fn),
        )
        analyzer.run(fn)
        analyzer.flush_derived()
        if "graph-write" in summary.direct_effects:
            if facts.first_write is None:
                facts.first_write = fn
        facts.functions.append(summary)
        self.registry[qualname] = summary

    # -- pass 2: fixpoint + global rules --------------------------------
    def finish(self) -> List[Diagnostic]:
        self._fixpoint()
        diags: List[Diagnostic] = []
        for facts in self.modules:
            diags.extend(facts.diagnostics)
            diags.extend(self._module_rules(facts))
        return diags

    def _resolve(self, keys: Tuple[str, ...]) -> Optional[FunctionSummary]:
        for key in keys:
            summary = self.registry.get(key)
            if summary is not None:
                return summary
        return None

    def _fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for summary in self.registry.values():
                for call in summary.calls:
                    callee = self._resolve(call.keys)
                    if callee is None or callee is summary:
                        continue
                    if callee.effects - summary.effects:
                        summary.effects |= callee.effects
                        changed = True
                    if callee.lazy and call.is_return and not summary.lazy:
                        summary.lazy = True
                        changed = True
                    # a written callee param backed by one of our params
                    for index, key in enumerate(call.arg_keys):
                        if key is None or key not in summary.params:
                            continue
                        if index >= len(callee.params):
                            continue
                        if (
                            callee.params[index] in callee.writes_params
                            and key not in summary.writes_params
                        ):
                            summary.writes_params.add(key)
                            changed = True

    def _module_rules(self, facts: _ModuleFacts) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        source = facts.source

        def emit(rule_id: str, message: str, node: ast.AST,
                 suggestion: Optional[str] = None) -> None:
            if source.suppressed(rule_id, node.lineno):
                return
            diags.append(make(
                rule_id, message, span=source.span(node),
                source=facts.name, line=node.lineno,
                suggestion=suggestion,
            ))

        contract = facts.writes_contract
        contract_none = (
            contract is not None and contract.strip().lower() == "none"
        )
        wrote_directly = any(
            "graph-write" in s.direct_effects for s in facts.functions
        )
        # EF006: writers must declare their contract
        if wrote_directly and contract is None:
            emit(
                "EF006",
                f"module {facts.module} performs graph writes but its "
                f"docstring declares no 'Graph-writes:' contract",
                facts.first_write,
                suggestion="add a 'Graph-writes: <what>' line to the "
                           "module docstring",
            )

        for summary in facts.functions:
            fn = summary.node
            # EF002 (producer form): bulk write fed by a lazy io source
            for bulk in summary.bulk_writes:
                producer = self._resolve(bulk.producer_keys)
                if (
                    producer is not None and producer.lazy
                    and "io" in producer.effects
                ):
                    emit(
                        "EF002",
                        f"add_all() consumes the live generator "
                        f"{producer.qualname.rsplit('.', 1)[-1]}() — "
                        f"the store lock is held across the whole "
                        f"external scan and a mid-stream failure "
                        f"leaves the store half-populated",
                        bulk.node,
                        suggestion="materialize with list(...) before "
                                   "add_all()",
                    )
            # EF003 (call form): a derived union copy passed to a writer
            for call in summary.calls:
                callee = self._resolve(call.keys)
                if callee is None:
                    continue
                for index, kind in enumerate(call.arg_kinds):
                    if kind not in _DERIVED:
                        continue
                    key = call.arg_keys[index]
                    if key is not None and key in summary.freeze_keys:
                        continue
                    if index >= len(callee.params):
                        continue
                    if callee.params[index] in callee.writes_params:
                        emit(
                            "EF003",
                            f"{callee.qualname.rsplit('.', 1)[-1]}() "
                            f"writes its {callee.params[index]!r} "
                            f"argument, but {key or 'the value'!s} is a "
                            f"derived union copy — the change never "
                            f"reaches the underlying stores",
                            call.node,
                            suggestion="mutate before merging, or "
                                       "freeze() the copy before "
                                       "publishing it",
                        )
            # EF007: io/clock in a declared-pure module
            if facts.pure:
                impure = summary.effects & {"io", "clock"}
                if impure:
                    emit(
                        "EF007",
                        f"{summary.qualname} has inferred effects "
                        f"{sorted(impure)} in a module declared "
                        f"'Effects: pure'",
                        fn,
                    )
            # EF008: transitive writer under a no-writes contract
            if contract_none and "graph-write" in summary.effects:
                emit(
                    "EF008",
                    f"{summary.qualname} (transitively) writes the "
                    f"store, but the module contract is "
                    f"'Graph-writes: none'",
                    fn,
                )
            # EF010: declared summary must cover the inferred one
            if summary.declared is not None:
                extra = summary.effects - summary.declared
                if extra:
                    emit(
                        "EF010",
                        f"{summary.qualname} declares effects "
                        f"[{', '.join(sorted(summary.declared))}] but "
                        f"[{', '.join(sorted(extra))}] were also "
                        f"inferred",
                        fn,
                        suggestion="update the 'Effects:' line",
                    )
        return diags


def analyze_effects(paths: Iterable[Path]) -> List[Diagnostic]:
    """Run the store-effect analyzer over ``paths`` (files or trees)."""
    return StoreEffectAnalyzer().analyze_paths(paths)
