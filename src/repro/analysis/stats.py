"""Graph statistics feeding the query planner's cardinality model.

:class:`GraphStatistics` is a one-pass summary of a live
:class:`~repro.rdf.Graph`: per-predicate triple counts and distinct
subject/object counts (via ``Graph.predicate_statistics``), per-class
instance counts from ``rdf:type``, and the bounding box of every
``geo:geometry`` WKT point so that ``bif:st_intersects(?a, ?b, r)``
filters get a spatial selectivity estimate (circle area over data
bounding-box area).

The estimation formulas are the classic System-R style ones: a triple
pattern with a concrete predicate starts from that predicate's triple
count and is divided by the distinct-subject (resp. distinct-object)
count for each additionally bound position; ``rdf:type`` with a
concrete class uses the exact class count.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import nullcontext
from typing import Dict, Optional, Set, Tuple

from ..obs import get_registry
from ..rdf.graph import Graph
from ..rdf.namespace import GEO, RDF
from ..rdf.terms import Term, Variable
from ..sparql.ast import (
    AndExpr,
    CompareExpr,
    Expression,
    FunctionCall,
    InExpr,
    NotExpr,
    OrExpr,
    TriplePatternNode,
)
from ..sparql.geo import try_parse_point

#: Fallback selectivities for filter shapes we cannot model better.
_EQ_SELECTIVITY = 0.1
_RANGE_SELECTIVITY = 0.33
_DEFAULT_SELECTIVITY = 0.5

#: ~1 degree of latitude in kilometers (longitude scaled by cos(lat)).
_KM_PER_DEGREE = 111.195

#: Serializes :meth:`GraphStatistics.cached` rebuilds so concurrent
#: readers of a stale graph cannot each launch a full collection pass.
_REBUILD_LOCK = threading.Lock()


class GraphStatistics:
    """Cardinality statistics collected from a graph.

    ``fingerprint`` records the graph's change fingerprint at
    collection time so callers can cheaply detect staleness and
    re-collect: ``Graph._version`` for mutable graphs, or the MVCC
    store's ``generation`` counter for generation-pinned snapshots
    (:class:`repro.store.SnapshotGraph`), which is what lets
    :meth:`cached` serve snapshot statistics without ever rebuilding.
    Graph-like objects with neither get a fresh sentinel object that
    never compares equal to anything observed later — *always stale*.
    (The old fallback of ``len(graph)`` let a same-size mutation —
    remove one triple, add another — serve stale planner statistics.)
    """

    def __init__(
        self,
        total: int,
        predicates: Dict[Term, Tuple[int, int, int]],
        class_counts: Dict[Term, int],
        bbox: Optional[Tuple[float, float, float, float]],
        geo_points: int,
    ) -> None:
        self.total = total
        self.predicates = predicates
        self.class_counts = class_counts
        #: (min_lon, min_lat, max_lon, max_lat) of geo:geometry points.
        self.bbox = bbox
        self.geo_points = geo_points
        #: ``Graph._version`` at collection time (staleness detection);
        #: an always-stale sentinel when the graph has no version.
        self.fingerprint: object = None
        #: Wall-clock time of collection (snapshot age accounting).
        self.collected_at: float = time.time()

    @property
    def age_seconds(self) -> float:
        """Seconds since this snapshot was collected."""
        return max(time.time() - self.collected_at, 0.0)

    @classmethod
    def collect(cls, graph: Graph) -> "GraphStatistics":
        # Hold the graph's write lock (when it has one) for the whole
        # scan: the fingerprint must describe the same state the
        # indexes were scanned in, not a version a concurrent writer
        # bumped halfway through.
        guard = getattr(graph, "_lock", None)
        with guard if guard is not None else nullcontext():
            predicates = graph.predicate_statistics()

            class_counts: Dict[Term, int] = {}
            for _, _, cls_term in graph.triples(
                (None, RDF.type, None)
            ):
                class_counts[cls_term] = (
                    class_counts.get(cls_term, 0) + 1
                )

            min_lon = min_lat = math.inf
            max_lon = max_lat = -math.inf
            points = 0
            for _, _, obj in graph.triples((None, GEO.geometry, None)):
                point = try_parse_point(obj)
                if point is None:
                    continue
                points += 1
                min_lon = min(min_lon, point.longitude)
                max_lon = max(max_lon, point.longitude)
                min_lat = min(min_lat, point.latitude)
                max_lat = max(max_lat, point.latitude)
            bbox = (
                (min_lon, min_lat, max_lon, max_lat) if points else None
            )
            stats = cls(
                len(graph), predicates, class_counts, bbox, points
            )
            version = _graph_fingerprint(graph)
        # no fingerprint source -> a unique sentinel: never equal to any
        # later observation, so the snapshot can never be served stale.
        stats.fingerprint = version if version is not None else object()
        # every collection is a (re)build of the planner's statistics;
        # a hot counter here exposes silent per-query re-scans (the
        # inc happens outside the graph lock: CC003)
        get_registry().counter(
            "repro_graph_stats_rebuilds_total",
            "GraphStatistics collection passes over a live graph.",
        ).inc()
        return stats

    @classmethod
    def cached(cls, graph: Graph) -> "GraphStatistics":
        """Version-checked statistics for ``graph``, cached on it.

        The fast path is lock-free: read the cached snapshot and accept
        it when its fingerprint matches the graph's current version.
        Rebuilds are serialized by a module-level lock so N concurrent
        readers of a freshly-mutated graph trigger one collection pass,
        not N — the interleaving the concurrency analyzer flagged when
        the evaluator open-coded this check.
        """
        version = _graph_fingerprint(graph)
        stats = getattr(graph, "_stats_cache", None)
        if (
            stats is not None
            and version is not None
            and stats.fingerprint == version
        ):
            return stats
        with _REBUILD_LOCK:
            # double-check: another reader may have rebuilt while we
            # waited on the lock
            version = _graph_fingerprint(graph)
            stats = getattr(graph, "_stats_cache", None)
            if (
                stats is not None
                and version is not None
                and stats.fingerprint == version
            ):
                return stats
            stats = cls.collect(graph)
            try:
                graph._stats_cache = stats
            except AttributeError:  # pragma: no cover - exotic graphs
                pass
            return stats

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        added,
        removed,
        before,
        after,
        fingerprint: object = None,
    ) -> "GraphStatistics":
        """Statistics for ``after`` = this snapshot + a generation delta.

        ``added``/``removed`` are the union-effective triples of one
        committed generation (in op order; an add-then-remove of the
        same triple nets out). ``before``/``after`` only need
        ``triples(pattern)`` — the MVCC store passes lightweight state
        views. Cost is O(delta): per-predicate triple counts and class
        counts adjust by op, distinct subject/object counts use one
        bounded membership probe per (predicate, candidate) pair, and
        the geo bounding box only rescans when a removed point sat on
        the current boundary. This is what replaces the full rebuild
        (and its ``repro_graph_stats_rebuilds_total`` tick) on every
        store commit.
        """
        predicates: Dict[Term, list] = {
            p: [t, s, o] for p, (t, s, o) in self.predicates.items()
        }
        class_counts = dict(self.class_counts)
        bbox = self.bbox
        points = self.geo_points
        bbox_stale = False
        subject_candidates: Dict[Term, Set[Term]] = {}
        object_candidates: Dict[Term, Set[Term]] = {}

        def entry(predicate: Term) -> list:
            found = predicates.get(predicate)
            if found is None:
                found = [0, 0, 0]
                predicates[predicate] = found
            return found

        for s, p, o in added:
            entry(p)[0] += 1
            subject_candidates.setdefault(p, set()).add(s)
            object_candidates.setdefault(p, set()).add(o)
            if p == RDF.type:
                class_counts[o] = class_counts.get(o, 0) + 1
            elif p == GEO.geometry:
                point = try_parse_point(o)
                if point is not None:
                    points += 1
                    if bbox is None:
                        bbox = (point.longitude, point.latitude,
                                point.longitude, point.latitude)
                    else:
                        bbox = (
                            min(bbox[0], point.longitude),
                            min(bbox[1], point.latitude),
                            max(bbox[2], point.longitude),
                            max(bbox[3], point.latitude),
                        )
        for s, p, o in removed:
            entry(p)[0] -= 1
            subject_candidates.setdefault(p, set()).add(s)
            object_candidates.setdefault(p, set()).add(o)
            if p == RDF.type:
                class_counts[o] = class_counts.get(o, 0) - 1
            elif p == GEO.geometry:
                point = try_parse_point(o)
                if point is not None:
                    points -= 1
                    if bbox is not None and (
                        point.longitude in (bbox[0], bbox[2])
                        or point.latitude in (bbox[1], bbox[3])
                    ):
                        bbox_stale = True

        for p, candidates in subject_candidates.items():
            counts = predicates.get(p)
            if counts is None:
                continue
            for s in candidates:
                counts[1] += _has(after, (s, p, None)) - _has(
                    before, (s, p, None)
                )
        for p, candidates in object_candidates.items():
            counts = predicates.get(p)
            if counts is None:
                continue
            for o in candidates:
                counts[2] += _has(after, (None, p, o)) - _has(
                    before, (None, p, o)
                )

        points = max(points, 0)
        if points == 0:
            bbox = None
        elif bbox_stale:
            # a boundary point left: one pass over the remaining geo
            # triples (bounded by the geo predicate, not the graph)
            min_lon = min_lat = math.inf
            max_lon = max_lat = -math.inf
            found = 0
            for _, _, obj in after.triples((None, GEO.geometry, None)):
                point = try_parse_point(obj)
                if point is None:
                    continue
                found += 1
                min_lon = min(min_lon, point.longitude)
                max_lon = max(max_lon, point.longitude)
                min_lat = min(min_lat, point.latitude)
                max_lat = max(max_lat, point.latitude)
            bbox = (
                (min_lon, min_lat, max_lon, max_lat) if found else None
            )
            points = found

        result = GraphStatistics(
            max(self.total + len(added) - len(removed), 0),
            {
                p: (t, max(s, 0), max(o, 0))
                for p, (t, s, o) in predicates.items()
                if t > 0
            },
            {c: n for c, n in class_counts.items() if n > 0},
            bbox,
            points,
        )
        result.fingerprint = fingerprint
        get_registry().counter(
            "repro_graph_stats_delta_updates_total",
            "Incremental GraphStatistics maintenance passes "
            "(O(delta) commits that avoided a full rebuild).",
        ).inc()
        return result

    # ------------------------------------------------------------------
    # Scan cardinality
    # ------------------------------------------------------------------
    def predicate_count(self, predicate: Term) -> int:
        entry = self.predicates.get(predicate)
        return entry[0] if entry else 0

    def scan_cardinality(
        self,
        pattern: TriplePatternNode,
        bound: Set[str],
    ) -> float:
        """Estimated matches of ``pattern`` given already-bound variables.

        ``bound`` holds the *names* of variables bound by earlier scans;
        a bound variable position counts as a concrete term.
        """

        def is_bound(position: Term) -> bool:
            if isinstance(position, Variable):
                return str(position) in bound
            return True

        s_bound = is_bound(pattern.subject)
        o_bound = is_bound(pattern.object)

        if isinstance(pattern.predicate, Variable):
            if str(pattern.predicate) not in bound:
                estimate = float(self.total)
                n_preds = max(1, len(self.predicates))
                if s_bound:
                    estimate /= max(
                        1,
                        sum(e[1] for e in self.predicates.values())
                        / n_preds,
                    )
                if o_bound:
                    estimate /= max(
                        1,
                        sum(e[2] for e in self.predicates.values())
                        / n_preds,
                    )
                return max(estimate, 0.001)
            # predicate bound at runtime: average over predicates
            entry = (
                float(self.total) / max(1, len(self.predicates)),
                1.0,
                1.0,
            )
            return max(entry[0], 0.001)

        entry = self.predicates.get(pattern.predicate)
        if entry is None:
            return 0.0
        triples, distinct_s, distinct_o = entry

        if (
            pattern.predicate == RDF.type
            and not isinstance(pattern.object, Variable)
        ):
            count = float(self.class_counts.get(pattern.object, 0))
            if s_bound:
                count = min(count, 1.0)
            return count

        estimate = float(triples)
        if s_bound:
            estimate /= max(1, distinct_s)
        if o_bound:
            estimate /= max(1, distinct_o)
        return max(estimate, 0.001)

    # ------------------------------------------------------------------
    # Filter selectivity
    # ------------------------------------------------------------------
    def spatial_selectivity(self, radius_km: float) -> float:
        """Fraction of geo points within ``radius_km`` of a fixed point.

        Ratio of the search-circle area to the data bounding-box area,
        clamped to (0, 1]. With no or degenerate bbox, falls back to the
        generic range selectivity.
        """
        if self.bbox is None:
            return _RANGE_SELECTIVITY
        min_lon, min_lat, max_lon, max_lat = self.bbox
        mid_lat = math.radians((min_lat + max_lat) / 2.0)
        width_km = (
            (max_lon - min_lon) * _KM_PER_DEGREE * math.cos(mid_lat)
        )
        height_km = (max_lat - min_lat) * _KM_PER_DEGREE
        area = width_km * height_km
        if area <= 0.0:
            return _RANGE_SELECTIVITY
        circle = math.pi * radius_km * radius_km
        return max(min(circle / area, 1.0), 1e-6)

    def filter_selectivity(self, expr: Expression) -> float:
        """Heuristic fraction of solutions an expression lets through."""
        if isinstance(expr, AndExpr):
            product = 1.0
            for operand in expr.operands:
                product *= self.filter_selectivity(operand)
            return product
        if isinstance(expr, OrExpr):
            miss = 1.0
            for operand in expr.operands:
                miss *= 1.0 - self.filter_selectivity(operand)
            return 1.0 - miss
        if isinstance(expr, NotExpr):
            return 1.0 - self.filter_selectivity(expr.operand)
        if isinstance(expr, CompareExpr):
            if expr.op == "=":
                return _EQ_SELECTIVITY
            if expr.op == "!=":
                return 1.0 - _EQ_SELECTIVITY
            return _RANGE_SELECTIVITY
        if isinstance(expr, InExpr):
            hit = min(1.0, _EQ_SELECTIVITY * max(1, len(expr.choices)))
            return 1.0 - hit if expr.negated else hit
        if isinstance(expr, FunctionCall):
            if expr.name == "bif:st_intersects":
                radius = _constant_number(
                    expr.args[2] if len(expr.args) == 3 else None
                )
                if radius is not None:
                    return self.spatial_selectivity(radius)
                return self.spatial_selectivity(0.0)
            if expr.name in ("REGEX", "CONTAINS", "STRSTARTS",
                             "STRENDS", "LANGMATCHES"):
                return _RANGE_SELECTIVITY
        return _DEFAULT_SELECTIVITY


def _graph_fingerprint(graph) -> Optional[object]:
    """The graph's change fingerprint, if it exposes one.

    Mutable :class:`~repro.rdf.graph.Graph` instances expose
    ``_version`` (bumped per mutation); MVCC store snapshots expose
    ``generation`` instead (pinned, so it doubles as the statistics
    fingerprint). ``None`` means no cheap staleness signal exists and
    the caller must treat cached statistics as always stale.
    """
    version = getattr(graph, "_version", None)
    if version is not None:
        return version
    return getattr(graph, "generation", None)


def _has(graph, pattern) -> int:
    """1 when ``graph`` has any triple matching ``pattern``, else 0."""
    for _ in graph.triples(pattern):
        return 1
    return 0


def _constant_number(expr: Optional[Expression]) -> Optional[float]:
    from ..rdf.terms import Literal
    from ..sparql.ast import TermExpr

    if expr is None:
        return None
    if isinstance(expr, TermExpr) and isinstance(expr.term, Literal):
        if expr.term.is_numeric:
            return float(expr.term.value)
    return None


__all__ = ["GraphStatistics"]
