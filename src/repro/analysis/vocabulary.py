"""The vocabulary index the linters check terms against.

The paper's retrieval surface only ever touches a closed set of
predicates and classes: the ontology fragments (:mod:`repro.lod.ontology`),
the terms the D2R mapping emits (:mod:`repro.platform.vocab`), the
predicates observable in the LOD corpus, and a few annotation-pipeline
predicates. :class:`VocabularyIndex` collects them and answers "is this
term published?" plus "what is the nearest published term?" — the latter
with the same case-insensitive Jaro-Winkler measure (threshold 0.8) the
annotation pipeline itself uses (§2.2.2).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from ..nlp.similarity import jaro_winkler_ci
from ..rdf.namespace import RDF, RDFS
from ..rdf.terms import URIRef

#: Jaro-Winkler score below which a suggestion is considered noise —
#: deliberately the same threshold as the annotation pipeline's final
#: similarity check.
SUGGESTION_THRESHOLD = 0.8

_RDF_TYPE = str(RDF.type)
_SUBCLASS = str(RDFS.subClassOf)
_DOMAIN = str(RDFS.domain)
_RANGE = str(RDFS.range)


def _local_name(iri: str) -> str:
    for sep in ("#", "/"):
        if sep in iri:
            return iri.rsplit(sep, 1)[1]
    return iri


class VocabularyIndex:
    """Known predicates and classes, with nearest-term suggestions."""

    def __init__(
        self,
        predicates: Iterable[str] = (),
        classes: Iterable[str] = (),
    ) -> None:
        self.predicates: Set[str] = {str(p) for p in predicates}
        self.classes: Set[str] = {str(c) for c in classes}
        # rdf:type is implied by the 'a' shorthand everywhere
        self.predicates.add(_RDF_TYPE)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def harvest_graph(self, graph) -> "VocabularyIndex":
        """Add every predicate/class observable in ``graph``.

        Classes are objects of ``rdf:type``, both sides of
        ``rdfs:subClassOf`` and objects of ``rdfs:domain``/``rdfs:range``;
        subjects of ``rdfs:domain``/``rdfs:range`` are predicates.
        """
        for s, p, o in graph:
            p_str = str(p)
            self.predicates.add(p_str)
            if p_str == _RDF_TYPE and isinstance(o, URIRef):
                self.classes.add(str(o))
            elif p_str == _SUBCLASS:
                if isinstance(s, URIRef):
                    self.classes.add(str(s))
                if isinstance(o, URIRef):
                    self.classes.add(str(o))
            elif p_str in (_DOMAIN, _RANGE):
                if isinstance(s, URIRef):
                    self.predicates.add(str(s))
                if isinstance(o, URIRef):
                    self.classes.add(str(o))
        return self

    def harvest_mapping(self, mapping) -> "VocabularyIndex":
        """Add every term a :class:`repro.d2r.D2RMapping` can emit."""
        for table_map in mapping.table_maps.values():
            if table_map.rdf_class is not None:
                self.classes.add(str(table_map.rdf_class))
            for prop in table_map.properties:
                self.predicates.add(str(prop.predicate))
            for link in table_map.links:
                self.predicates.add(str(link.predicate))
            for split in table_map.keyword_splits:
                self.predicates.add(str(split.predicate))
        return self

    def add_predicates(self, *predicates: str) -> "VocabularyIndex":
        self.predicates.update(str(p) for p in predicates)
        return self

    def add_classes(self, *classes: str) -> "VocabularyIndex":
        self.classes.update(str(c) for c in classes)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knows_predicate(self, iri: str) -> bool:
        return str(iri) in self.predicates

    def knows_class(self, iri: str) -> bool:
        return str(iri) in self.classes

    def suggest_predicate(self, iri: str) -> Optional[str]:
        return _suggest(str(iri), self.predicates)

    def suggest_class(self, iri: str) -> Optional[str]:
        return _suggest(str(iri), self.classes)


def _suggest(target: str, candidates: Set[str]) -> Optional[str]:
    """Nearest candidate IRI by Jaro-Winkler over local names, preferring
    candidates in the same namespace; ``None`` below the threshold."""
    if not candidates:
        return None
    target_local = _local_name(target)
    target_ns = target[: len(target) - len(target_local)]
    best: Optional[Tuple[float, str]] = None
    for candidate in sorted(candidates):
        score = jaro_winkler_ci(target_local, _local_name(candidate))
        if candidate.startswith(target_ns) and target_ns:
            score += 0.05  # same-namespace tie-break
        if best is None or score > best[0]:
            best = (score, candidate)
    if best is None or best[0] < SUGGESTION_THRESHOLD:
        return None
    return best[1]


def default_vocabulary() -> VocabularyIndex:
    """The index covering everything this deployment publishes.

    Combines the ontology graph, the LOD corpus, the platform's D2R
    mapping and the annotation-pipeline predicates. Cached — the corpus
    itself is cached by :func:`repro.lod.datasets.build_lod_corpus`.
    """
    global _DEFAULT
    if _DEFAULT is not None:
        return _DEFAULT
    # imported here: platform/lod pull in heavy modules and importing them
    # at module scope would cycle through repro.sparql.evaluator
    from ..lod.datasets import build_lod_corpus
    from ..lod.ontology import build_ontology
    from ..platform.vocab import platform_mapping
    from ..rdf.namespace import DC, DCTERMS, OWL, RDFS as _RDFS, SIOC

    index = VocabularyIndex()
    index.harvest_graph(build_ontology())
    index.harvest_graph(build_lod_corpus().union())
    index.harvest_mapping(platform_mapping())
    # annotation pipeline output and generic description predicates
    index.add_predicates(
        str(DCTERMS.subject), str(DCTERMS.created), str(DC.title),
        str(_RDFS.label), str(_RDFS.seeAlso), str(OWL.sameAs),
        str(SIOC.topic),
    )
    _DEFAULT = index
    return index


_DEFAULT: Optional[VocabularyIndex] = None
