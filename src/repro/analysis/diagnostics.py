"""The uniform diagnostic model shared by every analyzer.

Each analyzer (SPARQL linter, D2R mapping linter, shape checker) reports
problems as :class:`Diagnostic` values — a rule id from the registry in
:mod:`repro.analysis.rules`, a severity, an optional source span, a
human-readable message and an optional "did you mean" suggestion.
:class:`DiagnosticReport` aggregates diagnostics across analyzers and
renders them the way compilers do (``source:offset: severity RULE …``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}") from None


@dataclass(frozen=True)
class Span:
    """A half-open character range ``[start, end)`` in the source text."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def slice(self, source: str) -> str:
        return source[self.start:self.end]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, severity, message, optional span/suggestion."""

    rule: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    suggestion: Optional[str] = None
    source: Optional[str] = None  # artifact name: "Q1", a file path, ...
    line: Optional[int] = None  # 1-based source line, when known

    def render(self) -> str:
        where = self.source or "<input>"
        if self.line is not None:
            where += f":{self.line}"
        elif self.span is not None:
            where += f":{self.span.start}"
        text = f"{where}: {self.severity} {self.rule} {self.message}"
        if self.suggestion:
            text += f" (did you mean {self.suggestion!r}?)"
        return text


class AnalysisError(Exception):
    """Raised by strict-mode entry points when error diagnostics exist."""

    def __init__(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        lines = "; ".join(d.render() for d in self.diagnostics)
        super().__init__(
            f"static analysis found {len(self.diagnostics)} error(s): "
            f"{lines}"
        )


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with aggregate helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.WARNING
        ]

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def rules(self) -> List[str]:
        """Distinct rule ids present, in first-seen order."""
        seen: List[str] = []
        for d in self.diagnostics:
            if d.rule not in seen:
                seen.append(d.rule)
        return seen

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [
            d.render() for d in self.diagnostics if d.severity >= min_severity
        ]
        return "\n".join(lines)

    def raise_for_errors(self) -> None:
        """Raise :class:`AnalysisError` if any error diagnostics exist."""
        if self.has_errors():
            raise AnalysisError(self.errors)
