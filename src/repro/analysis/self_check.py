"""Self-check: lint everything the system itself ships.

``repro lint --self-check`` runs the three analyzers over the paper's own
artifacts — the virtual-album queries Q1/Q2/Q3, the 4-branch mashup M1,
an :class:`~repro.core.album_builder.AlbumBuilder` composition, the
platform's D2R mapping against the real gallery schema, and a shape check
of the demo dump. This is the correctness gate CI runs; it must stay free
of error-severity diagnostics.

The module also knows how to lint files: ``.rq``/``.sparql`` files as
whole queries, ``.nt`` files as graphs (shape check) and ``.py`` files by
extracting every string literal that parses as a SPARQL query.
"""

from __future__ import annotations

import ast as python_ast
from pathlib import Path
from typing import List, Optional, Tuple

from .diagnostics import Diagnostic, DiagnosticReport
from .rules import make
from .sparql_lint import SparqlLinter

_QUERY_SUFFIXES = (".rq", ".sparql")


def builtin_queries() -> List[Tuple[str, str]]:
    """The paper's named queries: ``[(name, sparql), ...]``."""
    from ..core.album_builder import AlbumBuilder
    from ..core.albums import geo_album, rated_album, social_album
    from ..core.mashup import mashup_query
    from ..rdf.namespace import DBPR

    builder = (
        AlbumBuilder("self-check album")
        .near_label("Mole Antonelliana", lang="it", radius_km=0.5)
        .by_friend_of("oscar")
        .min_rating(3)
        .about_concept(DBPR.Mole_Antonelliana)
        .order_by_rating()
        .limit(20)
    )
    return [
        ("Q1", geo_album().query),
        ("Q2", social_album().query),
        ("Q3", rated_album().query),
        ("M1", mashup_query(pid=1)),
        ("builder", builder.sparql()),
    ]


def _demo_platform():
    """A small platform instance exercising every mapped table."""
    from ..platform import Capture, Platform
    from ..sparql.geo import Point

    platform = Platform()
    platform.register_user("oscar", "Oscar Rodriguez")
    platform.register_user("walter", "Walter Goix")
    platform.add_friendship("oscar", "walter")
    platform.upload(Capture(
        username="walter",
        title="Tramonto sulla Mole Antonelliana",
        tags=("mole", "torino"),
        timestamp=1_325_376_000,
        point=Point(7.6930, 45.0690),
    ))
    return platform


def self_check(linter: Optional[SparqlLinter] = None) -> DiagnosticReport:
    """Run the full self-check; returns the aggregated report."""
    from ..d2r.dump import dump_graph
    from ..lod.ontology import build_ontology
    from .d2r_lint import MappingLinter
    from .shapes import ShapeChecker

    if linter is None:
        linter = SparqlLinter.default()
    report = DiagnosticReport()
    for name, query in builtin_queries():
        report.extend(linter.lint(query, name=name))

    platform = _demo_platform()
    report.extend(
        MappingLinter().lint(platform.mapping, platform.db,
                             name="platform-mapping")
    )
    dump = dump_graph(platform.db, platform.mapping)
    checker = ShapeChecker(build_ontology())
    report.extend(checker.check(dump, name="d2r-dump"))
    return report


# ---------------------------------------------------------------------------
# File linting (CLI)
# ---------------------------------------------------------------------------


def lint_path(
    path: Path, linter: Optional[SparqlLinter] = None
) -> List[Diagnostic]:
    """Lint one file or directory (recursing over lintable suffixes)."""
    if linter is None:
        linter = SparqlLinter.default()
    if path.is_dir():
        diags: List[Diagnostic] = []
        for child in sorted(path.rglob("*")):
            if child.suffix in _QUERY_SUFFIXES + (".py", ".nt"):
                diags.extend(lint_path(child, linter))
        return diags
    if not path.exists():
        return [make(
            "SP000",
            "cannot read file: no such file or directory",
            source=str(path),
        )]
    if path.suffix in _QUERY_SUFFIXES:
        return _lint_query_file(path, linter)
    if path.suffix == ".py":
        return _lint_python_file(path, linter)
    if path.suffix == ".nt":
        return _lint_ntriples_file(path)
    return [make(
        "SP000",
        f"cannot lint {path.name!r}: unsupported file type "
        f"(expected .rq/.sparql/.py/.nt)",
        source=str(path),
    )]


def _lint_query_file(path: Path, linter: SparqlLinter) -> List[Diagnostic]:
    from ..sparql.errors import SparqlSyntaxError

    text = path.read_text(encoding="utf-8")
    try:
        return linter.lint(text, name=str(path))
    except SparqlSyntaxError as exc:
        return [make("SP000", f"syntax error: {exc}", source=str(path))]


def _lint_python_file(path: Path,
                      linter: SparqlLinter) -> List[Diagnostic]:
    """Extract and lint every string literal that parses as SPARQL."""
    diags: List[Diagnostic] = []
    text = path.read_text(encoding="utf-8")
    for query, lineno in extract_sparql_strings(text):
        diags.extend(linter.lint(query, name=f"{path}:{lineno}"))
    return diags


def extract_sparql_strings(text: str) -> List[Tuple[str, int]]:
    """String constants in Python source that parse as SPARQL queries.

    F-strings and concatenations are skipped (their query text is not
    statically known); constants that merely *look* like queries but do
    not parse are skipped too — a fragment is not a lintable artifact.
    """
    from ..sparql.errors import SparqlSyntaxError
    from ..sparql.parser import parse_query

    try:
        tree = python_ast.parse(text)
    except SyntaxError:
        return []
    found: List[Tuple[str, int]] = []
    for node in python_ast.walk(tree):
        if not isinstance(node, python_ast.Constant):
            continue
        value = node.value
        if not isinstance(value, str):
            continue
        upper = value.upper()
        if "WHERE" not in upper and "ASK" not in upper:
            continue
        if not any(form in upper for form in
                   ("SELECT", "ASK", "CONSTRUCT", "DESCRIBE")):
            continue
        try:
            parse_query(value)
        except SparqlSyntaxError:
            continue
        found.append((value, node.lineno))
    return found


def _lint_ntriples_file(path: Path) -> List[Diagnostic]:
    from ..lod.ontology import build_ontology
    from ..rdf import load_ntriples
    from .shapes import ShapeChecker

    try:
        graph = load_ntriples(path.read_text(encoding="utf-8"))
    except Exception as exc:  # parse errors vary by serializer
        return [make("SP000", f"cannot load N-Triples: {exc}",
                     source=str(path))]
    return ShapeChecker(build_ontology()).check(graph, name=str(path))
