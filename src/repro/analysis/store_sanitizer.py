"""Runtime store sanitizer: observe every quad-store access live.

Graph-writes: none

Concurrency: thread-safe

The static effect analyzer (:mod:`repro.analysis.effects`) proves
read/write discipline it can see in the AST; this module catches what
it cannot — the *actual* store traffic of a live run. While installed,
it patches the :class:`repro.rdf.graph.Graph` entry points:

* **writes** (``insert``, ``remove``, ``clear`` — ``add`` and
  ``add_all`` funnel through ``insert``) are counted, and the *caller's*
  module docstring is checked against its declared ``Graph-writes:``
  contract: a write issued from a module that declares
  ``Graph-writes: none`` is recorded as a **contract violation** (the
  runtime shadow of the EF008 lint rule). Modules without a contract
  are not flagged at runtime — that is the static EF006 warning's job;
* **reads** (``triples`` — ``subjects``/``objects``/``__iter__``/the
  SPARQL evaluator all route through it) are counted, and each returned
  iterator snapshots the graph's ``_version``: if the version moves
  between two ``__next__`` calls, the store was **mutated during
  iteration** (the runtime shadow of EF002) and one violation is
  recorded per iterator;
* counters are exported through the :mod:`repro.obs` metrics registry
  (``repro_store_*``) so sanitized runs surface in the same exposition
  as production metrics.

Wrapping only the ``Graph`` base class keeps the signal clean:
:class:`repro.rdf.graph.FrozenGraph` overrides every mutation entry
point to raise before any wrapper runs, so frozen views never count as
writes, and the sanitizer's own bookkeeping touches no graph.

Usage::

    sanitizer = StoreSanitizer()
    with sanitizer.installed():
        run_store_workload()
    report = sanitizer.report()
    assert not report.iter_mutations

or via the opt-in pytest fixture ``store_sanitizer`` (see
``tests/conftest.py``); ``REPRO_SANITIZE=1`` test runs install it for
every test alongside the lock sanitizer.

The ``enabled`` flag mirrors :class:`LockSanitizer`: a disabled
sanitizer's ``installed()`` is a no-op context manager, so call sites
keep the ``with`` structure unconditionally.
"""

from __future__ import annotations

import functools
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..obs import get_registry
from .effects import _WRITES_CONTRACT_RE

__all__ = [
    "StoreSanitizer",
    "StoreReport",
    "IterMutation",
    "ContractViolation",
]

#: Frames from these modules are the store's own plumbing (``add`` →
#: ``insert`` delegation, the wrappers themselves) — the *writer* for
#: contract purposes is the first frame outside them.
_PLUMBING_MODULES = frozenset({
    "repro.rdf.graph",
    # the MVCC storage engine: its writes to private base/overlay
    # graphs are store plumbing, attributed to the committing caller
    "repro.store.engine",
    "repro.store.facade",
    "repro.store.persistence",
    __name__,
})


def _thread_name() -> str:
    ident = threading.get_ident()
    thread = threading._active.get(ident)  # type: ignore[attr-defined]
    return thread.name if thread is not None else f"thread-{ident}"


@dataclass(frozen=True)
class IterMutation:
    """The store's version moved while an iterator was live."""

    identifier: str
    start_version: int
    seen_version: int
    thread: str

    def describe(self) -> str:
        return (
            f"store mutated during iteration of {self.identifier} in "
            f"{self.thread}: version {self.start_version} -> "
            f"{self.seen_version} between __next__ calls"
        )


@dataclass(frozen=True)
class ContractViolation:
    """A write issued from a module declaring ``Graph-writes: none``."""

    module: str
    op: str
    identifier: str

    def describe(self) -> str:
        return (
            f"{self.module} declares 'Graph-writes: none' but called "
            f"{self.op}() on {self.identifier}"
        )


@dataclass
class StoreReport:
    """Everything one sanitized run observed about store traffic."""

    reads: int = 0
    writes: int = 0
    iter_mutations: List[IterMutation] = field(default_factory=list)
    contract_violations: List[ContractViolation] = field(
        default_factory=list
    )

    @property
    def violations(self) -> int:
        return len(self.iter_mutations) + len(self.contract_violations)

    def render(self) -> str:
        lines = [
            f"reads:               {self.reads}",
            f"writes:              {self.writes}",
            f"iter mutations:      {len(self.iter_mutations)}",
            f"contract violations: {len(self.contract_violations)}",
        ]
        for mutation in self.iter_mutations:
            lines.append(f"  ITER MUTATION {mutation.describe()}")
        for violation in self.contract_violations:
            lines.append(f"  CONTRACT {violation.describe()}")
        return "\n".join(lines)


class StoreSanitizer:
    """Patch ``Graph`` access points to record store traffic.

    Parameters
    ----------
    enabled:
        A disabled sanitizer installs nothing; ``installed()`` becomes
        a no-op so the guard costs one attribute check.
    """

    _WRITE_OPS = ("insert", "remove", "clear")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._state_lock = threading.Lock()
        self._reads = 0
        self._writes = 0
        self._iter_mutations: List[IterMutation] = []
        self._contract_violations: List[ContractViolation] = []
        #: module name -> its ``Graph-writes:`` contract value (or
        #: ``None`` when the module declares nothing)
        self._contract_cache: Dict[str, Optional[str]] = {}
        self._installed = False
        registry = get_registry()
        self._read_counter = registry.counter(
            "repro_store_reads_total",
            "Graph read iterations observed by the store sanitizer",
        )
        self._write_counter = registry.counter(
            "repro_store_writes_total",
            "Graph write operations observed by the store sanitizer",
        )
        self._iter_counter = registry.counter(
            "repro_store_iter_mutations_total",
            "Mutations of a graph during a live iteration",
        )
        self._contract_counter = registry.counter(
            "repro_store_contract_violations_total",
            "Writes issued from modules declaring 'Graph-writes: none'",
        )

    # -- installation ---------------------------------------------------
    @contextmanager
    def installed(self) -> Iterator["StoreSanitizer"]:
        """Patch the ``Graph`` entry points for the ``with`` body."""
        if not self.enabled or self._installed:
            yield self
            return
        from ..rdf.graph import Graph

        originals = {
            name: Graph.__dict__[name]
            for name in self._WRITE_OPS + ("triples",)
        }
        for op in self._WRITE_OPS:
            setattr(Graph, op, self._wrap_write(originals[op], op))
        Graph.triples = self._wrap_triples(  # type: ignore[assignment]
            originals["triples"]
        )
        self._installed = True
        try:
            yield self
        finally:
            for name, original in originals.items():
                setattr(Graph, name, original)
            self._installed = False

    # -- wrappers -------------------------------------------------------
    def _wrap_write(self, original, op: str):
        sanitizer = self

        @functools.wraps(original)
        def wrapper(graph, *args, **kwargs):
            sanitizer._on_write(graph, op)
            return original(graph, *args, **kwargs)

        return wrapper

    def _wrap_triples(self, original):
        sanitizer = self

        @functools.wraps(original)
        def wrapper(graph, pattern=(None, None, None)):
            sanitizer._on_read()
            start = graph._version
            reported = False
            iterator = original(graph, pattern)
            while True:
                try:
                    triple = next(iterator)
                except StopIteration:
                    return
                except RuntimeError:
                    # the underlying index dict blew up mid-iteration
                    # ("dictionary changed size ...") — that IS the
                    # violation; record it before propagating
                    if not reported and graph._version != start:
                        sanitizer._on_iter_mutation(
                            graph, start, graph._version
                        )
                    raise
                if not reported and graph._version != start:
                    reported = True
                    sanitizer._on_iter_mutation(
                        graph, start, graph._version
                    )
                yield triple

        return wrapper

    # -- recording ------------------------------------------------------
    def _on_read(self) -> None:
        with self._state_lock:
            self._reads += 1
        self._read_counter.inc()

    def _on_write(self, graph, op: str) -> None:
        with self._state_lock:
            self._writes += 1
        self._write_counter.inc()
        module, doc = self._writer_module()
        if self._contract_value(module, doc) == "none":
            violation = ContractViolation(
                module=module, op=op,
                identifier=str(graph.identifier),
            )
            with self._state_lock:
                self._contract_violations.append(violation)
            self._contract_counter.inc()

    def _on_iter_mutation(
        self, graph, start: int, seen: int
    ) -> None:
        mutation = IterMutation(
            identifier=str(graph.identifier),
            start_version=start,
            seen_version=seen,
            thread=_thread_name(),
        )
        with self._state_lock:
            self._iter_mutations.append(mutation)
        self._iter_counter.inc()

    def _writer_module(self):
        """The first caller frame outside the store's own plumbing."""
        frame = sys._getframe(2)  # skip _on_write and the wrapper
        while frame is not None:
            name = frame.f_globals.get("__name__", "")
            if name not in _PLUMBING_MODULES:
                return name, frame.f_globals.get("__doc__")
            frame = frame.f_back
        return "<unknown>", None

    def _contract_value(
        self, module: str, doc: Optional[str]
    ) -> Optional[str]:
        with self._state_lock:
            if module in self._contract_cache:
                return self._contract_cache[module]
        value: Optional[str] = None
        if doc:
            match = _WRITES_CONTRACT_RE.search(doc)
            if match is not None:
                value = match.group("value")
        with self._state_lock:
            self._contract_cache[module] = value
        return value

    # -- results --------------------------------------------------------
    def report(self) -> StoreReport:
        with self._state_lock:
            return StoreReport(
                reads=self._reads,
                writes=self._writes,
                iter_mutations=list(self._iter_mutations),
                contract_violations=list(self._contract_violations),
            )

    def reset(self) -> None:
        with self._state_lock:
            self._reads = 0
            self._writes = 0
            self._iter_mutations.clear()
            self._contract_violations.clear()
