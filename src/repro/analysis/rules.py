"""The rule registry: every diagnostic the analyzers can emit.

Rule ids are stable (tests and suppressions key on them); default
severities live here so the analyzers and the documentation table cannot
drift apart. ``SP*`` rules come from the SPARQL linter, ``DM*`` from the
D2R mapping linter, ``SH*`` from the graph shape checker and ``CC*``
from the concurrency analyzer (:mod:`repro.analysis.concurrency`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .diagnostics import Diagnostic, Severity, Span


@dataclass(frozen=True)
class Rule:
    """One registered rule: stable id, summary, default severity."""

    id: str
    title: str
    severity: Severity
    component: str  # "sparql" | "d2r" | "shape"


_RULES = [
    # --- SPARQL linter -----------------------------------------------------
    Rule("SP000", "artifact could not be parsed / loaded",
         Severity.ERROR, "sparql"),
    Rule("SP001", "projected variable never bound in the pattern",
         Severity.ERROR, "sparql"),
    Rule("SP002", "variable used in FILTER/ORDER BY/BIND but never bound",
         Severity.ERROR, "sparql"),
    Rule("SP003", "undeclared prefix resolved via the default prefix table",
         Severity.WARNING, "sparql"),
    Rule("SP004", "predicate not present in the known vocabulary",
         Severity.ERROR, "sparql"),
    Rule("SP005", "class not present in the known vocabulary",
         Severity.ERROR, "sparql"),
    Rule("SP006", "disconnected graph pattern (cartesian product)",
         Severity.WARNING, "sparql"),
    Rule("SP007", "filter condition is always false",
         Severity.ERROR, "sparql"),
    Rule("SP008", "misuse of a bif: extension function",
         Severity.ERROR, "sparql"),
    Rule("SP009", "variable occurs exactly once (possible typo)",
         Severity.INFO, "sparql"),
    # --- Query planner (repro.analysis.plan) -------------------------------
    Rule("SP010", "constant FILTER expression folded at plan time",
         Severity.INFO, "sparql"),
    Rule("SP011", "FILTER pushed down into the basic graph pattern "
         "binding its variables", Severity.INFO, "sparql"),
    Rule("SP012", "triple patterns reordered by estimated selectivity",
         Severity.INFO, "sparql"),
    Rule("SP013", "join order forces a cartesian product",
         Severity.WARNING, "sparql"),
    Rule("SP014", "provably empty pattern pruned from the plan",
         Severity.WARNING, "sparql"),
    Rule("SP015", "redundant DISTINCT eliminated",
         Severity.INFO, "sparql"),
    Rule("SP016", "redundant ORDER BY eliminated",
         Severity.INFO, "sparql"),
    # --- D2R mapping linter ------------------------------------------------
    Rule("DM001", "URI pattern placeholder is not a column of the table",
         Severity.ERROR, "d2r"),
    Rule("DM002", "mapped column does not exist in the table",
         Severity.ERROR, "d2r"),
    Rule("DM003", "link targets a table with no table map",
         Severity.ERROR, "d2r"),
    Rule("DM004", "link target cannot be resolved (missing table or no "
         "primary key)", Severity.ERROR, "d2r"),
    Rule("DM005", "duplicate URI pattern across table maps",
         Severity.WARNING, "d2r"),
    Rule("DM006", "declared datatype is incompatible with the column type",
         Severity.ERROR, "d2r"),
    Rule("DM007", "table map refers to a table missing from the schema",
         Severity.ERROR, "d2r"),
    Rule("DM008", "keyword split over a non-text column",
         Severity.WARNING, "d2r"),
    Rule("DM009", "URI pattern has no placeholders (constant subject)",
         Severity.WARNING, "d2r"),
    Rule("DM010", "property declares both a language tag and a datatype",
         Severity.WARNING, "d2r"),
    # --- Graph shape checker -----------------------------------------------
    Rule("SH001", "subject type violates the predicate's rdfs:domain",
         Severity.WARNING, "shape"),
    Rule("SH002", "object violates the predicate's rdfs:range",
         Severity.WARNING, "shape"),
    Rule("SH003", "cardinality bound exceeded",
         Severity.WARNING, "shape"),
    Rule("SH004", "subject of a domain-constrained predicate has no type",
         Severity.INFO, "shape"),
    # --- Concurrency analyzer ----------------------------------------------
    Rule("CC001", "attribute guarded by a lock elsewhere is accessed "
         "unguarded", Severity.ERROR, "concurrency"),
    Rule("CC002", "inconsistent nested lock acquisition order "
         "(potential deadlock cycle)", Severity.ERROR, "concurrency"),
    Rule("CC003", "blocking call or injected callback invoked while "
         "holding a lock", Severity.ERROR, "concurrency"),
    Rule("CC004", "mutable state captured by an executor-submitted "
         "closure without a guard", Severity.WARNING, "concurrency"),
    Rule("CC005", "lock created per-call instead of per-instance",
         Severity.ERROR, "concurrency"),
    Rule("CC006", "lock acquired manually without a try/finally release",
         Severity.WARNING, "concurrency"),
    Rule("CC007", "nested acquisition of a non-reentrant lock "
         "(self-deadlock)", Severity.ERROR, "concurrency"),
    Rule("CC008", "class-level mutable attribute mutated through "
         "instances (shared across all instances)",
         Severity.WARNING, "concurrency"),
    Rule("CC009", "condition wait() outside a predicate re-check loop",
         Severity.WARNING, "concurrency"),
    Rule("CC010", "module-level mutable state mutated without a guard "
         "in a threaded module", Severity.WARNING, "concurrency"),
    # --- Store-effect analyzer ---------------------------------------------
    Rule("EF001", "direct mutation of Graph index internals "
         "(_spo/_pos/_osp) outside repro.rdf.graph",
         Severity.ERROR, "effects"),
    Rule("EF002", "graph writer called while iterating a live "
         "triples()/subjects()/__iter__ generator of the same store",
         Severity.ERROR, "effects"),
    Rule("EF003", "mutation of a graph obtained from "
         "Dataset.union_graph() (derived copy; the write is lost)",
         Severity.ERROR, "effects"),
    Rule("EF004", "bare statistics read on a write path without a "
         "freshness/cached() check", Severity.WARNING, "effects"),
    Rule("EF005", "live reference to a Graph internal index dict "
         "stored or returned (snapshot escape)",
         Severity.ERROR, "effects"),
    Rule("EF006", "module performs graph writes without declaring a "
         "'Graph-writes:' docstring contract",
         Severity.WARNING, "effects"),
    Rule("EF007", "io/clock effect inferred in a module declared "
         "'Effects: pure'", Severity.ERROR, "effects"),
    Rule("EF008", "function transitively writes the store in a module "
         "whose contract is 'Graph-writes: none'",
         Severity.ERROR, "effects"),
    Rule("EF009", "Dataset.remove_graph() result ignored (removal "
         "untracked)", Severity.WARNING, "effects"),
    Rule("EF010", "inferred effects exceed the function's declared "
         "'Effects:' summary", Severity.WARNING, "effects"),
]

#: Version of the rule catalog, embedded in ``repro lint --json``
#: envelopes so CI artifact diffs can tell rule-set drift from real
#: regressions. Bump whenever a rule is added, removed or re-tiered.
CATALOG_VERSION = "2026.08"

RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULES}


def rule(rule_id: str) -> Rule:
    if rule_id not in RULES:
        raise KeyError(f"unknown rule id {rule_id!r}")
    return RULES[rule_id]


def make(
    rule_id: str,
    message: str,
    span: Optional[Span] = None,
    suggestion: Optional[str] = None,
    source: Optional[str] = None,
    severity: Optional[Severity] = None,
    line: Optional[int] = None,
) -> Diagnostic:
    """Build a diagnostic for ``rule_id`` with its default severity."""
    registered = rule(rule_id)
    return Diagnostic(
        rule=registered.id,
        severity=registered.severity if severity is None else severity,
        message=message,
        span=span,
        suggestion=suggestion,
        source=source,
        line=line,
    )
