"""Graph shape checker — a mini SHACL in the spirit of LOD browsers.

Validates lifted/annotated triples against the schema the ontology graph
declares: ``rdfs:domain``/``rdfs:range`` signatures (closed over
``rdfs:subClassOf``) plus optional per-predicate cardinality bounds. The
platform's D2R dump and the annotation pipeline's output both pass
through here in ``repro lint --self-check``.

Rules: SH001 domain violation, SH002 range violation, SH003 cardinality
bound exceeded, SH004 untyped subject of a domain-constrained predicate.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.namespace import (
    DC,
    DCTERMS,
    FOAF,
    GEO,
    RDF,
    RDFS,
    REV,
)
from ..rdf.terms import Literal, Term, URIRef
from .diagnostics import Diagnostic
from .rules import make

#: Functional-ish platform predicates: at most one value per subject.
DEFAULT_CARDINALITIES: Dict[str, int] = {
    str(GEO.geometry): 1,
    str(REV.rating): 1,
    str(FOAF.name): 1,
    str(DC.title): 1,
    str(DCTERMS.created): 1,
}


class ShapeChecker:
    """Domain/range/cardinality validation against an ontology graph."""

    def __init__(
        self,
        ontology: Graph,
        cardinalities: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.domains: Dict[str, Set[str]] = {}
        self.ranges: Dict[str, Set[str]] = {}
        self._superclasses: Dict[str, Set[str]] = {}
        self.cardinalities: Dict[str, int] = dict(
            DEFAULT_CARDINALITIES if cardinalities is None
            else cardinalities
        )
        self._load_ontology(ontology)

    def _load_ontology(self, ontology: Graph) -> None:
        direct_super: Dict[str, Set[str]] = {}
        for s, p, o in ontology:
            p_str = str(p)
            if p_str == str(RDFS.subClassOf):
                direct_super.setdefault(str(s), set()).add(str(o))
            elif p_str == str(RDFS.domain):
                self.domains.setdefault(str(s), set()).add(str(o))
            elif p_str == str(RDFS.range):
                self.ranges.setdefault(str(s), set()).add(str(o))
        # transitive closure of subClassOf (the hierarchies are tiny)
        for cls in direct_super:
            closure: Set[str] = set()
            stack = list(direct_super[cls])
            while stack:
                super_cls = stack.pop()
                if super_cls in closure:
                    continue
                closure.add(super_cls)
                stack.extend(direct_super.get(super_cls, ()))
            self._superclasses[cls] = closure

    def _class_closure(self, classes: Set[str]) -> Set[str]:
        closure = set(classes)
        for cls in classes:
            closure |= self._superclasses.get(cls, set())
        return closure

    # ------------------------------------------------------------------
    def check(
        self, graph: Graph, name: Optional[str] = None
    ) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        types: Dict[Term, Set[str]] = {}
        rdf_type = RDF.type
        for s, p, o in graph:
            if p == rdf_type and isinstance(o, URIRef):
                types.setdefault(s, set()).add(str(o))

        counts: Dict[Tuple[Term, str], Set[Term]] = {}
        for s, p, o in sorted(
            graph, key=lambda t: (str(t[0]), str(t[1]), str(t[2]))
        ):
            p_str = str(p)
            if p_str in self.cardinalities:
                counts.setdefault((s, p_str), set()).add(o)
            self._check_domain(s, p_str, types, name, diags)
            self._check_range(o, p_str, types, name, diags)

        for (subject, predicate), objects in sorted(
            counts.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
        ):
            bound = self.cardinalities[predicate]
            if len(objects) > bound:
                diags.append(make(
                    "SH003",
                    f"<{subject}> has {len(objects)} distinct values "
                    f"for <{predicate}> (declared max {bound})",
                    source=name,
                ))
        return diags

    def _check_domain(self, subject, predicate, types, name,
                      diags) -> None:
        declared = self.domains.get(predicate)
        if not declared:
            return
        subject_types = types.get(subject)
        if not subject_types:
            diags.append(make(
                "SH004",
                f"<{subject}> uses <{predicate}> (domain "
                f"{_fmt_classes(declared)}) but has no rdf:type",
                source=name,
            ))
            return
        closure = self._class_closure(subject_types)
        if not closure & declared:
            diags.append(make(
                "SH001",
                f"<{subject}> is typed {_fmt_classes(subject_types)} "
                f"but <{predicate}> declares domain "
                f"{_fmt_classes(declared)}",
                source=name,
            ))

    def _check_range(self, obj, predicate, types, name, diags) -> None:
        declared = self.ranges.get(predicate)
        if not declared:
            return
        if isinstance(obj, Literal):
            diags.append(make(
                "SH002",
                f"<{predicate}> declares range "
                f"{_fmt_classes(declared)} but the object is the "
                f"literal {obj.lexical!r}",
                source=name,
            ))
            return
        object_types = types.get(obj)
        if not object_types:
            return  # open world: untyped resources are not violations
        closure = self._class_closure(object_types)
        if not closure & declared:
            diags.append(make(
                "SH002",
                f"<{obj}> is typed {_fmt_classes(object_types)} but "
                f"<{predicate}> declares range {_fmt_classes(declared)}",
                source=name,
            ))


def _fmt_classes(classes: Set[str]) -> str:
    return ", ".join(f"<{c}>" for c in sorted(classes))
