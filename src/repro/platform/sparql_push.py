"""sparqlPuSH — proactive notification of RDF store updates.

Graph-writes: none

The paper cites Passant & Mendes' sparqlPuSH [10] as a direct influence:
"proactive notification of data updates in RDF stores using
PubSubHubbub". A client registers a SPARQL SELECT as a subscription;
whenever the store changes, the query is re-evaluated and — if its
result set changed — the delta is published through the hub, so mobile
clients learn about new matching content without polling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Tuple, Union

from ..federation.pubsub import Hub
from ..rdf.graph import Graph
from ..sparql.evaluator import Evaluator
from ..sparql.results import SelectResult


class SparqlPushError(Exception):
    """Invalid subscription (non-SELECT query, unknown id)."""


def _row_key(row) -> Tuple:
    return tuple(sorted((str(k), v) for k, v in row.items()))


@dataclass
class _Registration:
    query: str
    topic: str
    last_rows: FrozenSet[Tuple] = frozenset()


#: A graph, a zero-argument callable returning the current graph
#: (``platform.union_graph`` — re-pulled on every evaluation), or an
#: MVCC quad-store (``repro.store.QuadStore`` — its pinned union head
#: is re-pulled per round, duck-typed to avoid the import).
GraphSource = Union[Graph, Callable[[], Graph]]


class SparqlPushService:
    """Re-evaluates registered queries on store updates and publishes
    the row-level deltas through a PubSubHubbub-style hub.

    ``graph`` may be a live :class:`~repro.rdf.graph.Graph` or a
    zero-argument *provider* callable. Pass the provider form
    (``SparqlPushService(platform.union_graph)``) when the store hands
    out derived read-only snapshots: each :meth:`notify_update` then
    re-pulls the current union instead of watching a stale copy —
    previously callers had to hand-feed new triples into the snapshot,
    exactly the lost-write pattern the EF003 lint rule rejects.

    A :class:`repro.store.QuadStore` source works the same way with no
    callable needed: each round pins the store's current head, so all
    registered queries in one :meth:`notify_update` evaluate against a
    single MVCC generation even while writers keep committing.
    """

    def __init__(
        self, graph: GraphSource, hub: Optional[Hub] = None
    ) -> None:
        self._source: GraphSource = graph
        self.hub = hub or Hub()
        self._registrations: Dict[str, _Registration] = {}
        self._counter = itertools.count(1)

    @property
    def graph(self) -> Graph:
        """The graph queries currently evaluate against."""
        if callable(self._source):
            return self._source()
        head = getattr(self._source, "head", None)
        if callable(head) and hasattr(self._source, "dataset_snapshot"):
            # a quad-store: one pinned generation per notify round, so
            # every registered query in the round sees the same data
            return head()
        return self._source

    # ------------------------------------------------------------------
    def register(self, query: str) -> str:
        """Register a SELECT query; returns the subscription id whose
        topic is ``sparqlpush:<id>``."""
        result = Evaluator(self.graph).evaluate(query)
        if not isinstance(result, SelectResult):
            raise SparqlPushError(
                "only SELECT queries can be registered"
            )
        sub_id = f"q{next(self._counter)}"
        registration = _Registration(
            query=query,
            topic=f"sparqlpush:{sub_id}",
            last_rows=frozenset(_row_key(r) for r in result),
        )
        self._registrations[sub_id] = registration
        return sub_id

    def unregister(self, sub_id: str) -> None:
        if sub_id not in self._registrations:
            raise SparqlPushError(f"unknown subscription: {sub_id}")
        del self._registrations[sub_id]

    def topic(self, sub_id: str) -> str:
        if sub_id not in self._registrations:
            raise SparqlPushError(f"unknown subscription: {sub_id}")
        return self._registrations[sub_id].topic

    def listen(
        self, sub_id: str, subscriber_id: str,
        callback: Callable[[str, object], None],
    ) -> None:
        """Subscribe a client callback to a registered query's topic."""
        self.hub.subscribe(
            subscriber_id, self.topic(sub_id), callback,
            verify=lambda challenge: challenge,
        )

    # ------------------------------------------------------------------
    def notify_update(self) -> Dict[str, int]:
        """Call after mutating the store: re-evaluates every registered
        query and publishes per-query deltas. Returns sub_id →
        deliveries."""
        deliveries: Dict[str, int] = {}
        graph = self.graph  # one provider pull for the whole round
        for sub_id, registration in self._registrations.items():
            result = Evaluator(graph).evaluate(registration.query)
            assert isinstance(result, SelectResult)
            rows_by_key = {_row_key(r): r for r in result}
            current = frozenset(rows_by_key)
            if current == registration.last_rows:
                continue
            added_keys = current - registration.last_rows
            removed = len(registration.last_rows - current)
            payload = {
                "query": registration.query,
                "added": [
                    {str(k): str(v) for k, v in rows_by_key[key].items()}
                    for key in sorted(added_keys)
                ],
                "removed_count": removed,
            }
            deliveries[sub_id] = self.hub.publish(
                registration.topic, payload
            )
            registration.last_rows = current
        return deliveries
