"""The web interface (paper §3).

"The platform's web interface offers users an environment to perform
many operations: from personal profile and social features management to
content browsing or advanced content editing. It's targeted for modern
web browsers and when it is accessed from a mobile device, redirects the
user automatically to the mobile interface (giving also the possibility
to switch back to the normal web interface)."

This module models that surface as plain request/response objects:
user-agent sniffing with the mobile redirect and the manual override,
session login through the OpenID relying party, profile and friendship
management, paginated content browsing, and the editing operations
(title/tags, graphical region annotations, deletion) the gallery core
exposes.
"""

from __future__ import annotations

import functools
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..obs import get_registry, get_tracer
from .gallery import Platform
from .identity import OpenIdError, RelyingParty
from .models import ContentItem


def _traced(route: str):
    """Per-request instrumentation for a :class:`WebInterface` method:
    a ``web.<route>`` span plus request counter and latency histogram
    labelled by route."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            began = time.perf_counter()
            status = "ok"
            with get_tracer().span(f"web.{route}"):
                try:
                    return fn(self, *args, **kwargs)
                except Exception:
                    status = "error"
                    raise
                finally:
                    registry = get_registry()
                    registry.counter(
                        "repro_web_requests_total",
                        "Web interface requests by route and status.",
                    ).labels(route=route, status=status).inc()
                    registry.histogram(
                        "repro_web_request_seconds",
                        "Web interface request latency by route.",
                    ).labels(route=route).observe(
                        time.perf_counter() - began
                    )

        return wrapper

    return decorate


#: Substrings that identify 2012-era mobile browsers.
MOBILE_UA_MARKERS = (
    "iphone", "ipod", "android", "blackberry", "windows phone",
    "symbian", "opera mini", "opera mobi", "mobile safari",
)


def is_mobile_user_agent(user_agent: str) -> bool:
    lowered = user_agent.lower()
    return any(marker in lowered for marker in MOBILE_UA_MARKERS)


@dataclass(frozen=True)
class RouteDecision:
    """Where a request lands: desktop or mobile interface."""

    interface: str  # "web" | "mobile"
    redirected: bool


@dataclass
class Page:
    """One page of a content listing."""

    items: List[ContentItem]
    page: int
    page_size: int
    total: int

    @property
    def pages(self) -> int:
        if self.total == 0:
            return 1
        return -(-self.total // self.page_size)

    @property
    def has_next(self) -> bool:
        return self.page < self.pages


class WebSession:
    """An authenticated browsing session."""

    _ids = itertools.count(1)

    def __init__(self, username: str, interface: str) -> None:
        self.session_id = f"sess-{next(self._ids)}"
        self.username = username
        self.interface = interface
        self.forced_interface: Optional[str] = None


class WebInterface:
    """The request-level façade over a :class:`Platform`."""

    def __init__(
        self,
        platform: Platform,
        relying_party: Optional[RelyingParty] = None,
    ) -> None:
        self.platform = platform
        self.relying_party = relying_party or RelyingParty()
        self._sessions: Dict[str, WebSession] = {}

    # ------------------------------------------------------------------
    # Routing (§3: automatic mobile redirect + manual switch back)
    # ------------------------------------------------------------------
    @_traced("route")
    def route(
        self,
        user_agent: str,
        session: Optional[WebSession] = None,
    ) -> RouteDecision:
        if session is not None and session.forced_interface is not None:
            return RouteDecision(session.forced_interface, False)
        if is_mobile_user_agent(user_agent):
            return RouteDecision("mobile", True)
        return RouteDecision("web", False)

    def switch_interface(self, session: WebSession, interface: str) -> None:
        """The "switch back to the normal web interface" control."""
        if interface not in ("web", "mobile"):
            raise ValueError(f"unknown interface: {interface!r}")
        session.forced_interface = interface

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    @_traced("login")
    def login_with_openid(
        self, claimed_id: str, user_agent: str = ""
    ) -> WebSession:
        """OpenID sign-in: the claimed id must belong to a registered
        platform user (matched on the stored openid column)."""
        authenticated = self.relying_party.authenticate(claimed_id)
        for row in self.platform.db.table("users").scan():
            if row["openid"] == authenticated:
                session = WebSession(
                    row["user_name"],
                    self.route(user_agent).interface,
                )
                self._sessions[session.session_id] = session
                return session
        raise OpenIdError(
            f"no platform account for {authenticated}"
        )

    def session(self, session_id: str) -> WebSession:
        if session_id not in self._sessions:
            raise KeyError(f"unknown session: {session_id}")
        return self._sessions[session_id]

    def logout(self, session: WebSession) -> None:
        self._sessions.pop(session.session_id, None)

    # ------------------------------------------------------------------
    # Profile and social management
    # ------------------------------------------------------------------
    @_traced("update-profile")
    def update_profile(
        self,
        session: WebSession,
        full_name: Optional[str] = None,
        email: Optional[str] = None,
    ) -> None:
        changes = []
        if full_name is not None:
            escaped = full_name.replace("'", "''")
            changes.append(f"full_name = '{escaped}'")
        if email is not None:
            escaped = email.replace("'", "''")
            changes.append(f"email = '{escaped}'")
        if changes:
            self.platform.db.execute(
                f"UPDATE users SET {', '.join(changes)} "
                f"WHERE user_name = '{session.username}'"
            )
            self.platform._dirty = True

    def profile(self, username: str) -> dict:
        row = self.platform.db.table("users").get(username)
        if row is None:
            raise KeyError(f"unknown user: {username}")
        return row

    @_traced("add-friend")
    def add_friend(self, session: WebSession, other: str) -> None:
        self.platform.add_friendship(session.username, other)

    @_traced("friends")
    def friends_of(self, username: str) -> List[str]:
        result = self.platform.db.execute(
            f"SELECT user_b FROM friends WHERE user_a = '{username}' "
            "ORDER BY user_b"
        )
        return [row[0] for row in result]

    # ------------------------------------------------------------------
    # Content browsing
    # ------------------------------------------------------------------
    @_traced("browse")
    def browse(
        self,
        page: int = 1,
        page_size: int = 10,
        owner: Optional[str] = None,
        order: str = "newest",
    ) -> Page:
        """Paginated content listing, newest first by default."""
        if page < 1 or page_size < 1:
            raise ValueError("page and page_size must be >= 1")
        items = self.platform.contents()
        if owner is not None:
            items = [i for i in items if i.owner == owner]
        if order == "newest":
            items.sort(key=lambda i: (-i.timestamp, i.pid))
        elif order == "top-rated":
            items.sort(key=lambda i: (-i.rating, i.pid))
        else:
            raise ValueError(f"unknown order: {order!r}")
        start = (page - 1) * page_size
        return Page(
            items=items[start : start + page_size],
            page=page,
            page_size=page_size,
            total=len(items),
        )

    # ------------------------------------------------------------------
    # Advanced content editing (owner-only)
    # ------------------------------------------------------------------
    def _require_owner(self, session: WebSession, pid: int) -> None:
        if self.platform.content(pid).owner != session.username:
            raise PermissionError(
                f"{session.username} does not own content #{pid}"
            )

    @_traced("edit-content")
    def edit_content(
        self,
        session: WebSession,
        pid: int,
        title: Optional[str] = None,
        tags: Optional[Sequence[str]] = None,
    ) -> ContentItem:
        self._require_owner(session, pid)
        return self.platform.edit_content(
            pid, title=title,
            tags=list(tags) if tags is not None else None,
        )

    @_traced("delete-content")
    def delete_content(self, session: WebSession, pid: int) -> None:
        self._require_owner(session, pid)
        self.platform.delete_content(pid)

    @_traced("annotate-region")
    def annotate_region(
        self,
        session: WebSession,
        pid: int,
        x: float,
        y: float,
        width: float,
        height: float,
        note: Optional[str] = None,
    ) -> int:
        self._require_owner(session, pid)
        return self.platform.annotate_region(
            pid, x, y, width, height, note
        )
