"""Platform domain objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..rdf.namespace import TL_PID, TL_USER
from ..rdf.terms import URIRef
from ..sparql.geo import Point


class MediaType(enum.Enum):
    PHOTO = "photo"
    VIDEO = "video"


@dataclass(frozen=True)
class Capture:
    """What the mobile client produces at shutter time (§1.1): media,
    user-defined title and tags, capture timestamp and GPS when
    available. Uploads may be deferred, so everything is bound to the
    *creation* timestamp."""

    username: str
    title: str
    tags: Tuple[str, ...]
    timestamp: int
    point: Optional[Point] = None
    media_type: MediaType = MediaType.PHOTO
    media_url: Optional[str] = None
    poi_recs_id: Optional[int] = None  # explicit POI association


@dataclass
class ContentItem:
    """A stored content item (a row of the ``pictures`` table + context)."""

    pid: int
    owner: str
    title: str
    plain_tags: List[str]
    context_tags: List[str]
    timestamp: int
    media_type: MediaType
    media_url: str
    point: Optional[Point] = None
    rating: float = 0.0

    @property
    def resource(self) -> URIRef:
        return TL_PID[str(self.pid)]

    @property
    def all_tags(self) -> List[str]:
        return self.plain_tags + self.context_tags


@dataclass
class PlatformUser:
    """A registered user."""

    username: str
    full_name: str
    email: Optional[str] = None
    openid: Optional[str] = None
    external_accounts: Tuple[str, ...] = ()

    @property
    def resource(self) -> URIRef:
        return TL_USER[self.username]
