"""Deferred upload queue (paper §1.1).

"To overcome problems of limited connectivity and battery management,
the client supports a deferred content uploading procedure. Pictures,
videos and related metadata are associated to their creation timestamp."

The queue buffers captures while "offline"; :meth:`flush` delivers them
in capture order once connectivity returns. Context is always computed
for the *capture* timestamp, never the upload time — the tests pin that
property.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .models import Capture


class DeferredUploadQueue:
    """Client-side buffer of captures awaiting connectivity."""

    def __init__(self) -> None:
        self._queue: List[Capture] = []
        self.online = True

    def capture(
        self, capture: Capture, upload: Optional[Callable] = None
    ) -> Optional[object]:
        """Record a capture; uploads immediately when online and an
        upload callable is supplied, else enqueues."""
        if self.online and upload is not None:
            return upload(capture)
        self._queue.append(capture)
        return None

    def go_offline(self) -> None:
        self.online = False

    def go_online(self) -> None:
        self.online = True

    def __len__(self) -> int:
        return len(self._queue)

    def flush(self, upload: Callable) -> List[object]:
        """Deliver all buffered captures in capture-time order."""
        if not self.online:
            raise RuntimeError("cannot flush while offline")
        pending = sorted(self._queue, key=lambda c: c.timestamp)
        self._queue.clear()
        return [upload(capture) for capture in pending]
