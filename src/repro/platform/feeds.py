"""Context-filtered feed syndication (paper §1.1).

"Content can be syndicated as context-filtered feeds in order to enable
social services." Feeds are Atom documents generated from a tag-album
filter over the platform's content.
"""

from __future__ import annotations

from typing import Iterable, List, Optional
from xml.sax.saxutils import escape

from .models import ContentItem
from .tag_albums import TagAlbum


def render_atom_feed(
    items: Iterable[ContentItem],
    title: str,
    feed_id: str = "http://beta.teamlife.it/feeds/all",
) -> str:
    """Serialize content items as an Atom feed document."""
    entries: List[str] = []
    latest = 0
    for item in items:
        latest = max(latest, item.timestamp)
        categories = "".join(
            f'    <category term="{escape(tag)}"/>\n'
            for tag in item.all_tags
        )
        entries.append(
            "  <entry>\n"
            f"    <id>{escape(str(item.resource))}</id>\n"
            f"    <title>{escape(item.title)}</title>\n"
            f"    <author><name>{escape(item.owner)}</name></author>\n"
            f"    <updated>{_timestamp(item.timestamp)}</updated>\n"
            f'    <link rel="enclosure" href="{escape(item.media_url)}"/>\n'
            f"{categories}"
            "  </entry>\n"
        )
    return (
        '<?xml version="1.0" encoding="utf-8"?>\n'
        '<feed xmlns="http://www.w3.org/2005/Atom">\n'
        f"  <id>{escape(feed_id)}</id>\n"
        f"  <title>{escape(title)}</title>\n"
        f"  <updated>{_timestamp(latest)}</updated>\n"
        + "".join(entries)
        + "</feed>\n"
    )


def _timestamp(epoch: int) -> str:
    """Epoch seconds → RFC 3339 (UTC), computed without datetime.now()."""
    import datetime

    moment = datetime.datetime.fromtimestamp(
        epoch, tz=datetime.timezone.utc
    )
    return moment.strftime("%Y-%m-%dT%H:%M:%SZ")


def context_filtered_feed(
    items: Iterable[ContentItem],
    album: TagAlbum,
    title: str,
    feed_id: Optional[str] = None,
) -> str:
    """An Atom feed restricted to the contents matching ``album``."""
    selected = album.select(items)
    return render_atom_feed(
        selected,
        title,
        feed_id or "http://beta.teamlife.it/feeds/filtered",
    )
