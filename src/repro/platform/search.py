"""The mobile search interface (paper §4, Figures 2–3) and the keyword
baseline it replaced.

The AJAX search box fires "2 seconds after the last keystroke is
pressed" (modeled by :class:`Debouncer`), suggests matching LOD
resources for the typed prefix, and — once the user picks one — lists
the content associated with that resource: items annotated with it, or
geo-located near it. Results can be filtered by the user's own position
("the possibility of filtering geographically the results").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..rdf.namespace import DCTERMS, GEO, GN, RDFS
from ..rdf.terms import Literal, Term, URIRef
from ..sparql.fulltext import FullTextIndex, tokenize_text
from ..sparql.geo import Point, haversine_km, try_parse_point
from .models import ContentItem

#: The paper's debounce interval.
DEBOUNCE_SECONDS = 2.0

#: Content counts as "associated" to a place within this radius (km).
DEFAULT_CONTENT_RADIUS_KM = 0.3


class Debouncer:
    """The 2-second AJAX debounce of the search box."""

    def __init__(self, interval: float = DEBOUNCE_SECONDS) -> None:
        self.interval = interval
        self._last_keystroke: Optional[float] = None
        self._pending: str = ""
        self.fired: List[str] = []

    def keystroke(self, text: str, at_time: float) -> Optional[str]:
        """Record the search box content after a keystroke. Returns the
        query to fire if the *previous* input sat idle long enough."""
        fired = self.poll(at_time)
        self._pending = text
        self._last_keystroke = at_time
        return fired

    def poll(self, at_time: float) -> Optional[str]:
        """Check whether the pending input is old enough to fire."""
        if (
            self._pending
            and self._last_keystroke is not None
            and at_time - self._last_keystroke >= self.interval
        ):
            query = self._pending
            self._pending = ""
            self._last_keystroke = None
            self.fired.append(query)
            return query
        return None


@dataclass(frozen=True)
class Suggestion:
    """One row of the candidate-results list (Figure 3)."""

    resource: URIRef
    label: str
    score: float


class SearchInterface:
    """Semantic search over the platform's union graph."""

    def __init__(self, union_graph, contents: Sequence[ContentItem]) -> None:
        self.graph = union_graph
        self.contents = list(contents)
        self._label_index = FullTextIndex.from_graph(
            union_graph, predicates=[RDFS.label, GN.name, GN.alternateName]
        )

    # ------------------------------------------------------------------
    # Incremental suggestion (the AJAX candidates list)
    # ------------------------------------------------------------------
    def suggest(
        self,
        prefix: str,
        user_point: Optional[Point] = None,
        limit: int = 10,
    ) -> List[Suggestion]:
        """LOD resources whose label starts matching the typed prefix,
        optionally ranked by distance to the user."""
        subjects = self._label_index.search_prefix(prefix, limit=200)
        suggestions: List[Suggestion] = []
        for subject in subjects:
            label = self._display_label(subject)
            if label is None:
                continue
            score = self._prefix_score(prefix, label)
            if user_point is not None:
                distance = self._distance_to(subject, user_point)
                if distance is not None:
                    score += max(0.0, 1.0 - min(distance, 1000.0) / 1000.0)
            suggestions.append(Suggestion(subject, label, round(score, 4)))
        suggestions.sort(key=lambda s: (-s.score, str(s.resource)))
        return suggestions[:limit]

    def _display_label(self, subject: Term) -> Optional[str]:
        label = self.graph.value(subject, RDFS.label)
        if label is None:
            label = self.graph.value(subject, GN.name)
        return label.lexical if isinstance(label, Literal) else None

    @staticmethod
    def _prefix_score(prefix: str, label: str) -> float:
        tokens = tokenize_text(label)
        lowered = prefix.lower()
        if not tokens:
            return 0.0
        if tokens[0].startswith(lowered):
            return 2.0 + len(lowered) / max(1, len(tokens[0]))
        if any(t.startswith(lowered) for t in tokens):
            return 1.0
        return 0.5

    def _distance_to(
        self, subject: Term, point: Point
    ) -> Optional[float]:
        geometry = self.graph.value(subject, GEO.geometry)
        if geometry is None:
            return None
        target = try_parse_point(geometry)
        if target is None:
            return None
        return haversine_km(point, target)

    # ------------------------------------------------------------------
    # Content retrieval for a selected resource (Figure 4, list view)
    # ------------------------------------------------------------------
    def content_for_resource(
        self,
        resource: URIRef,
        radius_km: float = DEFAULT_CONTENT_RADIUS_KM,
    ) -> List[ContentItem]:
        """Contents annotated with ``resource`` or located near it."""
        annotated: Set[int] = set()
        for subject in self.graph.subjects(DCTERMS.subject, resource):
            pid = _pid_from_resource(subject)
            if pid is not None:
                annotated.add(pid)
        target = None
        geometry = self.graph.value(resource, GEO.geometry)
        if geometry is not None:
            target = try_parse_point(geometry)
        hits: List[ContentItem] = []
        for item in self.contents:
            near = (
                target is not None
                and item.point is not None
                and haversine_km(item.point, target) <= radius_km
            )
            if item.pid in annotated or near:
                hits.append(item)
        return hits

    # ------------------------------------------------------------------
    # The keyword baseline (§1.2 — what semantics replaced)
    # ------------------------------------------------------------------
    def keyword_search(self, query: str) -> List[ContentItem]:
        """Match content whose title or user tags contain every query
        token — wild-free vocabulary, no synonyms, no disambiguation."""
        tokens = tokenize_text(query)
        if not tokens:
            return []
        hits = []
        for item in self.contents:
            haystack = set(tokenize_text(item.title))
            for tag in item.plain_tags:
                haystack.update(tokenize_text(tag))
            if all(token in haystack for token in tokens):
                hits.append(item)
        return hits


def _pid_from_resource(subject: Term) -> Optional[int]:
    from ..rdf.namespace import TL_PID

    text = str(subject)
    if not text.startswith(str(TL_PID)):
        return None
    tail = text[len(str(TL_PID)):]
    return int(tail) if tail.isdigit() else None
