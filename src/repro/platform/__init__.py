"""The UGC sharing platform (the paper's TeamLife system)."""

from .crosspost import (
    CrossPost,
    CrossPoster,
    FacebookSink,
    FlickrSink,
    SocialNetworkSink,
    TwitterSink,
    default_crossposter,
)
from .feeds import context_filtered_feed, render_atom_feed
from .gallery import Platform
from .identity import (
    Assertion,
    OpenIdError,
    OpenIdProvider,
    RelyingParty,
    normalize_identifier,
)
from .models import Capture, ContentItem, MediaType, PlatformUser
from .sparql_push import SparqlPushError, SparqlPushService
from .search import (
    DEBOUNCE_SECONDS,
    Debouncer,
    SearchInterface,
    Suggestion,
)
from .tag_albums import TagAlbum, by_cell, by_place_type, by_user
from .uploads import DeferredUploadQueue
from .web import (
    MOBILE_UA_MARKERS,
    Page,
    RouteDecision,
    WebInterface,
    WebSession,
    is_mobile_user_agent,
)
from .vocab import TLV, platform_mapping

__all__ = [
    "Assertion",
    "Capture",
    "ContentItem",
    "CrossPost",
    "CrossPoster",
    "DEBOUNCE_SECONDS",
    "Debouncer",
    "DeferredUploadQueue",
    "FacebookSink",
    "FlickrSink",
    "MOBILE_UA_MARKERS",
    "MediaType",
    "OpenIdError",
    "OpenIdProvider",
    "Platform",
    "Page",
    "PlatformUser",
    "RouteDecision",
    "RelyingParty",
    "SearchInterface",
    "SocialNetworkSink",
    "SparqlPushError",
    "SparqlPushService",
    "Suggestion",
    "TLV",
    "TagAlbum",
    "TwitterSink",
    "WebInterface",
    "WebSession",
    "by_cell",
    "is_mobile_user_agent",
    "by_place_type",
    "by_user",
    "context_filtered_feed",
    "default_crossposter",
    "normalize_identifier",
    "platform_mapping",
    "render_atom_feed",
]
