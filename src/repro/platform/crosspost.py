"""Cross-posting to external social networks (paper §1.1).

"Content that is uploaded to the system can be cross-posted to different
popular sites and social networks (like Facebook, Flickr and Twitter)."

Each sink is an in-process simulation with the relevant constraint of
its real 2012 counterpart (Twitter's 140 characters, Flickr photos-only)
so the dispatch logic is actually exercised.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

from .models import ContentItem, MediaType


@dataclass(frozen=True)
class CrossPost:
    """A record of one delivered cross-post."""

    network: str
    pid: int
    text: str


class SocialNetworkSink(abc.ABC):
    """One external network."""

    name: str = "network"

    def __init__(self) -> None:
        self.posts: List[CrossPost] = []

    @abc.abstractmethod
    def format_post(self, item: ContentItem) -> Optional[str]:
        """The outgoing text, or None when the item cannot be posted."""

    def deliver(self, item: ContentItem) -> Optional[CrossPost]:
        text = self.format_post(item)
        if text is None:
            return None
        post = CrossPost(self.name, item.pid, text)
        self.posts.append(post)
        return post


class FacebookSink(SocialNetworkSink):
    name = "facebook"

    def format_post(self, item: ContentItem) -> Optional[str]:
        tags = " ".join(f"#{t}" for t in item.plain_tags[:5])
        return f"{item.title} {item.media_url} {tags}".strip()


class TwitterSink(SocialNetworkSink):
    name = "twitter"
    LIMIT = 140

    def format_post(self, item: ContentItem) -> Optional[str]:
        text = f"{item.title} {item.media_url}"
        if len(text) > self.LIMIT:
            room = self.LIMIT - len(item.media_url) - 2
            if room <= 0:
                return None
            text = f"{item.title[:room]}… {item.media_url}"
        return text


class FlickrSink(SocialNetworkSink):
    name = "flickr"

    def format_post(self, item: ContentItem) -> Optional[str]:
        if item.media_type is not MediaType.PHOTO:
            return None  # Flickr accepted photos only
        return f"{item.title} [{', '.join(item.all_tags)}]"


class CrossPoster:
    """Dispatches uploaded content to the user's selected networks."""

    def __init__(self) -> None:
        self._sinks: Dict[str, SocialNetworkSink] = {}

    def register(self, sink: SocialNetworkSink) -> None:
        self._sinks[sink.name] = sink

    @property
    def networks(self) -> List[str]:
        return sorted(self._sinks)

    def sink(self, name: str) -> SocialNetworkSink:
        if name not in self._sinks:
            raise KeyError(f"unknown network: {name!r}")
        return self._sinks[name]

    def post(
        self, item: ContentItem, networks: Optional[List[str]] = None
    ) -> List[CrossPost]:
        targets = networks if networks is not None else self.networks
        delivered: List[CrossPost] = []
        for name in targets:
            post = self.sink(name).deliver(item)
            if post is not None:
                delivered.append(post)
        return delivered


def default_crossposter() -> CrossPoster:
    poster = CrossPoster()
    poster.register(FacebookSink())
    poster.register(TwitterSink())
    poster.register(FlickrSink())
    return poster
