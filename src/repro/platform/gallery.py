"""The UGC sharing platform (the paper's TeamLife).

Graph-writes: the platform's own semantic graph (rebuilt by
``semanticize``), the local merged union before it is frozen, and the
optionally attached quad-store via generation-stamped sync commits

Integration point of the substrates:

* content and users live in the Coppermine-style relational DB
  (:mod:`repro.relational`);
* uploads are contextualized by the context management platform and
  stored with their triple tags (the legacy path, §1.1);
* :meth:`Platform.semanticize` runs the LODification (§2): D2R-dumps the
  relational data, runs the automatic semantic annotation pipeline on
  every content, runs location analysis, and loads everything into the
  triple store next to the LOD corpus;
* :meth:`Platform.evaluator` exposes the SPARQL endpoint used by the
  virtual albums, the mashup and the mobile search interface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..context.provider import ContextPlatform
from ..context.triple_tags import TripleTag, split_tags
from ..core.annotator import AnnotationResult, SemanticAnnotator
from ..core.location import LocationAnalyzer
from ..d2r.dump import dump_graph, dump_ntriples
from ..lod.datasets import LodCorpus, build_lod_corpus
from ..rdf.graph import Dataset, Graph, freeze
from ..rdf.namespace import DCTERMS
from ..relational.database import Database
from ..sparql.evaluator import Evaluator
from .crosspost import CrossPoster, default_crossposter
from .models import Capture, ContentItem, PlatformUser
from .vocab import TLV, platform_mapping

_SCHEMA = [
    """CREATE TABLE users (
         user_name TEXT PRIMARY KEY,
         full_name TEXT,
         email TEXT,
         openid TEXT
       )""",
    """CREATE TABLE pictures (
         pid INTEGER PRIMARY KEY AUTOINCREMENT,
         owner_name TEXT NOT NULL REFERENCES users(user_name),
         title TEXT,
         keywords TEXT,
         media_url TEXT,
         media_type TEXT,
         rating REAL,
         ctime INTEGER,
         geometry TEXT
       )""",
    """CREATE TABLE friends (
         id INTEGER PRIMARY KEY AUTOINCREMENT,
         user_a TEXT NOT NULL REFERENCES users(user_name),
         user_b TEXT NOT NULL REFERENCES users(user_name)
       )""",
    """CREATE TABLE regions (
         rid INTEGER PRIMARY KEY AUTOINCREMENT,
         pid INTEGER NOT NULL REFERENCES pictures(pid),
         x REAL NOT NULL,
         y REAL NOT NULL,
         width REAL NOT NULL,
         height REAL NOT NULL,
         note TEXT
       )""",
]


class Platform:
    """The content-sharing platform."""

    def __init__(
        self,
        corpus: Optional[LodCorpus] = None,
        annotator: Optional[SemanticAnnotator] = None,
        context: Optional[ContextPlatform] = None,
        crossposter: Optional[CrossPoster] = None,
        inference: bool = False,
    ) -> None:
        self.corpus = corpus or build_lod_corpus()
        # §2.3: queries may rely on inference capabilities — when on,
        # the union graph is materialized to its RDFS closure
        self.inference = inference
        self.db = Database("teamlife")
        for statement in _SCHEMA:
            self.db.execute(statement)
        self.mapping = platform_mapping()
        self.context = context or ContextPlatform()
        self.location_analyzer = LocationAnalyzer(
            self.corpus, self.context.gazetteer
        )
        if annotator is None:
            from ..core.annotator import build_default_annotator

            annotator = build_default_annotator(self.corpus)
        self.annotator = annotator
        self.crossposter = crossposter or default_crossposter()
        self._items: Dict[int, ContentItem] = {}
        self._annotations: Dict[int, AnnotationResult] = {}
        self._semantic_graph: Optional[Graph] = None
        self._union: Optional[Graph] = None
        self._dirty = True
        self._store = None

    # ------------------------------------------------------------------
    # Users and relationships
    # ------------------------------------------------------------------
    def register_user(
        self,
        username: str,
        full_name: Optional[str] = None,
        email: Optional[str] = None,
        openid: Optional[str] = None,
        external_accounts: Tuple[str, ...] = (),
    ) -> PlatformUser:
        user = PlatformUser(
            username=username,
            full_name=full_name or username,
            email=email,
            openid=openid,
            external_accounts=external_accounts,
        )
        self.db.insert(
            "users",
            user_name=user.username,
            full_name=user.full_name,
            email=email,
            openid=openid,
        )
        self.context.register_user(
            username, user.full_name, external_accounts
        )
        self._dirty = True
        return user

    def add_friendship(self, user_a: str, user_b: str) -> None:
        """Symmetric friendship, recorded in both directions (the SPARQL
        queries traverse ``foaf:knows`` directionally)."""
        self.db.insert("friends", user_a=user_a, user_b=user_b)
        self.db.insert("friends", user_a=user_b, user_b=user_a)
        self.context.add_friendship(user_a, user_b)
        self._dirty = True

    def users(self) -> List[str]:
        return [row["user_name"] for row in self.db.table("users").scan()]

    # ------------------------------------------------------------------
    # Upload pipeline
    # ------------------------------------------------------------------
    def upload(
        self,
        capture: Capture,
        crosspost_to: Optional[List[str]] = None,
    ) -> ContentItem:
        """Receive a capture: contextualize the sender at *capture* time,
        attach context tags, store the row (legacy path §1.1)."""
        if capture.point is not None:
            self.context.report_position(
                capture.username, capture.timestamp, capture.point
            )
        context = self.context.contextualize(
            capture.username, capture.timestamp
        )
        context_tags = [
            tag.format() for tag in self.context.context_tags(context)
        ]
        if capture.poi_recs_id is not None:
            context_tags.append(
                TripleTag("poi", "recs_id",
                          str(capture.poi_recs_id)).format()
            )

        point = capture.point
        if point is None and context.location is not None:
            point = context.location.point
        geometry = point.wkt() if point is not None else None

        keywords = " ".join(list(capture.tags) + context_tags) or None
        media_url = capture.media_url or (
            f"http://beta.teamlife.it/media/"
            f"{capture.username}_{capture.timestamp}.jpg"
        )
        row = self.db.insert(
            "pictures",
            owner_name=capture.username,
            title=capture.title or None,
            keywords=keywords,
            media_url=media_url,
            media_type=capture.media_type.value,
            rating=0.0,
            ctime=capture.timestamp,
            geometry=geometry,
        )
        item = ContentItem(
            pid=row["pid"],
            owner=capture.username,
            title=capture.title,
            plain_tags=list(capture.tags),
            context_tags=context_tags,
            timestamp=capture.timestamp,
            media_type=capture.media_type,
            media_url=media_url,
            point=point,
            rating=0.0,
        )
        self._items[item.pid] = item
        self._dirty = True
        if crosspost_to is not None:
            self.crossposter.post(item, crosspost_to)
        return item

    def rate(self, pid: int, rating: float) -> None:
        if not 0.0 <= rating <= 5.0:
            raise ValueError("rating must be within [0, 5]")
        self.db.execute(f"UPDATE pictures SET rating = {float(rating)} "
                        f"WHERE pid = {int(pid)}")
        self._items[pid].rating = rating
        self._dirty = True

    def content(self, pid: int) -> ContentItem:
        if pid not in self._items:
            raise KeyError(f"no content with pid {pid}")
        return self._items[pid]

    # ------------------------------------------------------------------
    # Content editing (the web interface's "advanced content editing")
    # ------------------------------------------------------------------
    def edit_content(
        self,
        pid: int,
        title: Optional[str] = None,
        tags: Optional[List[str]] = None,
    ) -> ContentItem:
        """Update a content's title and/or user tags; context tags are
        preserved and the item is re-semanticized on the next build."""
        item = self.content(pid)
        if title is not None:
            item.title = title
        if tags is not None:
            item.plain_tags = list(tags)
        keywords = " ".join(item.plain_tags + item.context_tags) or None
        changes = []
        if title is not None:
            changes.append(f"title = '{title.replace(chr(39), chr(39)*2)}'")
        if keywords is not None:
            escaped = keywords.replace("'", "''")
            changes.append(f"keywords = '{escaped}'")
        if changes:
            self.db.execute(
                f"UPDATE pictures SET {', '.join(changes)} "
                f"WHERE pid = {int(pid)}"
            )
        self._dirty = True
        return item

    def delete_content(self, pid: int) -> None:
        """Remove a content item (and its region annotations)."""
        self.content(pid)  # raises for unknown pids
        self.db.execute(f"DELETE FROM regions WHERE pid = {int(pid)}")
        self.db.execute(f"DELETE FROM pictures WHERE pid = {int(pid)}")
        del self._items[pid]
        self._annotations.pop(pid, None)
        self._dirty = True

    # ------------------------------------------------------------------
    # Graphical region annotations (paper §1.1: "in the case of
    # pictures, it is also possible to create a graphical annotation
    # over a particular section")
    # ------------------------------------------------------------------
    def annotate_region(
        self,
        pid: int,
        x: float,
        y: float,
        width: float,
        height: float,
        note: Optional[str] = None,
    ) -> int:
        """Attach a rectangular annotation to a picture. Coordinates are
        fractions of the image size in [0, 1]. Returns the region id."""
        self.content(pid)
        for name, value in (("x", x), ("y", y)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        for name, value in (("width", width), ("height", height)):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be within (0, 1]")
        if x + width > 1.0 + 1e-9 or y + height > 1.0 + 1e-9:
            raise ValueError("region exceeds the image bounds")
        row = self.db.insert(
            "regions", pid=pid, x=float(x), y=float(y),
            width=float(width), height=float(height), note=note,
        )
        self._dirty = True
        return row["rid"]

    def regions(self, pid: int) -> List[dict]:
        """The region annotations of a picture, in creation order."""
        result = self.db.execute(
            f"SELECT * FROM regions WHERE pid = {int(pid)} ORDER BY rid"
        )
        return result.dicts()

    def contents(self) -> List[ContentItem]:
        return [self._items[pid] for pid in sorted(self._items)]

    # ------------------------------------------------------------------
    # LODification (§2)
    # ------------------------------------------------------------------
    def dump_ntriples(self) -> str:
        """The raw D2R dump of the relational data (§2.1)."""
        return dump_ntriples(self.db, self.mapping)

    def semanticize(self) -> Graph:
        """Run the full semantic enhancement and return the platform
        graph: D2R dump + automatic annotations + location analysis."""
        graph = dump_graph(self.db, self.mapping)
        for item in self.contents():
            annotation = self.annotator.annotate(
                item.title, item.plain_tags
            )
            self._annotations[item.pid] = annotation
            for ann in annotation.annotations:
                graph.add((item.resource, DCTERMS.subject, ann.resource))

            context = self.context.contextualize(
                item.owner, item.timestamp
            )
            triple_tags, _ = split_tags(item.context_tags)
            analysis = self.location_analyzer.analyze(
                context, tuple(triple_tags)
            )
            if analysis.geonames_resource is not None:
                graph.add(
                    (item.resource, TLV.location,
                     analysis.geonames_resource)
                )
            for buddy_resource in analysis.buddy_resources:
                graph.add((item.resource, TLV.nearby, buddy_resource))
            graph.add_all(analysis.triples)
            if analysis.poi_resource is not None:
                graph.add(
                    (item.resource, DCTERMS.subject,
                     analysis.poi_resource)
                )
        self._semantic_graph = graph
        self._union = None
        self._dirty = False
        return graph

    def annotation_result(self, pid: int) -> Optional[AnnotationResult]:
        """The pipeline output for a content (populated by semanticize)."""
        return self._annotations.get(pid)

    # ------------------------------------------------------------------
    # The triple store
    # ------------------------------------------------------------------
    def triple_store(self) -> Dataset:
        """Named-graph dataset: platform graph + the LOD corpus."""
        if self._semantic_graph is None or self._dirty:
            self.semanticize()
        return self.corpus.as_dataset(self._semantic_graph)

    def union_graph(self) -> Graph:
        """The merged corpus + platform graph, as a *read-only* view.

        The union is a derived copy: a write to it would never reach
        the corpus or the platform graph, so the cache is frozen before
        it is handed out (build-then-publish — mutation happens on the
        local merged graph, then ``freeze()`` shares its indexes
        zero-copy). Consumers that need fresh results after an upload
        re-pull this method; see :class:`~repro.platform.sparql_push.
        SparqlPushService` for the provider-based pattern.
        """
        if self._semantic_graph is None or self._dirty:
            self.semanticize()
        if self._union is None:
            merged = self.corpus.union(self._semantic_graph)
            if self.inference:
                from ..lod.ontology import build_ontology
                from ..rdf.inference import rdfs_closure

                rdfs_closure(merged, build_ontology())
            self._union = freeze(merged)
        return self._union

    # ------------------------------------------------------------------
    # MVCC quad-store persistence
    # ------------------------------------------------------------------
    def attach_store(self, store) -> "Platform":
        """Back the triple store with an MVCC quad-store
        (:class:`repro.store.QuadStore`): every
        :meth:`synchronize_store` reconciles the store with the current
        corpus + platform graph as one generation-stamped commit, and
        :meth:`evaluator` serves queries from pinned snapshots of it —
        with WAL + snapshot durability when the store is on disk."""
        self._store = store
        self.synchronize_store()
        return self

    def synchronize_store(self) -> Optional[int]:
        """Bring the attached store up to date with the platform's
        triple store; returns the store generation (None when no store
        is attached). Unchanged data commits nothing — the generation
        only advances when the dataset actually differs."""
        if self._store is None:
            return None
        return self._store.sync_dataset(self.triple_store())

    def evaluator(self) -> Evaluator:
        """The platform's SPARQL endpoint over everything.

        With an attached store (and inference off) the evaluator pins
        one MVCC snapshot, so it never observes writes committed after
        this call; otherwise it reads the frozen in-memory union."""
        if self._store is not None and not self.inference:
            self.synchronize_store()
            return Evaluator(self._store)
        return Evaluator(self.union_graph())
