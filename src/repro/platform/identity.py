"""OpenID-style sign-in (paper §1.1: "Users can sign-in and avoid
registration using their OpenID accounts of any OpenID provider").

A faithful-in-shape simulation of the 2012-era OpenID 2.0 flow: the
relying party (the platform) normalizes the claimed identifier,
discovers the provider, redirects, and receives a signed positive
assertion. Here providers are in-process objects and the "signature" is
a deterministic token, but the state machine (pending handles,
single-use responses, replay rejection) is real.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict


class OpenIdError(Exception):
    """Authentication failure (unknown identity, replay, bad assertion)."""


@dataclass(frozen=True)
class Assertion:
    """A positive assertion returned by a provider."""

    claimed_id: str
    handle: str
    signature: str


class OpenIdProvider:
    """An identity provider holding a set of identities."""

    def __init__(self, endpoint: str) -> None:
        self.endpoint = endpoint.rstrip("/")
        self._identities: Dict[str, str] = {}  # claimed_id → secret

    def register_identity(self, claimed_id: str) -> None:
        claimed_id = normalize_identifier(claimed_id)
        secret = hashlib.sha256(
            f"{self.endpoint}|{claimed_id}".encode()
        ).hexdigest()
        self._identities[claimed_id] = secret

    def owns(self, claimed_id: str) -> bool:
        return normalize_identifier(claimed_id) in self._identities

    def assert_identity(self, claimed_id: str, handle: str) -> Assertion:
        claimed_id = normalize_identifier(claimed_id)
        if claimed_id not in self._identities:
            raise OpenIdError(f"unknown identity: {claimed_id}")
        signature = hashlib.sha256(
            f"{self._identities[claimed_id]}|{handle}".encode()
        ).hexdigest()
        return Assertion(claimed_id, handle, signature)

    def verify(self, assertion: Assertion) -> bool:
        secret = self._identities.get(assertion.claimed_id)
        if secret is None:
            return False
        expected = hashlib.sha256(
            f"{secret}|{assertion.handle}".encode()
        ).hexdigest()
        return expected == assertion.signature


def normalize_identifier(identifier: str) -> str:
    """OpenID identifier normalization: scheme added, fragment dropped,
    trailing slash trimmed, host lower-cased."""
    identifier = identifier.strip()
    if not identifier:
        raise OpenIdError("empty identifier")
    if "://" not in identifier:
        identifier = "http://" + identifier
    scheme, _, rest = identifier.partition("://")
    rest = rest.split("#", 1)[0].rstrip("/")
    host, slash, path = rest.partition("/")
    return f"{scheme.lower()}://{host.lower()}{slash}{path}"


class RelyingParty:
    """The platform side of the flow."""

    def __init__(self) -> None:
        self._providers: list[OpenIdProvider] = []
        self._pending: Dict[str, str] = {}  # handle → claimed_id
        self._used_handles: set = set()
        self._handle_counter = itertools.count(1)

    def add_provider(self, provider: OpenIdProvider) -> None:
        self._providers.append(provider)

    def discover(self, claimed_id: str) -> OpenIdProvider:
        claimed_id = normalize_identifier(claimed_id)
        for provider in self._providers:
            if provider.owns(claimed_id):
                return provider
        raise OpenIdError(f"no provider for {claimed_id}")

    def begin(self, claimed_id: str) -> str:
        """Start authentication; returns the association handle."""
        claimed_id = normalize_identifier(claimed_id)
        self.discover(claimed_id)  # raises if nobody owns it
        handle = f"assoc-{next(self._handle_counter)}"
        self._pending[handle] = claimed_id
        return handle

    def complete(self, assertion: Assertion) -> str:
        """Verify the returned assertion; returns the authenticated id."""
        claimed_id = self._pending.pop(assertion.handle, None)
        if claimed_id is None:
            raise OpenIdError("unknown or expired handle")
        if assertion.handle in self._used_handles:
            raise OpenIdError("replayed handle")
        if assertion.claimed_id != claimed_id:
            raise OpenIdError("assertion for a different identity")
        provider = self.discover(claimed_id)
        if not provider.verify(assertion):
            raise OpenIdError("bad signature")
        self._used_handles.add(assertion.handle)
        return claimed_id

    def authenticate(self, claimed_id: str) -> str:
        """The full happy-path flow in one call."""
        handle = self.begin(claimed_id)
        provider = self.discover(claimed_id)
        assertion = provider.assert_identity(claimed_id, handle)
        return self.complete(assertion)
