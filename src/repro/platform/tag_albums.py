"""Tag-based virtual albums — the legacy navigation (paper §1.1).

"Tagged pictures and videos are organized in virtual albums generated
dynamically. These tag-based collections exploit triple tags to organize
content: it is therefore possible to filter user-generated pictures by
each triple tag namespace, predicate or value."

This is the pre-semantic baseline the SPARQL virtual albums replace, and
the TT benchmark compares the two.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..context.triple_tags import TripleTag, try_parse_triple_tag
from .models import ContentItem


class TagAlbum:
    """A dynamic collection filtered by triple-tag components."""

    def __init__(
        self,
        namespace: Optional[str] = None,
        predicate: Optional[str] = None,
        value: Optional[str] = None,
        plain_tag: Optional[str] = None,
    ) -> None:
        if not any((namespace, predicate, value, plain_tag)):
            raise ValueError("album needs at least one filter component")
        self.namespace = namespace
        self.predicate = predicate
        self.value = value
        self.plain_tag = plain_tag

    # ------------------------------------------------------------------
    def matches(self, item: ContentItem) -> bool:
        if self.plain_tag is not None:
            if self.plain_tag not in item.plain_tags:
                return False
        if any((self.namespace, self.predicate, self.value)):
            return any(
                self._tag_matches(tag)
                for tag in self._triple_tags(item)
            )
        return True

    def _tag_matches(self, tag: TripleTag) -> bool:
        if self.namespace is not None and tag.namespace != self.namespace:
            return False
        if self.predicate is not None and tag.predicate != self.predicate:
            return False
        if self.value is not None and tag.value != self.value:
            return False
        return True

    @staticmethod
    def _triple_tags(item: ContentItem) -> List[TripleTag]:
        tags = []
        for raw in item.all_tags:
            parsed = try_parse_triple_tag(raw)
            if parsed is not None:
                tags.append(parsed)
        return tags

    def select(self, items: Iterable[ContentItem]) -> List[ContentItem]:
        """Materialize the album over a content collection."""
        return [item for item in items if self.matches(item)]


def by_user(full_name: str) -> TagAlbum:
    """The paper's example: ``people:fn=Walter+Goix``."""
    return TagAlbum(namespace="people", predicate="fn", value=full_name)


def by_cell(cgi: str) -> TagAlbum:
    """The paper's example: ``cell:cgi=460-0-9522-3661``."""
    return TagAlbum(namespace="cell", predicate="cgi", value=cgi)


def by_place_type(place_type: str) -> TagAlbum:
    """The paper's example: ``place:is=crowded``."""
    return TagAlbum(namespace="place", predicate="is", value=place_type)
