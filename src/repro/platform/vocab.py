"""Platform RDF vocabulary.

The TeamLife platform's own predicates, under its vocab namespace, plus
the D2R mapping that lifts the Coppermine-style schema (paper §2.1).
"""

from __future__ import annotations

from ..d2r.mapping import (
    D2RMapping,
    KeywordSplitMap,
    LinkMap,
    PropertyMap,
    TableMap,
    UriPattern,
)
from ..rdf.namespace import (
    COMM,
    DC,
    RDFS,
    DCTERMS,
    FOAF,
    GEO,
    Namespace,
    REV,
    SIOCT,
    TL_PID,
    TL_USER,
)

#: Platform vocabulary namespace.
TLV = Namespace("http://beta.teamlife.it/vocab#")


def platform_mapping() -> D2RMapping:
    """The D2R mapping for the platform's relational schema.

    * ``pictures`` → ``sioct:MicroblogPost`` (the type the paper's
      queries filter on), with ``comm:image-data``, ``dc:title``,
      ``rev:rating``, ``geo:geometry`` and one ``tlv:keyword`` triple per
      space-separated keyword (§2.1.1);
    * ``users`` → ``foaf:Person`` with ``foaf:name``;
    * ``friends`` → ``foaf:knows`` links between user resources.
    """
    mapping = D2RMapping()
    mapping.add(
        TableMap(
            table="users",
            uri_pattern=UriPattern(str(TL_USER) + "{user_name}"),
            rdf_class=FOAF.Person,
            properties=[
                PropertyMap("user_name", FOAF.name),
                PropertyMap("full_name", TLV.fullName),
            ],
        )
    )
    mapping.add(
        TableMap(
            table="pictures",
            uri_pattern=UriPattern(str(TL_PID) + "{pid}"),
            rdf_class=SIOCT.MicroblogPost,
            properties=[
                PropertyMap("title", DC.title),
                # D2R also emits rdfs:label for the title — the mashup's
                # UGC branch joins on it, as in the paper's listing
                PropertyMap("title", RDFS.label),
                PropertyMap("media_url", COMM["image-data"]),
                PropertyMap("rating", REV.rating),
                PropertyMap("ctime", DCTERMS.created),
                PropertyMap("geometry", GEO.geometry),
            ],
            links=[LinkMap("owner_name", FOAF.maker, "users")],
            keyword_splits=[
                KeywordSplitMap("keywords", TLV.keyword, lowercase=False)
            ],
        )
    )
    mapping.add(
        TableMap(
            table="friends",
            uri_pattern=UriPattern(str(TL_USER) + "{user_a}"),
            links=[LinkMap("user_b", FOAF.knows, "users")],
        )
    )
    mapping.add(
        TableMap(
            table="regions",
            uri_pattern=UriPattern(
                "http://beta.teamlife.it/regions/{rid}"
            ),
            rdf_class=TLV.Region,
            properties=[
                PropertyMap("x", TLV.x),
                PropertyMap("y", TLV.y),
                PropertyMap("width", TLV.width),
                PropertyMap("height", TLV.height),
                PropertyMap("note", TLV.note),
            ],
            links=[LinkMap("pid", TLV.on, "pictures")],
        )
    )
    return mapping
