"""SPARQL tokenizer.

Produces a flat token stream consumed by :mod:`repro.sparql.parser`. The
token inventory covers the SPARQL 1.0 subset the platform uses plus the
Virtuoso extensions the paper's queries rely on (``bif:`` function names
are ordinary prefixed names at this level).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .errors import SparqlSyntaxError

#: Keywords recognized case-insensitively (returned upper-cased).
KEYWORDS = frozenset(
    {
        "SELECT", "ASK", "CONSTRUCT", "DESCRIBE", "WHERE", "PREFIX", "BASE",
        "DISTINCT", "REDUCED", "OPTIONAL", "UNION", "FILTER", "ORDER", "BY",
        "ASC", "DESC", "LIMIT", "OFFSET", "VALUES", "IN", "NOT", "AS",
        "GRAPH", "A", "TRUE", "FALSE", "UNDEF", "BIND", "GROUP", "HAVING",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "EXISTS",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"""
    + r'"""(?:[^"\\]|\\.|"(?!""))*"""'
    + r"""|'''(?:[^'\\]|\\.|'(?!''))*'''"""
    + r"""|"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<langtag>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<dtype>\^\^)
  | (?P<number>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<op><=|>=|!=|&&|\|\||[=<>!+\-*/])
  | (?P<punct>[{}()\[\].,;])
  | (?P<pname>[A-Za-z_][A-Za-z0-9_.\-]*?:[A-Za-z0-9_][A-Za-z0-9_.\-]*
        |[A-Za-z_][A-Za-z0-9_.\-]*?:(?![/]))
  | (?P<bnode>_:[A-Za-z0-9][A-Za-z0-9._\-]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token: a ``kind`` tag, raw ``text`` and source offset."""

    kind: str
    text: str
    pos: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.text in names

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


EOF = Token("eof", "", -1)


def tokenize(query: str) -> List[Token]:
    """Tokenize ``query``, raising :class:`SparqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    length = len(query)
    while pos < length:
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character {query[pos]!r}", pos
            )
        kind = match.lastgroup or ""
        text = match.group()
        start = pos
        pos = match.end()
        if kind == "ws":
            continue
        if kind == "name":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start))
            else:
                tokens.append(Token("name", text, start))
            continue
        if kind == "var":
            tokens.append(Token("var", text[1:], start))
            continue
        tokens.append(Token(kind, text, start))
    tokens.append(Token("eof", "", length))
    return tokens


def unquote_string(text: str) -> str:
    """Strip quotes from a string token's text (handles long strings)."""
    if text.startswith(('"""', "'''")):
        return text[3:-3]
    return text[1:-1]
