"""Geospatial support: geometry literals and Virtuoso-style geo functions.

The paper stores positions as ``geo:geometry`` literals in WKT ``POINT``
form (the representation Virtuoso's ``rdf_geo_fill`` produces) and filters
with ``bif:st_intersects(?g1, ?g2, precision)``. In Virtuoso the third
argument is a distance tolerance; for WGS84 data the unit is kilometers.
We reproduce exactly that: two points "intersect" when their great-circle
(haversine) distance is at most ``precision`` kilometers.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Optional, Union

from ..rdf.terms import Literal, Term

#: Mean Earth radius in kilometers (IUGG value, same as Virtuoso uses).
EARTH_RADIUS_KM = 6371.0

_POINT_RE = re.compile(
    r"^\s*POINT\s*\(\s*([+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"\s+([+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)\s*\)\s*$",
    re.IGNORECASE,
)


class GeometryError(ValueError):
    """Raised on unparseable geometry literals."""


@dataclass(frozen=True)
class Point:
    """A WGS84 point. WKT order is ``POINT(longitude latitude)``."""

    longitude: float
    latitude: float

    def __post_init__(self) -> None:
        if not -180.0 <= self.longitude <= 180.0:
            raise GeometryError(f"longitude out of range: {self.longitude}")
        if not -90.0 <= self.latitude <= 90.0:
            raise GeometryError(f"latitude out of range: {self.latitude}")

    def wkt(self) -> str:
        return f"POINT({_fmt(self.longitude)} {_fmt(self.latitude)})"

    def to_literal(self) -> Literal:
        """The ``geo:geometry`` literal form used in the store."""
        return Literal(self.wkt())


def _fmt(value: float) -> str:
    text = f"{value:.6f}".rstrip("0").rstrip(".")
    return text if text not in ("", "-") else "0"


def parse_point(value: Union[str, Term, Point]) -> Point:
    """Parse a WKT POINT literal (or pass through a :class:`Point`)."""
    if isinstance(value, Point):
        return value
    text = str(value)
    match = _POINT_RE.match(text)
    if not match:
        raise GeometryError(f"not a POINT geometry: {text!r}")
    return Point(float(match.group(1)), float(match.group(2)))


def try_parse_point(value: Union[str, Term, Point]) -> Optional[Point]:
    """Like :func:`parse_point` but returns ``None`` on failure."""
    try:
        return parse_point(value)
    except GeometryError:
        return None


def haversine_km(a: Point, b: Point) -> float:
    """Great-circle distance between two points in kilometers."""
    lat1 = math.radians(a.latitude)
    lat2 = math.radians(b.latitude)
    dlat = lat2 - lat1
    dlon = math.radians(b.longitude - a.longitude)
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def st_distance(
    a: Union[str, Term, Point], b: Union[str, Term, Point]
) -> float:
    """``bif:st_distance`` — distance in kilometers."""
    return haversine_km(parse_point(a), parse_point(b))


def st_intersects(
    a: Union[str, Term, Point],
    b: Union[str, Term, Point],
    precision_km: float = 0.0,
) -> bool:
    """``bif:st_intersects`` — true when within ``precision_km`` kilometers.

    With the default precision of 0 only (numerically) identical points
    intersect, matching Virtuoso's point/point semantics.
    """
    return st_distance(a, b) <= float(precision_km) + 1e-9


def st_point(longitude: float, latitude: float) -> Literal:
    """``bif:st_point`` — build a geometry literal from coordinates."""
    return Point(float(longitude), float(latitude)).to_literal()
