"""Recursive-descent SPARQL parser.

Parses the SPARQL dialect used throughout the paper: SELECT / ASK /
CONSTRUCT / DESCRIBE, group graph patterns with OPTIONAL / UNION / FILTER /
BIND / VALUES, sub-SELECTs (the mashup query nests SELECTs inside UNION
branches), solution modifiers, GROUP BY with the standard aggregates, and
Virtuoso-style ``bif:`` extension functions.

Prefix handling is deliberately forgiving: prefixes declared in the
prologue win, but undeclared prefixes fall back to the library's default
prefix table (:data:`repro.rdf.namespace.DEFAULT_PREFIXES`) so the paper's
queries — which use ``geo:``/``sioct:`` without declaring them — run
verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rdf.namespace import DEFAULT_PREFIXES, RDF
from ..rdf.terms import (
    BNode,
    Literal,
    Term,
    URIRef,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    unescape_literal,
)
from .ast import (
    AggregateBinding,
    AndExpr,
    ArithExpr,
    AskQuery,
    BGP,
    BindPattern,
    CompareExpr,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionCall,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    NegExpr,
    NotExpr,
    OptionalPattern,
    OrderCondition,
    OrExpr,
    PatternNode,
    Query,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePatternNode,
    UnionPattern,
    ValuesPattern,
)
from .errors import SparqlSyntaxError
from .tokenizer import Token, tokenize, unquote_string

#: Builtin function names (case-insensitive in queries).
BUILTIN_FUNCTIONS = frozenset(
    {
        "REGEX", "LANG", "LANGMATCHES", "STR", "BOUND", "DATATYPE",
        "SAMETERM", "ISIRI", "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC",
        "CONTAINS", "STRSTARTS", "STRENDS", "STRLEN", "SUBSTR", "UCASE",
        "LCASE", "CONCAT", "REPLACE", "ABS", "CEIL", "FLOOR", "ROUND",
        "COALESCE", "IF", "STRBEFORE", "STRAFTER", "YEAR", "MONTH", "DAY",
        "NOW", "IRI", "URI", "BNODE", "STRDT", "STRLANG",
    }
)

_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE"})


class Parser:
    """Single-use parser over a token list."""

    def __init__(self, query: str) -> None:
        self.tokens = tokenize(query)
        self.pos = 0
        self.prefixes: Dict[str, str] = {}
        #: prefixes resolved via DEFAULT_PREFIXES rather than the
        #: prologue: prefix name → source offset of first use.
        self.fallback_used: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        idx = self.pos + ahead
        if idx < len(self.tokens):
            return self.tokens[idx]
        return self.tokens[-1]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._next()
        if token.kind not in ("punct", "op") or token.text != text:
            raise SparqlSyntaxError(
                f"expected {text!r}, got {token.text!r}", token.pos
            )
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._next()
        if token.kind != "keyword" or token.text not in names:
            raise SparqlSyntaxError(
                f"expected {'/'.join(names)}, got {token.text!r}", token.pos
            )
        return token

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind in ("punct", "op") and token.text == text

    def _accept_punct(self, text: str) -> bool:
        if self._at_punct(text):
            self.pos += 1
            return True
        return False

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        token = self._peek()
        if token.kind == "keyword" and token.text in names:
            self.pos += 1
            return token
        return None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> Query:
        self._parse_prologue()
        token = self._peek()
        if token.is_keyword("SELECT"):
            query = self._parse_select()
        elif token.is_keyword("ASK"):
            query = self._parse_ask()
        elif token.is_keyword("CONSTRUCT"):
            query = self._parse_construct()
        elif token.is_keyword("DESCRIBE"):
            query = self._parse_describe()
        else:
            raise SparqlSyntaxError(
                f"expected query form, got {token.text!r}", token.pos
            )
        tail = self._peek()
        if tail.kind != "eof":
            raise SparqlSyntaxError(
                f"unexpected trailing input: {tail.text!r}", tail.pos
            )
        query.prefixes = dict(self.prefixes)
        query.fallback_prefixes = dict(self.fallback_used)
        return query

    def _parse_prologue(self) -> None:
        while True:
            if self._accept_keyword("PREFIX"):
                token = self._next()
                if token.kind != "pname" or not token.text.endswith(":"):
                    # allow "geo" ":" split? tokenization keeps pname whole
                    prefix = token.text
                    if token.kind == "pname":
                        prefix = token.text.split(":", 1)[0]
                    else:
                        raise SparqlSyntaxError(
                            f"expected prefix name, got {token.text!r}",
                            token.pos,
                        )
                else:
                    prefix = token.text[:-1]
                iri_token = self._next()
                if iri_token.kind != "iri":
                    raise SparqlSyntaxError(
                        f"expected namespace IRI, got {iri_token.text!r}",
                        iri_token.pos,
                    )
                self.prefixes[prefix] = iri_token.text[1:-1]
                continue
            if self._accept_keyword("BASE"):
                raise SparqlSyntaxError("BASE is not supported")
            break

    def _expand_pname(self, text: str, pos: int) -> URIRef:
        prefix, _, local = text.partition(":")
        if prefix in self.prefixes:
            return URIRef(self.prefixes[prefix] + local)
        if prefix in DEFAULT_PREFIXES:
            self.fallback_used.setdefault(prefix, pos)
            return URIRef(DEFAULT_PREFIXES[prefix] + local)
        raise SparqlSyntaxError(f"unknown prefix {prefix!r}", pos)

    # ------------------------------------------------------------------
    # Query forms
    # ------------------------------------------------------------------
    def _parse_select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        reduced = bool(self._accept_keyword("REDUCED"))

        variables: List[Variable] = []
        aggregates: List[AggregateBinding] = []
        if self._accept_punct("*"):
            pass
        else:
            while True:
                token = self._peek()
                if token.kind == "var":
                    self._next()
                    variables.append(Variable(token.text))
                elif self._at_punct("("):
                    self._next()
                    agg = self._parse_projection_expression()
                    aggregates.append(agg)
                    variables.append(agg.alias)
                else:
                    break
            if not variables:
                raise SparqlSyntaxError(
                    "SELECT requires '*' or at least one variable",
                    self._peek().pos,
                )

        self._accept_keyword("WHERE")
        where = self._parse_group()
        query = SelectQuery(
            variables=variables,
            where=where,
            distinct=distinct,
            reduced=reduced,
            aggregates=aggregates,
        )
        self._parse_solution_modifiers(query)
        return query

    def _parse_projection_expression(self) -> AggregateBinding:
        """Parse ``(COUNT(DISTINCT ?x) AS ?n)`` style projections."""
        token = self._peek()
        if token.kind == "keyword" and token.text in _AGGREGATES:
            self._next()
            function = token.text
            self._expect_punct("(")
            distinct = bool(self._accept_keyword("DISTINCT"))
            argument: Optional[Expression]
            if self._accept_punct("*"):
                if function != "COUNT":
                    raise SparqlSyntaxError(
                        f"{function}(*) is not valid", token.pos
                    )
                argument = None
            else:
                argument = self._parse_expression()
            self._expect_punct(")")
            self._expect_keyword("AS")
            var_token = self._next()
            if var_token.kind != "var":
                raise SparqlSyntaxError(
                    f"expected variable after AS, got {var_token.text!r}",
                    var_token.pos,
                )
            self._expect_punct(")")
            return AggregateBinding(
                function=function,
                argument=argument,
                alias=Variable(var_token.text),
                distinct=distinct,
            )
        # plain expression alias: (expr AS ?v) — modeled as SAMPLE-free bind
        expression = self._parse_expression()
        self._expect_keyword("AS")
        var_token = self._next()
        if var_token.kind != "var":
            raise SparqlSyntaxError(
                f"expected variable after AS, got {var_token.text!r}",
                var_token.pos,
            )
        self._expect_punct(")")
        return AggregateBinding(
            function="EXPR",
            argument=expression,
            alias=Variable(var_token.text),
        )

    def _parse_solution_modifiers(self, query: SelectQuery) -> None:
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            while True:
                token = self._peek()
                if token.kind == "var":
                    self._next()
                    query.group_by.append(TermExpr(Variable(token.text)))
                elif self._at_punct("("):
                    self._next()
                    query.group_by.append(self._parse_expression())
                    self._expect_punct(")")
                else:
                    break
            if not query.group_by:
                raise SparqlSyntaxError(
                    "GROUP BY requires at least one expression",
                    self._peek().pos,
                )
        if self._accept_keyword("HAVING"):
            raise SparqlSyntaxError("HAVING is not supported")
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            conditions: List[OrderCondition] = []
            while True:
                token = self._peek()
                if token.is_keyword("ASC", "DESC"):
                    self._next()
                    descending = token.text == "DESC"
                    self._expect_punct("(")
                    expression = self._parse_expression()
                    self._expect_punct(")")
                    conditions.append(OrderCondition(expression, descending))
                elif token.kind == "var":
                    self._next()
                    conditions.append(
                        OrderCondition(TermExpr(Variable(token.text)))
                    )
                elif self._at_punct("("):
                    self._next()
                    expression = self._parse_expression()
                    self._expect_punct(")")
                    conditions.append(OrderCondition(expression))
                else:
                    break
            if not conditions:
                raise SparqlSyntaxError(
                    "ORDER BY requires at least one condition",
                    self._peek().pos,
                )
            query.order_by = conditions
        # LIMIT and OFFSET may appear in either order
        for _ in range(2):
            if self._accept_keyword("LIMIT"):
                query.limit = self._parse_nonnegative_int("LIMIT")
            elif self._accept_keyword("OFFSET"):
                query.offset = self._parse_nonnegative_int("OFFSET")

    def _parse_nonnegative_int(self, context: str) -> int:
        token = self._next()
        if token.kind != "number" or not token.text.isdigit():
            raise SparqlSyntaxError(
                f"{context} requires a non-negative integer, "
                f"got {token.text!r}",
                token.pos,
            )
        return int(token.text)

    def _parse_ask(self) -> AskQuery:
        self._expect_keyword("ASK")
        self._accept_keyword("WHERE")
        return AskQuery(where=self._parse_group())

    def _parse_construct(self) -> ConstructQuery:
        self._expect_keyword("CONSTRUCT")
        self._expect_punct("{")
        template: List[TriplePatternNode] = []
        while not self._at_punct("}"):
            template.extend(self._parse_triples_same_subject())
            if not self._accept_punct("."):
                break
        self._expect_punct("}")
        self._accept_keyword("WHERE")
        where = self._parse_group()
        query = ConstructQuery(template=template, where=where)
        modifiers = SelectQuery(variables=[], where=where)
        self._parse_solution_modifiers(modifiers)
        query.limit = modifiers.limit
        query.offset = modifiers.offset
        return query

    def _parse_describe(self) -> DescribeQuery:
        self._expect_keyword("DESCRIBE")
        terms: List[Term] = []
        while True:
            token = self._peek()
            if token.kind == "iri":
                self._next()
                terms.append(URIRef(unescape_literal(token.text[1:-1])))
            elif token.kind == "pname":
                self._next()
                terms.append(self._expand_pname(token.text, token.pos))
            elif token.kind == "var":
                self._next()
                terms.append(Variable(token.text))
            else:
                break
        if not terms:
            raise SparqlSyntaxError(
                "DESCRIBE requires at least one resource or variable",
                self._peek().pos,
            )
        where = None
        if self._accept_keyword("WHERE") or self._at_punct("{"):
            where = self._parse_group()
        return DescribeQuery(terms=terms, where=where)

    # ------------------------------------------------------------------
    # Group graph patterns
    # ------------------------------------------------------------------
    def _parse_group(self) -> GroupPattern:
        self._expect_punct("{")
        group = GroupPattern()
        while not self._at_punct("}"):
            token = self._peek()
            if token.is_keyword("SELECT"):
                subquery = self._parse_select()
                group.elements.append(SubSelectPattern(subquery))
            elif token.is_keyword("OPTIONAL"):
                self._next()
                group.elements.append(OptionalPattern(self._parse_group()))
            elif token.is_keyword("FILTER"):
                self._next()
                group.elements.append(
                    FilterPattern(self._parse_constraint())
                )
            elif token.is_keyword("BIND"):
                self._next()
                self._expect_punct("(")
                expression = self._parse_expression()
                self._expect_keyword("AS")
                var_token = self._next()
                if var_token.kind != "var":
                    raise SparqlSyntaxError(
                        "expected variable after AS", var_token.pos
                    )
                self._expect_punct(")")
                group.elements.append(
                    BindPattern(expression, Variable(var_token.text))
                )
            elif token.is_keyword("VALUES"):
                self._next()
                group.elements.append(self._parse_values())
            elif token.is_keyword("GRAPH"):
                self._next()
                target = self._parse_term()
                if isinstance(target, Literal):
                    raise SparqlSyntaxError(
                        "GRAPH target must be an IRI or variable",
                        token.pos,
                    )
                group.elements.append(
                    GraphGraphPattern(target, self._parse_group())
                )
            elif self._at_punct("{"):
                group.elements.append(self._parse_group_or_union())
            else:
                bgp = BGP()
                while True:
                    bgp.triples.extend(self._parse_triples_same_subject())
                    if self._accept_punct("."):
                        token = self._peek()
                        if token.kind in ("var", "iri", "pname", "bnode",
                                          "string", "number"):
                            continue
                    break
                group.elements.append(bgp)
            self._accept_punct(".")
        self._expect_punct("}")
        return group

    def _parse_group_or_union(self) -> PatternNode:
        first = self._parse_group()
        if not self._accept_keyword("UNION"):
            return first
        branches = [first]
        while True:
            branches.append(self._parse_group())
            if not self._accept_keyword("UNION"):
                break
        return UnionPattern(branches)

    def _parse_values(self) -> ValuesPattern:
        variables: List[Variable] = []
        token = self._peek()
        single = False
        if token.kind == "var":
            self._next()
            variables.append(Variable(token.text))
            single = True
        else:
            self._expect_punct("(")
            while not self._at_punct(")"):
                var_token = self._next()
                if var_token.kind != "var":
                    raise SparqlSyntaxError(
                        "expected variable in VALUES", var_token.pos
                    )
                variables.append(Variable(var_token.text))
            self._expect_punct(")")
        self._expect_punct("{")
        rows: List[Tuple[Optional[Term], ...]] = []
        while not self._at_punct("}"):
            if single:
                rows.append((self._parse_values_term(),))
            else:
                self._expect_punct("(")
                row: List[Optional[Term]] = []
                while not self._at_punct(")"):
                    row.append(self._parse_values_term())
                self._expect_punct(")")
                if len(row) != len(variables):
                    raise SparqlSyntaxError(
                        "VALUES row arity does not match variable list",
                        self._peek().pos,
                    )
                rows.append(tuple(row))
        self._expect_punct("}")
        return ValuesPattern(variables, rows)

    def _parse_values_term(self) -> Optional[Term]:
        if self._accept_keyword("UNDEF"):
            return None
        term = self._parse_term(allow_var=False)
        return term

    # ------------------------------------------------------------------
    # Triple patterns
    # ------------------------------------------------------------------
    def _parse_triples_same_subject(self) -> List[TriplePatternNode]:
        subject = self._parse_term()
        triples: List[TriplePatternNode] = []
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term()
                triples.append(TriplePatternNode(subject, predicate, obj))
                if not self._accept_punct(","):
                    break
            if self._accept_punct(";"):
                # allow trailing ';' before '.' or '}'
                token = self._peek()
                if self._at_punct(".") or self._at_punct("}"):
                    break
                continue
            break
        return triples

    def _parse_verb(self) -> Term:
        token = self._peek()
        if token.is_keyword("A"):
            self._next()
            return RDF.type
        if token.kind == "pname" and token.text.startswith("bif:"):
            # Virtuoso magic predicates (?text bif:contains "pattern")
            self._next()
            return URIRef(token.text)
        term = self._parse_term()
        if isinstance(term, Literal):
            raise SparqlSyntaxError("literal cannot be a predicate",
                                    token.pos)
        return term

    def _parse_term(self, allow_var: bool = True) -> Term:
        token = self._next()
        if token.kind == "var":
            if not allow_var:
                raise SparqlSyntaxError(
                    "variable not allowed here", token.pos
                )
            return Variable(token.text)
        if token.kind == "iri":
            return URIRef(unescape_literal(token.text[1:-1]))
        if token.kind == "pname":
            return self._expand_pname(token.text, token.pos)
        if token.kind == "bnode":
            return BNode(token.text[2:])
        if token.kind == "string":
            lexical = unescape_literal(unquote_string(token.text))
            nxt = self._peek()
            if nxt.kind == "langtag":
                self._next()
                return Literal(lexical, lang=nxt.text[1:])
            if nxt.kind == "dtype":
                self._next()
                dtype = self._parse_term(allow_var=False)
                if not isinstance(dtype, URIRef):
                    raise SparqlSyntaxError(
                        "datatype must be an IRI", nxt.pos
                    )
                return Literal(lexical, datatype=dtype)
            return Literal(lexical)
        if token.kind == "number":
            return _number_literal(token.text)
        if token.is_keyword("TRUE"):
            return Literal("true", datatype=XSD_BOOLEAN)
        if token.is_keyword("FALSE"):
            return Literal("false", datatype=XSD_BOOLEAN)
        raise SparqlSyntaxError(
            f"expected term, got {token.text!r}", token.pos
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_constraint(self) -> Expression:
        token = self._peek()
        if self._at_punct("("):
            self._next()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        # bare function call: FILTER bif:st_intersects(...) / FILTER regex(...)
        return self._parse_primary()

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        operands = [left]
        while self._at_punct("||"):
            self._next()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return left
        return OrExpr(tuple(operands))

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        operands = [left]
        while self._at_punct("&&"):
            self._next()
            operands.append(self._parse_relational())
        if len(operands) == 1:
            return left
        return AndExpr(tuple(operands))

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.text in ("=", "!=", "<", ">", "<=",
                                                 ">="):
            self._next()
            right = self._parse_additive()
            return CompareExpr(token.text, left, right)
        if token.is_keyword("IN"):
            self._next()
            return InExpr(left, self._parse_expression_list())
        if token.is_keyword("NOT") and self._peek(1).is_keyword("IN"):
            self._next()
            self._next()
            return InExpr(left, self._parse_expression_list(), negated=True)
        return left

    def _parse_expression_list(self) -> Tuple[Expression, ...]:
        self._expect_punct("(")
        choices: List[Expression] = []
        if not self._at_punct(")"):
            choices.append(self._parse_expression())
            while self._accept_punct(","):
                choices.append(self._parse_expression())
        self._expect_punct(")")
        return tuple(choices)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._next()
                right = self._parse_multiplicative()
                left = ArithExpr(token.text, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/"):
                self._next()
                right = self._parse_unary()
                left = ArithExpr(token.text, left, right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind == "op" and token.text == "!":
            self._next()
            return NotExpr(self._parse_unary())
        if token.kind == "op" and token.text == "-":
            self._next()
            return NegExpr(self._parse_unary())
        if token.kind == "op" and token.text == "+":
            self._next()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if self._at_punct("("):
            self._next()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.kind == "name" and token.text.upper() in BUILTIN_FUNCTIONS:
            self._next()
            return FunctionCall(
                token.text.upper(), self._parse_expression_list()
            )
        if token.is_keyword("EXISTS"):
            self._next()
            return ExistsExpr(self._parse_group())
        if token.is_keyword("NOT") and self._peek(1).is_keyword("EXISTS"):
            self._next()
            self._next()
            return ExistsExpr(self._parse_group(), negated=True)
        if token.kind == "pname":
            # function call via prefixed name (bif:st_intersects, xsd:double)
            if self._peek(1).kind == "punct" and self._peek(1).text == "(":
                self._next()
                name = self._function_name(token)
                return FunctionCall(name, self._parse_expression_list())
            self._next()
            return TermExpr(self._expand_pname(token.text, token.pos))
        if token.kind == "iri":
            if self._peek(1).kind == "punct" and self._peek(1).text == "(":
                self._next()
                name = unescape_literal(token.text[1:-1])
                return FunctionCall(name, self._parse_expression_list())
            self._next()
            return TermExpr(URIRef(unescape_literal(token.text[1:-1])))
        # plain term (var, literal, number, boolean)
        return TermExpr(self._parse_term())

    def _function_name(self, token: Token) -> str:
        prefix, _, local = token.text.partition(":")
        if prefix == "bif":
            # Virtuoso built-in functions keep their short name
            return f"bif:{local}"
        return str(self._expand_pname(token.text, token.pos))


def _number_literal(text: str) -> Literal:
    if "e" in text or "E" in text:
        return Literal(text, datatype=XSD_DOUBLE)
    if "." in text:
        return Literal(text, datatype=XSD_DECIMAL)
    return Literal(text, datatype=XSD_INTEGER)


def parse_query(query: str) -> Query:
    """Parse ``query`` text into an AST."""
    return Parser(query).parse()
