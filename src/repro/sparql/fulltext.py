"""Full-text support: tokenization, matching and an inverted index.

Two consumers:

* the SPARQL evaluator's ``bif:contains(?text, 'pattern')`` filter
  function — per-solution matching with Virtuoso's AND/OR/quoted-phrase
  mini-language;
* :class:`FullTextIndex` — an inverted index over literal objects in a
  graph, used by the resolvers and the incremental search interface where
  scanning every literal per keystroke would be too slow.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import Literal, Term

_WORD_RE = re.compile(r"[\w']+", re.UNICODE)


def tokenize_text(text: str) -> List[str]:
    """Lower-cased word tokens of ``text``."""
    return [w.lower() for w in _WORD_RE.findall(text)]


def _parse_pattern(pattern: str) -> List[List[str]]:
    """Parse a ``bif:contains`` pattern into OR-of-AND token groups.

    Supports the subset of Virtuoso's text-search syntax used here:
    bare words (implicit AND), ``AND``, ``OR`` and double-quoted phrases
    (matched as consecutive tokens). Returns a disjunction of
    conjunctions, each conjunct being a phrase (list of tokens treated as
    one unit when longer than one).
    """
    parts = re.findall(r'"[^"]*"|\S+', pattern)
    groups: List[List[str]] = [[]]
    expect_term = True
    for part in parts:
        upper = part.upper()
        if upper == "OR" and not expect_term:
            groups.append([])
            expect_term = True
            continue
        if upper == "AND" and not expect_term:
            expect_term = True
            continue
        if part.startswith('"') and part.endswith('"'):
            phrase = " ".join(tokenize_text(part[1:-1]))
            if phrase:
                groups[-1].append(phrase)
        else:
            for token in tokenize_text(part):
                groups[-1].append(token)
        expect_term = False
    return [g for g in groups if g]


def contains(text: str, pattern: str) -> bool:
    """Virtuoso-style ``bif:contains`` evaluation against ``text``."""
    tokens = tokenize_text(text)
    token_set = set(tokens)
    joined = " ".join(tokens)
    groups = _parse_pattern(pattern)
    if not groups:
        return False
    for group in groups:
        if all(
            (term in token_set)
            if " " not in term
            else (term in joined)
            for term in group
        ):
            return True
    return False


class FullTextIndex:
    """Inverted index mapping word tokens to (subject, predicate) pairs.

    Indexes every literal object in a graph. Lookups return the subjects
    whose literals contain the query tokens; :meth:`search_prefix`
    supports the mobile interface's search-as-you-type behaviour.
    """

    def __init__(self) -> None:
        self._postings: Dict[str, Set[Tuple[Term, Term]]] = defaultdict(set)
        self._prefix_cache: Optional[List[str]] = None

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        predicates: Optional[Iterable[Term]] = None,
    ) -> "FullTextIndex":
        """Build an index over ``graph`` literals.

        ``predicates`` restricts indexing to the given predicates (e.g.
        only ``rdfs:label``); by default every literal is indexed.
        """
        index = cls()
        wanted = set(predicates) if predicates is not None else None
        for s, p, o in graph:
            if not isinstance(o, Literal):
                continue
            if wanted is not None and p not in wanted:
                continue
            index.add(s, p, o.lexical)
        return index

    def add(self, subject: Term, predicate: Term, text: str) -> None:
        for token in tokenize_text(text):
            self._postings[token].add((subject, predicate))
        self._prefix_cache = None

    def __len__(self) -> int:
        return len(self._postings)

    def search(self, query: str) -> Set[Term]:
        """Subjects whose indexed text contains *all* query tokens."""
        tokens = tokenize_text(query)
        if not tokens:
            return set()
        result: Optional[Set[Term]] = None
        for token in tokens:
            subjects = {s for s, _ in self._postings.get(token, ())}
            result = subjects if result is None else result & subjects
            if not result:
                return set()
        return result or set()

    def search_prefix(self, prefix: str, limit: int = 50) -> Set[Term]:
        """Subjects with any indexed token starting with ``prefix``.

        This is the AJAX search-box primitive (Figure 2/3 of the paper):
        the last keystroke's partial word matches by prefix.
        """
        prefix = prefix.lower()
        if not prefix:
            return set()
        if self._prefix_cache is None:
            self._prefix_cache = sorted(self._postings)
        import bisect

        tokens = self._prefix_cache
        start = bisect.bisect_left(tokens, prefix)
        result: Set[Term] = set()
        for idx in range(start, len(tokens)):
            token = tokens[idx]
            if not token.startswith(prefix):
                break
            result.update(s for s, _ in self._postings[token])
            if len(result) >= limit:
                break
        return result

    def tokens(self) -> List[str]:
        """All indexed tokens (sorted)."""
        return sorted(self._postings)
