"""Explicit query algebra: the plan the optimizer rewrites.

The parser's AST (:mod:`repro.sparql.ast`) doubles as an executable
tree, but it has no room for the facts a planner needs: per-node
cardinality estimates, statically chosen scan orders, filters pushed
into the basic graph pattern that owns their variables. This module
lowers a parsed query into an explicit algebra tree of
:class:`PlanNode` objects that the pass pipeline in
:mod:`repro.analysis.plan` rewrites and the evaluator executes
(``Evaluator(optimize=True)``).

Lowering never mutates the AST — plan nodes hold references to the
parser's (immutable) triple patterns and expressions, and every
structural decision lives in the plan, not the query.

Every node carries two annotations rendered by ``repro explain``:

* ``est_rows`` — the planner's cardinality estimate (filled by the
  estimate pass from :class:`repro.analysis.stats.GraphStatistics`);
* ``actual_rows`` — the number of solutions the node actually produced
  during execution (filled by the evaluator).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import Term, Variable
from .ast import (
    AggregateBinding,
    AndExpr,
    ArithExpr,
    AskQuery,
    BGP,
    BindPattern,
    CompareExpr,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionCall,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    NegExpr,
    NotExpr,
    OptionalPattern,
    OrderCondition,
    OrExpr,
    PatternNode,
    Query,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePatternNode,
    UnionPattern,
    ValuesPattern,
)
from .errors import SparqlEvalError


class PlanNode:
    """Base class of all algebra nodes.

    Within a :class:`JoinNode`, children act as *stream operators*:
    solution mappings flow through them in sequence, matching the
    group-graph-pattern semantics the evaluator implements.
    """

    __slots__ = ("est_rows", "actual_rows", "actual_ms")

    def __init__(self) -> None:
        self.est_rows: Optional[float] = None
        self.actual_rows: Optional[int] = None
        # inclusive wall time spent producing this node's solutions,
        # in milliseconds — filled only when the evaluator times plan
        # nodes (EXPLAIN, or an enabled tracer)
        self.actual_ms: Optional[float] = None

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def label(self) -> str:
        raise NotImplementedError

    def certain_vars(self) -> frozenset:
        """Variable names this node binds in every solution it emits."""
        return frozenset()


class ScanStep(PlanNode):
    """One triple-pattern lookup inside a :class:`BGPNode`.

    ``filters`` are expressions pushed down by the planner, applied to
    each solution as soon as this scan has extended it.
    """

    __slots__ = ("pattern", "filters")

    def __init__(
        self,
        pattern: TriplePatternNode,
        filters: Optional[List[Expression]] = None,
    ) -> None:
        super().__init__()
        self.pattern = pattern
        self.filters: List[Expression] = list(filters or ())

    def variables(self) -> frozenset:
        return frozenset(str(v) for v in self.pattern.variables())

    def certain_vars(self) -> frozenset:
        return self.variables()

    def label(self) -> str:
        text = "Scan " + " ".join(
            _term_text(t)
            for t in (
                self.pattern.subject,
                self.pattern.predicate,
                self.pattern.object,
            )
        )
        for expr in self.filters:
            text += f" | FILTER {render_expression(expr)}"
        return text


class BGPNode(PlanNode):
    """A basic graph pattern: an ordered list of scans.

    ``pushed`` holds filters assigned to this BGP by the pushdown pass
    but not yet attached to a specific scan (the reorder pass attaches
    them at the earliest position where their variables are bound; the
    executor applies any leftovers after the final scan).
    """

    __slots__ = ("scans", "pushed")

    def __init__(
        self,
        scans: List[ScanStep],
        pushed: Optional[List[Expression]] = None,
    ) -> None:
        super().__init__()
        self.scans = scans
        self.pushed: List[Expression] = list(pushed or ())

    def children(self) -> Sequence[PlanNode]:
        return self.scans

    def variables(self) -> frozenset:
        names: set = set()
        for scan in self.scans:
            names |= scan.variables()
        return frozenset(names)

    def certain_vars(self) -> frozenset:
        return self.variables()

    def label(self) -> str:
        text = f"BGP ({len(self.scans)} scan(s))"
        for expr in self.pushed:
            text += f" | FILTER {render_expression(expr)}"
        return text


class FilterNode(PlanNode):
    """A group-level FILTER applied to the incoming solution stream."""

    __slots__ = ("expression",)

    def __init__(self, expression: Expression) -> None:
        super().__init__()
        self.expression = expression

    def label(self) -> str:
        return f"Filter {render_expression(self.expression)}"


class JoinNode(PlanNode):
    """A group ``{ ... }``: elements applied to the stream in order."""

    __slots__ = ("elements",)

    def __init__(self, elements: List[PlanNode]) -> None:
        super().__init__()
        self.elements = elements

    def children(self) -> Sequence[PlanNode]:
        return self.elements

    def certain_vars(self) -> frozenset:
        names: frozenset = frozenset()
        for element in self.elements:
            names |= element.certain_vars()
        return names

    def label(self) -> str:
        return f"Join ({len(self.elements)} element(s))"


class LeftJoinNode(PlanNode):
    """``OPTIONAL { ... }`` — a left join against the group plan."""

    __slots__ = ("group",)

    def __init__(self, group: PlanNode) -> None:
        super().__init__()
        self.group = group

    def children(self) -> Sequence[PlanNode]:
        return (self.group,)

    def label(self) -> str:
        return "LeftJoin (OPTIONAL)"


class UnionNode(PlanNode):
    """``{ ... } UNION { ... }`` — branch concatenation."""

    __slots__ = ("branches",)

    def __init__(self, branches: List[PlanNode]) -> None:
        super().__init__()
        self.branches = branches

    def children(self) -> Sequence[PlanNode]:
        return self.branches

    def certain_vars(self) -> frozenset:
        if not self.branches:
            return frozenset()
        names = self.branches[0].certain_vars()
        for branch in self.branches[1:]:
            names &= branch.certain_vars()
        return names

    def label(self) -> str:
        return f"Union ({len(self.branches)} branch(es))"


class ExtendNode(PlanNode):
    """``BIND (expr AS ?var)``."""

    __slots__ = ("variable", "expression")

    def __init__(self, variable: Variable, expression: Expression) -> None:
        super().__init__()
        self.variable = variable
        self.expression = expression

    def certain_vars(self) -> frozenset:
        # BIND leaves the variable unbound when the expression errors
        return frozenset()

    def label(self) -> str:
        return (
            f"Extend ?{self.variable} := "
            f"{render_expression(self.expression)}"
        )


class ValuesNode(PlanNode):
    """Inline ``VALUES`` data."""

    __slots__ = ("variables", "rows")

    def __init__(
        self,
        variables: List[Variable],
        rows: List[Tuple[Optional[Term], ...]],
    ) -> None:
        super().__init__()
        self.variables = variables
        self.rows = rows

    def certain_vars(self) -> frozenset:
        certain = set(str(v) for v in self.variables)
        for row in self.rows:
            for var, value in zip(self.variables, row):
                if value is None:
                    certain.discard(str(var))
        return frozenset(certain)

    def label(self) -> str:
        names = " ".join(f"?{v}" for v in self.variables)
        return f"Values [{names}] ({len(self.rows)} row(s))"


class SubSelectNode(PlanNode):
    """A nested ``{ SELECT ... }``: inner plan evaluated once, joined."""

    __slots__ = ("query", "plan")

    def __init__(self, query: SelectQuery, plan: PlanNode) -> None:
        super().__init__()
        self.query = query
        self.plan = plan

    def children(self) -> Sequence[PlanNode]:
        return (self.plan,)

    def certain_vars(self) -> frozenset:
        # projected variables may be unbound (e.g. OPTIONAL-only)
        return frozenset()

    def label(self) -> str:
        names = " ".join(f"?{v}" for v in self.query.variables) or "*"
        return f"SubSelect [{names}]"


class GraphNode(PlanNode):
    """``GRAPH <iri>/?g { ... }`` over the dataset's named graphs."""

    __slots__ = ("target", "group")

    def __init__(self, target: Term, group: PlanNode) -> None:
        super().__init__()
        self.target = target
        self.group = group

    def children(self) -> Sequence[PlanNode]:
        return (self.group,)

    def label(self) -> str:
        return f"Graph {_term_text(self.target)}"


class EmptyNode(PlanNode):
    """A provably-empty pattern: yields no solutions."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        super().__init__()
        self.reason = reason
        self.est_rows = 0.0

    def label(self) -> str:
        return f"Empty ({self.reason})"


class ProjectNode(PlanNode):
    """Projection onto the SELECT variables."""

    __slots__ = ("variables", "child")

    def __init__(self, variables: List[Variable], child: PlanNode) -> None:
        super().__init__()
        self.variables = variables
        self.child = child

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def label(self) -> str:
        names = " ".join(f"?{v}" for v in self.variables) or "*"
        return f"Project [{names}]"


class DistinctNode(PlanNode):
    """``DISTINCT`` / ``REDUCED`` duplicate-row elimination."""

    __slots__ = ("child",)

    def __init__(self, child: PlanNode) -> None:
        super().__init__()
        self.child = child

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def label(self) -> str:
        return "Distinct"


class OrderNode(PlanNode):
    """``ORDER BY`` — materializes and sorts the stream."""

    __slots__ = ("conditions", "child")

    def __init__(
        self, conditions: List[OrderCondition], child: PlanNode
    ) -> None:
        super().__init__()
        self.conditions = conditions
        self.child = child

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            ("DESC(" if c.descending else "ASC(")
            + render_expression(c.expression) + ")"
            for c in self.conditions
        )
        return f"OrderBy {keys}"


class SliceNode(PlanNode):
    """``LIMIT`` / ``OFFSET``."""

    __slots__ = ("limit", "offset", "child")

    def __init__(
        self, limit: Optional[int], offset: int, child: PlanNode
    ) -> None:
        super().__init__()
        self.limit = limit
        self.offset = offset
        self.child = child

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def label(self) -> str:
        parts = []
        if self.offset:
            parts.append(f"offset={self.offset}")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return "Slice " + " ".join(parts)


class AggregateNode(PlanNode):
    """GROUP BY / aggregate projection (or plain expression bindings)."""

    __slots__ = ("query", "child")

    def __init__(self, query: SelectQuery, child: PlanNode) -> None:
        super().__init__()
        self.query = query
        self.child = child

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    @property
    def grouped(self) -> bool:
        return bool(self.query.group_by) or any(
            agg.function != "EXPR" for agg in self.query.aggregates
        )

    def label(self) -> str:
        if not self.grouped:
            return "Extend (projection expressions)"
        keys = ", ".join(
            render_expression(e) for e in self.query.group_by
        ) or "()"
        aggs = ", ".join(
            _aggregate_text(a) for a in self.query.aggregates
        )
        return f"Aggregate group-by {keys} [{aggs}]"


# ---------------------------------------------------------------------------
# Lowering: AST -> algebra
# ---------------------------------------------------------------------------


def lower_query(query: Query) -> PlanNode:
    """Lower any query form; non-SELECT forms plan their WHERE group."""
    if isinstance(query, SelectQuery):
        return lower_select(query)
    if isinstance(query, (AskQuery, ConstructQuery)):
        return lower_group(query.where)
    if isinstance(query, DescribeQuery):
        if query.where is None:
            return JoinNode([])
        return lower_group(query.where)
    raise SparqlEvalError(f"cannot lower query form: {query!r}")


def lower_select(query: SelectQuery) -> PlanNode:
    """Lower a SELECT into the modifier chain the evaluator applies."""
    node: PlanNode = lower_group(query.where)
    if query.aggregates or query.group_by:
        node = AggregateNode(query, node)
    if query.order_by:
        node = OrderNode(list(query.order_by), node)
    node = ProjectNode(
        list(query.variables) or collect_variables(query.where), node
    )
    if query.distinct or query.reduced:
        node = DistinctNode(node)
    if query.offset or query.limit is not None:
        node = SliceNode(query.limit, query.offset, node)
    return node


def lower_group(group: GroupPattern) -> JoinNode:
    """Lower a group pattern; FILTERs go last (group-level scoping)."""
    elements: List[PlanNode] = []
    filters: List[PlanNode] = []
    for element in group.elements:
        if isinstance(element, FilterPattern):
            filters.append(FilterNode(element.expression))
        else:
            elements.append(_lower_element(element))
    return JoinNode(elements + filters)


def _lower_element(element: PatternNode) -> PlanNode:
    if isinstance(element, BGP):
        return BGPNode([ScanStep(t) for t in element.triples])
    if isinstance(element, GroupPattern):
        return lower_group(element)
    if isinstance(element, OptionalPattern):
        return LeftJoinNode(lower_group(element.group))
    if isinstance(element, UnionPattern):
        return UnionNode([lower_group(b) for b in element.branches])
    if isinstance(element, BindPattern):
        return ExtendNode(element.variable, element.expression)
    if isinstance(element, ValuesPattern):
        return ValuesNode(list(element.variables), list(element.rows))
    if isinstance(element, SubSelectPattern):
        return SubSelectNode(
            element.query, lower_select(element.query)
        )
    if isinstance(element, GraphGraphPattern):
        return GraphNode(element.target, lower_group(element.group))
    raise SparqlEvalError(f"cannot lower pattern element: {element!r}")


def collect_variables(node: PatternNode) -> List[Variable]:
    """In-order distinct variables of a pattern tree (SELECT *)."""
    found: List[Variable] = []
    seen: set = set()

    def visit(element: PatternNode) -> None:
        if isinstance(element, BGP):
            for triple in element.triples:
                for var in triple.variables():
                    if var not in seen:
                        seen.add(var)
                        found.append(var)
        elif isinstance(element, GroupPattern):
            for child in element.elements:
                visit(child)
        elif isinstance(element, OptionalPattern):
            visit(element.group)
        elif isinstance(element, UnionPattern):
            for branch in element.branches:
                visit(branch)
        elif isinstance(element, BindPattern):
            if element.variable not in seen:
                seen.add(element.variable)
                found.append(element.variable)
        elif isinstance(element, ValuesPattern):
            for var in element.variables:
                if var not in seen:
                    seen.add(var)
                    found.append(var)
        elif isinstance(element, SubSelectPattern):
            inner = element.query.variables or collect_variables(
                element.query.where
            )
            for var in inner:
                if var not in seen:
                    seen.add(var)
                    found.append(var)

    visit(node)
    return found


# ---------------------------------------------------------------------------
# Traversal / rendering
# ---------------------------------------------------------------------------


def walk(node: PlanNode) -> Iterator[PlanNode]:
    """Depth-first pre-order walk of a plan tree."""
    yield node
    for child in node.children():
        yield from walk(child)


def render_plan(root: PlanNode) -> str:
    """Render a plan as an indented tree with cardinality annotations."""
    lines: List[str] = []

    def visit(node: PlanNode, prefix: str, tail: str) -> None:
        lines.append(tail + node.label() + _annotation(node))
        children = list(node.children())
        for index, child in enumerate(children):
            last = index == len(children) - 1
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            visit(child, prefix + extension, prefix + connector)

    visit(root, "", "")
    return "\n".join(lines)


def _annotation(node: PlanNode) -> str:
    parts = []
    if node.est_rows is not None:
        parts.append(f"est={_fmt_rows(node.est_rows)}")
    if node.actual_rows is not None:
        parts.append(f"actual={node.actual_rows}")
    if node.actual_ms is not None:
        parts.append(f"ms={node.actual_ms:.2f}")
    return ("  [" + " ".join(parts) + "]") if parts else ""


def _fmt_rows(value: float) -> str:
    if value == int(value):
        return str(int(value))
    if value >= 10:
        return str(int(round(value)))
    if value >= 0.095:
        return f"{value:.1f}"
    return f"{value:.2g}"


def _term_text(term: Term) -> str:
    if isinstance(term, Variable):
        return f"?{term}"
    return term.n3()


def _aggregate_text(agg: AggregateBinding) -> str:
    if agg.function == "EXPR":
        inner = render_expression(agg.argument) if agg.argument else ""
        return f"({inner} AS ?{agg.alias})"
    arg = "*" if agg.argument is None else render_expression(agg.argument)
    distinct = "DISTINCT " if agg.distinct else ""
    return f"({agg.function}({distinct}{arg}) AS ?{agg.alias})"


def render_expression(expr: Expression) -> str:
    """Compact SPARQL-ish rendering of an expression tree."""
    if isinstance(expr, TermExpr):
        return _term_text(expr.term)
    if isinstance(expr, OrExpr):
        return "(" + " || ".join(
            render_expression(e) for e in expr.operands
        ) + ")"
    if isinstance(expr, AndExpr):
        return "(" + " && ".join(
            render_expression(e) for e in expr.operands
        ) + ")"
    if isinstance(expr, NotExpr):
        return "!" + render_expression(expr.operand)
    if isinstance(expr, NegExpr):
        return "-" + render_expression(expr.operand)
    if isinstance(expr, CompareExpr):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, ArithExpr):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, InExpr):
        keyword = "NOT IN" if expr.negated else "IN"
        choices = ", ".join(
            render_expression(c) for c in expr.choices
        )
        return (
            f"({render_expression(expr.operand)} {keyword} ({choices}))"
        )
    if isinstance(expr, FunctionCall):
        args = ", ".join(render_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ExistsExpr):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} {{…}}"
    return repr(expr)
