"""SPARQL query evaluation over :class:`repro.rdf.Graph`.

Graph-writes: fresh result graphs materialized for CONSTRUCT
queries

Evaluation streams solution mappings (dicts of variable → term) through
the group-graph-pattern elements:

* BGPs are join-reordered greedily — at each step the most selective
  remaining triple pattern (most bound positions under the current
  bindings) is matched against the store's indexes;
* FILTERs within a group are collected and applied after the group's
  other elements, matching SPARQL's group-level filter scoping;
* OPTIONAL is a left join, UNION a concatenation, sub-SELECTs are
  evaluated independently and hash-joined back in.

Expression errors follow the spec: a FILTER whose expression errors
rejects the solution; an ORDER BY key that errors sorts lowest.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs import get_registry, get_tracer
from ..rdf.graph import Dataset, Graph
from ..rdf.terms import BNode, Literal, Term, URIRef, Variable
from .algebra import (
    AggregateNode,
    BGPNode,
    DistinctNode,
    EmptyNode,
    ExtendNode,
    FilterNode,
    GraphNode,
    JoinNode,
    LeftJoinNode,
    OrderNode,
    PlanNode,
    ProjectNode,
    ScanStep,
    SliceNode,
    SubSelectNode,
    UnionNode,
    ValuesNode,
)
from .ast import (
    AggregateBinding,
    AndExpr,
    ArithExpr,
    AskQuery,
    BGP,
    BindPattern,
    CompareExpr,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionCall,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    NegExpr,
    NotExpr,
    OptionalPattern,
    OrExpr,
    PatternNode,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePatternNode,
    UnionPattern,
    ValuesPattern,
)
from .errors import ExpressionError, SparqlEvalError
from .functions import FUNCTIONS, arithmetic, boolean, compare, ebv
from .parser import parse_query
from .results import Row, SelectResult

Bindings = Dict[Variable, Term]

#: Virtuoso magic predicate for full-text matching in triple position.
_MAGIC_CONTAINS = URIRef("bif:contains")

_EMPTY: Bindings = {}


class Evaluator:
    """Evaluates parsed queries against a graph.

    ``graph`` may be a :class:`~repro.rdf.graph.Graph`, a
    :class:`~repro.rdf.graph.Dataset`, or an MVCC quad-store
    (anything exposing ``dataset_snapshot``/``head``/``commit``, i.e.
    :class:`repro.store.QuadStore`) — a store is pinned to one
    immutable generation snapshot when the evaluator is built, so
    concurrent commits never change what a running query sees.

    ``functions`` extends/overrides the builtin function registry — this is
    how deployments register extra ``bif:`` style extensions.

    With ``strict=True`` every query is linted before evaluation
    (:class:`repro.analysis.SparqlLinter`) and evaluation refuses to run
    when error-severity diagnostics are found, raising
    :class:`repro.analysis.AnalysisError`. ``linter`` overrides the
    default linter instance (e.g. to supply a custom vocabulary).

    With ``optimize=True`` (the default) queries are first lowered and
    rewritten by the static planner (:mod:`repro.analysis.plan`) and
    the optimized plan is executed — results are identical to the
    naive path, only faster. ``planner`` overrides the planner
    instance (e.g. to pin a custom pass pipeline); by default one is
    built from statistics collected off the live graph and re-collected
    whenever the graph changes.
    """

    def __init__(
        self,
        graph,
        functions: Optional[Dict[str, object]] = None,
        strict: bool = False,
        linter=None,
        optimize: bool = True,
        planner=None,
    ) -> None:
        pin = getattr(graph, "dataset_snapshot", None)
        if callable(pin) and hasattr(graph, "head") \
                and hasattr(graph, "commit"):
            # an MVCC quad-store (duck-typed — sparql must not import
            # repro.store): pin one generation for this evaluator's
            # lifetime, so no query ever observes an in-flight write
            # batch. The pinned view is a Dataset, handled below.
            graph = pin()
        if isinstance(graph, Dataset):
            # Virtuoso-style: the default graph for plain BGPs is the
            # union of everything; GRAPH patterns address named graphs.
            self.dataset: Optional[Dataset] = graph
            self.graph = graph.union_graph()
        else:
            self.dataset = None
            self.graph = graph
        #: MVCC generation the evaluator is pinned to (None for plain
        #: graphs) — surfaced by EXPLAIN.
        self.generation = getattr(self.graph, "generation", None)
        self.functions = dict(FUNCTIONS)
        if functions:
            self.functions.update(functions)
        self.strict = strict
        self._linter = linter
        self.optimize = optimize
        self._planner = planner
        self._stats = None
        # when true, _exec_node/_exec_modifier accumulate inclusive
        # wall time on each plan node (PlanNode.actual_ms) and emit
        # plan-node spans; EXPLAIN turns it on for its run, and an
        # enabled tracer turns it on for every evaluation. Off by
        # default: per-solution clock reads are measurable on hot
        # queries.
        self._time_plan_nodes = False

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def evaluate(self, query) -> object:
        """Evaluate a query AST or query string.

        Returns a :class:`SelectResult` for SELECT, ``bool`` for ASK and a
        :class:`~repro.rdf.Graph` for CONSTRUCT/DESCRIBE.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if self.strict:
            self._lint(query)
        tracer = get_tracer()
        form = type(query).__name__.replace("Query", "").upper()
        began = time.perf_counter()
        with tracer.span("sparql.evaluate", {"form": form}):
            previous_timing = self._time_plan_nodes
            if tracer.enabled:
                self._time_plan_nodes = True
            try:
                if isinstance(query, SelectQuery):
                    result = self._eval_select(query)
                elif isinstance(query, AskQuery):
                    result = self._eval_ask(query)
                elif isinstance(query, ConstructQuery):
                    result = self._eval_construct(query)
                elif isinstance(query, DescribeQuery):
                    result = self._eval_describe(query)
                else:
                    raise SparqlEvalError(
                        f"unsupported query form: {query!r}"
                    )
            finally:
                self._time_plan_nodes = previous_timing
        get_registry().histogram(
            "repro_query_seconds",
            "End-to-end SPARQL evaluation latency.",
        ).labels(form=form).observe(time.perf_counter() - began)
        return result

    def _lint(self, query) -> None:
        """Strict mode: refuse to evaluate queries with error diagnostics."""
        # imported lazily — repro.analysis pulls in vocabulary sources
        # that themselves build evaluators.
        from ..analysis import AnalysisError, Severity, SparqlLinter

        if self._linter is None:
            self._linter = SparqlLinter.default()
        errors = [
            d for d in self._linter.lint(query)
            if d.severity is Severity.ERROR
        ]
        if errors:
            raise AnalysisError(errors)

    # ------------------------------------------------------------------
    # Planning (optimize=True)
    # ------------------------------------------------------------------
    def _statistics(self):
        """Graph statistics, re-collected whenever the graph changes.

        The snapshot is cached on the graph itself so every evaluator
        over the same store shares one collection pass; the
        version-check/rebuild dance lives in
        :meth:`GraphStatistics.cached`, which serializes concurrent
        rebuilds instead of letting every racing evaluator re-scan.
        """
        from ..analysis.stats import GraphStatistics

        stats = GraphStatistics.cached(self.graph)
        self._stats = stats
        self._observe_stats_age(stats)
        return stats

    @staticmethod
    def _observe_stats_age(stats) -> None:
        age = getattr(stats, "age_seconds", None)
        if age is not None:
            get_registry().gauge(
                "repro_graph_stats_age_seconds",
                "Age of the planner's graph-statistics snapshot at "
                "last use.",
            ).set(age)

    def _plan(self, query, name: Optional[str] = None):
        """Lower and rewrite ``query`` with the static planner."""
        from ..analysis.plan import QueryPlanner

        planner = self._planner
        if planner is None:
            planner = QueryPlanner(
                stats=self._statistics(), functions=self.functions
            )
        return planner.plan(query, name=name)

    def explain(
        self,
        query,
        name: Optional[str] = None,
        execute: bool = True,
        compare: bool = False,
    ):
        """Plan ``query`` and report the annotated algebra tree.

        Returns a :class:`repro.analysis.plan.Explanation`; with
        ``execute`` the plan runs and every node records the row count
        it actually produced, with ``compare`` the naive path is timed
        alongside.
        """
        from ..analysis.plan import explain as _explain

        return _explain(
            self, query, name=name, execute=execute, compare=compare
        )

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _eval_select(self, query: SelectQuery) -> SelectResult:
        if self.optimize:
            planned = self._plan(query)
            rows = self._exec_select_plan(query, planned.plan)
        else:
            rows = self._select_rows(query)
        variables = query.variables or self._collect_variables(query.where)
        return SelectResult(variables, rows)

    def _select_rows(self, query: SelectQuery) -> List[Row]:
        solutions = self._eval_group(query.where, iter([dict()]))

        if query.group_by or any(
            agg.function != "EXPR" for agg in query.aggregates
        ):
            solutions = self._aggregate(query, solutions)
        elif query.aggregates:
            # plain (expr AS ?v) projections without grouping
            solutions = self._bind_projection_exprs(query, solutions)

        materialized = list(solutions)

        if query.order_by:
            materialized.sort(
                key=lambda row: tuple(
                    self._order_key(cond, row) for cond in query.order_by
                )
            )

        variables = query.variables or self._collect_variables(query.where)
        projected: List[Row] = [
            {v: row[v] for v in variables if v in row}
            for row in materialized
        ]

        if query.distinct or query.reduced:
            seen = set()
            unique: List[Row] = []
            for row in projected:
                key = tuple(sorted((str(k), v) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            projected = unique

        if query.offset:
            projected = projected[query.offset :]
        if query.limit is not None:
            projected = projected[: query.limit]
        return projected

    def _bind_projection_exprs(
        self, query: SelectQuery, solutions: Iterator[Bindings]
    ) -> Iterator[Bindings]:
        for row in solutions:
            extended = dict(row)
            for agg in query.aggregates:
                try:
                    extended[agg.alias] = self._eval_expression(
                        agg.argument, extended
                    )
                except ExpressionError:
                    pass
            yield extended

    def _aggregate(
        self, query: SelectQuery, solutions: Iterator[Bindings]
    ) -> Iterator[Bindings]:
        groups: Dict[Tuple, List[Bindings]] = {}
        for row in solutions:
            key_parts = []
            for expr in query.group_by:
                try:
                    key_parts.append(self._eval_expression(expr, row))
                except ExpressionError:
                    key_parts.append(None)
            groups.setdefault(tuple(key_parts), []).append(row)
        if not groups and not query.group_by:
            groups[()] = []

        for key, rows in groups.items():
            result: Bindings = {}
            for expr, value in zip(query.group_by, key):
                if isinstance(expr, TermExpr) and isinstance(
                    expr.term, Variable
                ) and value is not None:
                    result[expr.term] = value
            for agg in query.aggregates:
                value = self._eval_aggregate(agg, rows)
                if value is not None:
                    result[agg.alias] = value
            yield result

    def _eval_aggregate(
        self, agg: AggregateBinding, rows: List[Bindings]
    ) -> Optional[Term]:
        if agg.function == "COUNT" and agg.argument is None:
            return Literal(len(rows))
        values: List[Term] = []
        for row in rows:
            try:
                if agg.argument is None:
                    continue
                values.append(self._eval_expression(agg.argument, row))
            except ExpressionError:
                continue
        if agg.distinct:
            seen = set()
            unique = []
            for v in values:
                if v not in seen:
                    seen.add(v)
                    unique.append(v)
            values = unique
        if agg.function == "COUNT":
            return Literal(len(values))
        if agg.function == "SAMPLE" or agg.function == "EXPR":
            return values[0] if values else None
        if agg.function in ("MIN", "MAX"):
            if not values:
                return None
            picked = min(values) if agg.function == "MIN" else max(values)
            return picked
        numeric = [
            v.value
            for v in values
            if isinstance(v, Literal) and v.is_numeric
        ]
        if len(numeric) != len(values) or not numeric:
            return None
        if agg.function == "SUM":
            total = sum(numeric)
            return Literal(total)
        if agg.function == "AVG":
            return Literal(sum(numeric) / len(numeric))
        raise SparqlEvalError(f"unknown aggregate {agg.function}")

    def _order_key(self, cond, row: Bindings) -> Tuple:
        try:
            term = self._eval_expression(cond.expression, row)
            key = term._sort_key()
            error = False
        except ExpressionError:
            key = ()
            error = True
        if cond.descending:
            return (_Desc((error, key)),)
        return ((error, key),)

    def _collect_variables(self, node: PatternNode) -> List[Variable]:
        found: List[Variable] = []
        seen = set()

        def visit(element: PatternNode) -> None:
            if isinstance(element, BGP):
                for triple in element.triples:
                    for var in triple.variables():
                        if var not in seen:
                            seen.add(var)
                            found.append(var)
            elif isinstance(element, GroupPattern):
                for child in element.elements:
                    visit(child)
            elif isinstance(element, OptionalPattern):
                visit(element.group)
            elif isinstance(element, UnionPattern):
                for branch in element.branches:
                    visit(branch)
            elif isinstance(element, BindPattern):
                if element.variable not in seen:
                    seen.add(element.variable)
                    found.append(element.variable)
            elif isinstance(element, ValuesPattern):
                for var in element.variables:
                    if var not in seen:
                        seen.add(var)
                        found.append(var)
            elif isinstance(element, SubSelectPattern):
                inner = element.query.variables or self._collect_variables(
                    element.query.where
                )
                for var in inner:
                    if var not in seen:
                        seen.add(var)
                        found.append(var)

        visit(node)
        return found

    # ------------------------------------------------------------------
    # ASK / CONSTRUCT / DESCRIBE
    # ------------------------------------------------------------------
    def _where_solutions(self, query) -> Iterator[Bindings]:
        """Solutions of a query's WHERE group, planned when optimizing."""
        if self.optimize:
            planned = self._plan(query)
            return self._exec_node(
                planned.plan, iter([dict()]), self.graph
            )
        return self._eval_group(query.where, iter([dict()]))

    def _eval_ask(self, query: AskQuery) -> bool:
        for _ in self._where_solutions(query):
            return True
        return False

    def _eval_construct(self, query: ConstructQuery) -> Graph:
        result = Graph()
        materialized = list(self._where_solutions(query))
        if query.offset:
            materialized = materialized[query.offset :]
        if query.limit is not None:
            materialized = materialized[: query.limit]
        for index, row in enumerate(materialized):
            bnode_map: Dict[BNode, BNode] = {}
            for pattern in query.template:
                triple = []
                ok = True
                for position in (
                    pattern.subject,
                    pattern.predicate,
                    pattern.object,
                ):
                    if isinstance(position, Variable):
                        term = row.get(position)
                        if term is None:
                            ok = False
                            break
                        triple.append(term)
                    elif isinstance(position, BNode):
                        fresh = bnode_map.setdefault(
                            position, BNode(f"c{index}_{position}")
                        )
                        triple.append(fresh)
                    else:
                        triple.append(position)
                if not ok:
                    continue
                s, p, o = triple
                if isinstance(s, Literal) or isinstance(p, (Literal, BNode)):
                    continue
                result.add((s, p, o))
        return result

    def _eval_describe(self, query: DescribeQuery) -> Graph:
        result = Graph()
        targets: List[Term] = []
        if query.where is not None:
            for row in self._where_solutions(query):
                for term in query.terms:
                    if isinstance(term, Variable):
                        bound = row.get(term)
                        if bound is not None:
                            targets.append(bound)
        for term in query.terms:
            if not isinstance(term, Variable):
                targets.append(term)
        for target in dict.fromkeys(targets):
            for triple in self.graph.triples((target, None, None)):
                result.add(triple)
        return result

    # ------------------------------------------------------------------
    # Graph pattern evaluation
    # ------------------------------------------------------------------
    def _eval_group(
        self,
        group: GroupPattern,
        solutions: Iterator[Bindings],
        graph: Optional[Graph] = None,
    ) -> Iterator[Bindings]:
        graph = graph if graph is not None else self.graph
        filters = [
            e for e in group.elements if isinstance(e, FilterPattern)
        ]
        others = [
            e for e in group.elements if not isinstance(e, FilterPattern)
        ]
        for element in others:
            solutions = self._eval_element(element, solutions, graph)
        for filter_pattern in filters:
            solutions = self._eval_filter(filter_pattern, solutions, graph)
        return solutions

    def _eval_element(
        self,
        element: PatternNode,
        solutions: Iterator[Bindings],
        graph: Graph,
    ) -> Iterator[Bindings]:
        if isinstance(element, BGP):
            return self._eval_bgp(element.triples, solutions, graph)
        if isinstance(element, GroupPattern):
            return self._eval_group(element, solutions, graph)
        if isinstance(element, OptionalPattern):
            return self._eval_optional(element, solutions, graph)
        if isinstance(element, UnionPattern):
            return self._eval_union(element, solutions, graph)
        if isinstance(element, BindPattern):
            return self._eval_bind(element, solutions, graph)
        if isinstance(element, ValuesPattern):
            return self._eval_values(element, solutions)
        if isinstance(element, SubSelectPattern):
            return self._eval_subselect(element, solutions)
        if isinstance(element, GraphGraphPattern):
            return self._eval_graph_pattern(element, solutions)
        raise SparqlEvalError(f"unknown pattern element: {element!r}")

    def _eval_graph_pattern(
        self, element: GraphGraphPattern, solutions: Iterator[Bindings]
    ) -> Iterator[Bindings]:
        named = self.dataset.graphs() if self.dataset is not None else []
        for binding in solutions:
            target = element.target
            if isinstance(target, Variable) and target in binding:
                target = binding[target]
            if isinstance(target, Variable):
                for named_graph in named:
                    extended = dict(binding)
                    extended[target] = named_graph.identifier
                    yield from self._eval_group(
                        element.group, iter([extended]), named_graph
                    )
            else:
                for named_graph in named:
                    if named_graph.identifier == target:
                        yield from self._eval_group(
                            element.group, iter([binding]), named_graph
                        )
                        break

    def _eval_bgp(
        self,
        triples: Sequence[TriplePatternNode],
        solutions: Iterator[Bindings],
        graph: Graph,
    ) -> Iterator[Bindings]:
        for binding in solutions:
            yield from self._match_bgp(list(triples), binding, graph)

    def _match_bgp(
        self,
        remaining: List[TriplePatternNode],
        binding: Bindings,
        graph: Graph,
    ) -> Iterator[Bindings]:
        if not remaining:
            yield binding
            return
        # (graph is threaded so GRAPH patterns scope their own store)
        # pick the most selective pattern under current bindings; magic
        # bif: predicates are deferred until their subject is bound
        best_idx = 0
        best_score = -10
        for idx, pattern in enumerate(remaining):
            if pattern.predicate == _MAGIC_CONTAINS:
                subject_ready = (
                    not isinstance(pattern.subject, Variable)
                    or pattern.subject in binding
                )
                score = 4 if subject_ready else -5
            else:
                score = 0
                for position in (
                    pattern.subject,
                    pattern.predicate,
                    pattern.object,
                ):
                    if not isinstance(position, Variable) \
                            or position in binding:
                        score += 1
            if score > best_score:
                best_score = score
                best_idx = idx
        pattern = remaining[best_idx]
        rest = remaining[:best_idx] + remaining[best_idx + 1 :]

        if pattern.predicate == _MAGIC_CONTAINS:
            yield from self._match_magic_contains(
                pattern, rest, binding, graph
            )
            return

        def resolve(position):
            if isinstance(position, Variable):
                return binding.get(position)
            return position

        s = resolve(pattern.subject)
        p = resolve(pattern.predicate)
        o = resolve(pattern.object)
        # Literals can never be subjects/predicates in the store
        if isinstance(s, Literal) or isinstance(p, (Literal, BNode)):
            return
        for ts, tp, to in graph.triples((s, p, o)):
            new_binding = binding
            extended: Optional[Bindings] = None
            conflict = False
            for position, value in (
                (pattern.subject, ts),
                (pattern.predicate, tp),
                (pattern.object, to),
            ):
                if isinstance(position, Variable):
                    current = (
                        extended.get(position)
                        if extended is not None
                        else binding.get(position)
                    )
                    if current is None:
                        if extended is None:
                            extended = dict(new_binding)
                        extended[position] = value
                    elif current != value:
                        conflict = True
                        break
            if conflict:
                continue
            yield from self._match_bgp(
                rest, extended if extended is not None else binding,
                graph,
            )

    def _match_magic_contains(
        self,
        pattern: TriplePatternNode,
        rest: List[TriplePatternNode],
        binding: Bindings,
        graph: Graph,
    ) -> Iterator[Bindings]:
        """Virtuoso's ``?text bif:contains "pattern"`` magic predicate:
        a full-text constraint on an already-bound literal."""
        from .fulltext import contains as fulltext_contains

        subject = pattern.subject
        if isinstance(subject, Variable):
            subject = binding.get(subject)
        if subject is None:
            raise SparqlEvalError(
                "bif:contains requires its subject to be bound by "
                "another pattern"
            )
        needle = pattern.object
        if isinstance(needle, Variable):
            needle = binding.get(needle)
        if not isinstance(needle, Literal):
            raise SparqlEvalError(
                "bif:contains requires a literal search pattern"
            )
        if isinstance(subject, Literal) and fulltext_contains(
            subject.lexical, needle.lexical
        ):
            yield from self._match_bgp(rest, binding, graph)

    def _eval_optional(
        self,
        element: OptionalPattern,
        solutions: Iterator[Bindings],
        graph: Graph,
    ) -> Iterator[Bindings]:
        for binding in solutions:
            matched = False
            for extended in self._eval_group(
                element.group, iter([binding]), graph
            ):
                matched = True
                yield extended
            if not matched:
                yield binding

    def _eval_union(
        self,
        element: UnionPattern,
        solutions: Iterator[Bindings],
        graph: Graph,
    ) -> Iterator[Bindings]:
        for binding in solutions:
            for branch in element.branches:
                yield from self._eval_group(branch, iter([binding]), graph)

    def _eval_bind(
        self,
        element: BindPattern,
        solutions: Iterator[Bindings],
        graph: Graph,
    ) -> Iterator[Bindings]:
        for binding in solutions:
            if element.variable in binding:
                raise SparqlEvalError(
                    f"BIND would rebind ?{element.variable}"
                )
            extended = dict(binding)
            try:
                extended[element.variable] = self._eval_expression(
                    element.expression, binding, graph
                )
            except ExpressionError:
                pass  # variable stays unbound per spec
            yield extended

    def _eval_values(
        self, element: ValuesPattern, solutions: Iterator[Bindings]
    ) -> Iterator[Bindings]:
        for binding in solutions:
            for row in element.rows:
                merged = dict(binding)
                compatible = True
                for var, value in zip(element.variables, row):
                    if value is None:
                        continue
                    current = merged.get(var)
                    if current is None:
                        merged[var] = value
                    elif current != value:
                        compatible = False
                        break
                if compatible:
                    yield merged

    def _eval_subselect(
        self, element: SubSelectPattern, solutions: Iterator[Bindings]
    ) -> Iterator[Bindings]:
        inner_rows = self._select_rows(element.query)
        for binding in solutions:
            for row in inner_rows:
                merged = dict(binding)
                compatible = True
                for var, value in row.items():
                    current = merged.get(var)
                    if current is None:
                        merged[var] = value
                    elif current != value:
                        compatible = False
                        break
                if compatible:
                    yield merged

    def _eval_filter(
        self,
        element: FilterPattern,
        solutions: Iterator[Bindings],
        graph: Optional[Graph] = None,
    ) -> Iterator[Bindings]:
        graph = graph if graph is not None else self.graph
        for binding in solutions:
            try:
                value = self._eval_expression(
                    element.expression, binding, graph
                )
                if ebv(value):
                    yield binding
            except ExpressionError:
                continue

    # ------------------------------------------------------------------
    # Optimized plan execution
    # ------------------------------------------------------------------
    def _exec_select_plan(
        self, query: SelectQuery, plan: PlanNode
    ) -> List[Row]:
        """Execute a planned SELECT's modifier chain; mirrors
        :meth:`_select_rows` operation for operation."""
        return self._exec_modifier(plan)

    def _exec_modifier_inner(self, node: PlanNode) -> List[Row]:
        if isinstance(node, SliceNode):
            rows = self._exec_modifier(node.child)
            if node.offset:
                rows = rows[node.offset :]
            if node.limit is not None:
                rows = rows[: node.limit]
        elif isinstance(node, DistinctNode):
            seen = set()
            rows = []
            for row in self._exec_modifier(node.child):
                key = tuple(sorted((str(k), v) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    rows.append(row)
        elif isinstance(node, ProjectNode):
            rows = [
                {v: row[v] for v in node.variables if v in row}
                for row in self._exec_modifier(node.child)
            ]
        elif isinstance(node, OrderNode):
            rows = self._exec_modifier(node.child)
            rows.sort(
                key=lambda row: tuple(
                    self._order_key(cond, row)
                    for cond in node.conditions
                )
            )
        elif isinstance(node, AggregateNode):
            inner = self._exec_modifier(node.child)
            if node.grouped:
                rows = list(self._aggregate(node.query, iter(inner)))
            else:
                rows = list(
                    self._bind_projection_exprs(node.query, iter(inner))
                )
        else:
            rows = list(
                self._exec_node(node, iter([dict()]), self.graph)
            )
            return rows
        node.actual_rows = (node.actual_rows or 0) + len(rows)
        return rows

    def _exec_modifier(self, node: PlanNode) -> List[Row]:
        if not self._time_plan_nodes or not isinstance(
            node,
            (
                SliceNode, DistinctNode, ProjectNode, OrderNode,
                AggregateNode,
            ),
        ):
            # non-modifier roots fall through to _exec_node, which
            # does its own per-node timing — no double counting
            return self._exec_modifier_inner(node)
        began = time.perf_counter()
        rows = self._exec_modifier_inner(node)
        elapsed = time.perf_counter() - began
        node.actual_ms = (node.actual_ms or 0.0) + elapsed * 1000.0
        get_tracer().record_span(
            f"plan.{type(node).__name__}",
            elapsed,
            {"rows": len(rows)},
        )
        return rows

    def _exec_node(
        self,
        node: PlanNode,
        solutions: Iterator[Bindings],
        graph: Graph,
    ) -> Iterator[Bindings]:
        if node.actual_rows is None:
            node.actual_rows = 0
        if not self._time_plan_nodes:
            for binding in self._exec_node_inner(node, solutions, graph):
                node.actual_rows += 1
                yield binding
            return
        yield from self._exec_node_timed(node, solutions, graph)

    def _exec_node_timed(
        self,
        node: PlanNode,
        solutions: Iterator[Bindings],
        graph: Graph,
    ) -> Iterator[Bindings]:
        """Like :meth:`_exec_node` but accumulates the *inclusive* wall
        time spent inside the node's generator (time in child nodes
        counts toward their ancestors too, matching span semantics) and
        emits one plan-node span when the node is exhausted."""
        if node.actual_ms is None:
            node.actual_ms = 0.0
        inner = self._exec_node_inner(node, solutions, graph)
        produced = 0
        elapsed = 0.0
        while True:
            began = time.perf_counter()
            try:
                binding = next(inner)
            except StopIteration:
                step = time.perf_counter() - began
                elapsed += step
                node.actual_ms += step * 1000.0
                break
            step = time.perf_counter() - began
            elapsed += step
            # accumulate per step: a partially-consumed generator
            # (ASK, LIMIT upstream) still leaves its time on the node
            node.actual_ms += step * 1000.0
            node.actual_rows += 1
            produced += 1
            yield binding
        get_tracer().record_span(
            f"plan.{type(node).__name__}",
            elapsed,
            {"rows": produced},
        )

    def _exec_node_inner(
        self,
        node: PlanNode,
        solutions: Iterator[Bindings],
        graph: Graph,
    ) -> Iterator[Bindings]:
        if isinstance(node, JoinNode):
            for element in node.elements:
                solutions = self._exec_node(element, solutions, graph)
            yield from solutions
        elif isinstance(node, BGPNode):
            for binding in solutions:
                yield from self._exec_scans(
                    node.scans, node.pushed, 0, binding, graph
                )
        elif isinstance(node, FilterNode):
            for binding in solutions:
                try:
                    value = self._eval_expression(
                        node.expression, binding, graph
                    )
                    if ebv(value):
                        yield binding
                except ExpressionError:
                    continue
        elif isinstance(node, LeftJoinNode):
            for binding in solutions:
                matched = False
                for extended in self._exec_node(
                    node.group, iter([binding]), graph
                ):
                    matched = True
                    yield extended
                if not matched:
                    yield binding
        elif isinstance(node, UnionNode):
            for binding in solutions:
                for branch in node.branches:
                    yield from self._exec_node(
                        branch, iter([binding]), graph
                    )
        elif isinstance(node, ExtendNode):
            for binding in solutions:
                if node.variable in binding:
                    raise SparqlEvalError(
                        f"BIND would rebind ?{node.variable}"
                    )
                extended = dict(binding)
                try:
                    extended[node.variable] = self._eval_expression(
                        node.expression, binding, graph
                    )
                except ExpressionError:
                    pass  # variable stays unbound per spec
                yield extended
        elif isinstance(node, ValuesNode):
            for binding in solutions:
                for row in node.rows:
                    merged = self._merge_row(
                        binding, zip(node.variables, row)
                    )
                    if merged is not None:
                        yield merged
        elif isinstance(node, SubSelectNode):
            inner_rows = self._exec_select_plan(node.query, node.plan)
            for binding in solutions:
                for row in inner_rows:
                    merged = self._merge_row(binding, row.items())
                    if merged is not None:
                        yield merged
        elif isinstance(node, GraphNode):
            named = (
                self.dataset.graphs() if self.dataset is not None else []
            )
            for binding in solutions:
                target = node.target
                if isinstance(target, Variable) and target in binding:
                    target = binding[target]
                if isinstance(target, Variable):
                    for named_graph in named:
                        extended = dict(binding)
                        extended[target] = named_graph.identifier
                        yield from self._exec_node(
                            node.group, iter([extended]), named_graph
                        )
                else:
                    for named_graph in named:
                        if named_graph.identifier == target:
                            yield from self._exec_node(
                                node.group, iter([binding]), named_graph
                            )
                            break
        elif isinstance(node, EmptyNode):
            return
        else:
            raise SparqlEvalError(
                f"cannot execute plan node: {node.label()}"
            )

    @staticmethod
    def _merge_row(binding: Bindings, items) -> Optional[Bindings]:
        """Compatible-merge ``items`` into ``binding`` (None on clash)."""
        merged = dict(binding)
        for var, value in items:
            if value is None:
                continue
            current = merged.get(var)
            if current is None:
                merged[var] = value
            elif current != value:
                return None
        return merged

    def _exec_scans(
        self,
        scans: List[ScanStep],
        leftover: List[Expression],
        index: int,
        binding: Bindings,
        graph: Graph,
    ) -> Iterator[Bindings]:
        """Match scans in their statically planned order."""
        if index == len(scans):
            for expr in leftover:
                try:
                    if not ebv(
                        self._eval_expression(expr, binding, graph)
                    ):
                        return
                except ExpressionError:
                    return
            yield binding
            return
        scan = scans[index]
        pattern = scan.pattern

        if pattern.predicate == _MAGIC_CONTAINS:
            yield from self._exec_magic_scan(
                scans, leftover, index, binding, graph
            )
            return

        def resolve(position):
            if isinstance(position, Variable):
                return binding.get(position)
            return position

        s = resolve(pattern.subject)
        p = resolve(pattern.predicate)
        o = resolve(pattern.object)
        if isinstance(s, Literal) or isinstance(p, (Literal, BNode)):
            return
        for ts, tp, to in graph.triples((s, p, o)):
            extended: Optional[Bindings] = None
            conflict = False
            for position, value in (
                (pattern.subject, ts),
                (pattern.predicate, tp),
                (pattern.object, to),
            ):
                if isinstance(position, Variable):
                    current = (
                        extended.get(position)
                        if extended is not None
                        else binding.get(position)
                    )
                    if current is None:
                        if extended is None:
                            extended = dict(binding)
                        extended[position] = value
                    elif current != value:
                        conflict = True
                        break
            if conflict:
                continue
            produced = extended if extended is not None else binding
            if not self._scan_filters_pass(scan, produced, graph):
                continue
            scan.actual_rows = (scan.actual_rows or 0) + 1
            yield from self._exec_scans(
                scans, leftover, index + 1, produced, graph
            )

    def _exec_magic_scan(
        self,
        scans: List[ScanStep],
        leftover: List[Expression],
        index: int,
        binding: Bindings,
        graph: Graph,
    ) -> Iterator[Bindings]:
        """``bif:contains`` constraint — same semantics as the naive
        :meth:`_match_magic_contains`."""
        from .fulltext import contains as fulltext_contains

        scan = scans[index]
        subject = scan.pattern.subject
        if isinstance(subject, Variable):
            subject = binding.get(subject)
        if subject is None:
            raise SparqlEvalError(
                "bif:contains requires its subject to be bound by "
                "another pattern"
            )
        needle = scan.pattern.object
        if isinstance(needle, Variable):
            needle = binding.get(needle)
        if not isinstance(needle, Literal):
            raise SparqlEvalError(
                "bif:contains requires a literal search pattern"
            )
        if isinstance(subject, Literal) and fulltext_contains(
            subject.lexical, needle.lexical
        ):
            if self._scan_filters_pass(scan, binding, graph):
                scan.actual_rows = (scan.actual_rows or 0) + 1
                yield from self._exec_scans(
                    scans, leftover, index + 1, binding, graph
                )

    def _scan_filters_pass(
        self, scan: ScanStep, binding: Bindings, graph: Graph
    ) -> bool:
        for expr in scan.filters:
            try:
                if not ebv(self._eval_expression(expr, binding, graph)):
                    return False
            except ExpressionError:
                return False
        return True

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval_expression(
        self,
        expression: Expression,
        binding: Bindings,
        graph: Optional[Graph] = None,
    ) -> Term:
        graph = graph if graph is not None else self.graph
        if isinstance(expression, TermExpr):
            term = expression.term
            if isinstance(term, Variable):
                value = binding.get(term)
                if value is None:
                    raise ExpressionError(f"unbound variable ?{term}")
                return value
            return term
        if isinstance(expression, OrExpr):
            error: Optional[ExpressionError] = None
            for operand in expression.operands:
                try:
                    if ebv(self._eval_expression(operand, binding, graph)):
                        return boolean(True)
                except ExpressionError as exc:
                    error = exc
            if error is not None:
                raise error
            return boolean(False)
        if isinstance(expression, AndExpr):
            error = None
            for operand in expression.operands:
                try:
                    if not ebv(self._eval_expression(operand, binding, graph)):
                        return boolean(False)
                except ExpressionError as exc:
                    error = exc
            if error is not None:
                raise error
            return boolean(True)
        if isinstance(expression, NotExpr):
            return boolean(
                not ebv(
                    self._eval_expression(
                        expression.operand, binding, graph
                    )
                )
            )
        if isinstance(expression, NegExpr):
            value = self._eval_expression(expression.operand, binding, graph)
            if isinstance(value, Literal) and value.is_numeric:
                negated = -value.value
                return Literal(negated)
            raise ExpressionError(f"cannot negate {value!r}")
        if isinstance(expression, CompareExpr):
            left = self._eval_expression(expression.left, binding, graph)
            right = self._eval_expression(
                expression.right, binding, graph
            )
            return boolean(compare(expression.op, left, right))
        if isinstance(expression, InExpr):
            operand = self._eval_expression(expression.operand, binding, graph)
            found = False
            for choice in expression.choices:
                try:
                    candidate = self._eval_expression(choice, binding, graph)
                except ExpressionError:
                    continue
                from .functions import equals

                if equals(operand, candidate):
                    found = True
                    break
            return boolean(found != expression.negated)
        if isinstance(expression, ArithExpr):
            left = self._eval_expression(expression.left, binding, graph)
            right = self._eval_expression(
                expression.right, binding, graph
            )
            return arithmetic(expression.op, left, right)
        if isinstance(expression, FunctionCall):
            return self._eval_function(expression, binding, graph)
        if isinstance(expression, ExistsExpr):
            exists = any(
                True
                for _ in self._eval_group(
                    expression.group, iter([dict(binding)]), graph
                )
            )
            return boolean(exists != expression.negated)
        raise SparqlEvalError(f"unknown expression: {expression!r}")

    def _eval_function(
        self,
        call: FunctionCall,
        binding: Bindings,
        graph: Optional[Graph] = None,
    ) -> Term:
        graph = graph if graph is not None else self.graph
        if call.name == "BOUND":
            if len(call.args) != 1 or not isinstance(
                call.args[0], TermExpr
            ) or not isinstance(call.args[0].term, Variable):
                raise ExpressionError("BOUND requires a single variable")
            return boolean(call.args[0].term in binding)
        if call.name == "COALESCE":
            for arg in call.args:
                try:
                    return self._eval_expression(arg, binding, graph)
                except ExpressionError:
                    continue
            raise ExpressionError("COALESCE: all arguments errored")
        if call.name == "IF":
            if len(call.args) != 3:
                raise ExpressionError("IF expects 3 arguments")
            condition = ebv(
                self._eval_expression(call.args[0], binding, graph)
            )
            chosen = call.args[1] if condition else call.args[2]
            return self._eval_expression(chosen, binding, graph)

        implementation = self.functions.get(call.name)
        if implementation is None:
            raise SparqlEvalError(f"unknown function: {call.name}")
        args = [self._eval_expression(a, binding, graph) for a in call.args]
        return implementation(args)


class _Desc:
    """Wrapper inverting sort order for DESC order conditions."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Desc") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and self.value == other.value


def query(graph: Graph, text: str, **kwargs) -> object:
    """One-shot convenience: parse and evaluate ``text`` against ``graph``."""
    return Evaluator(graph, **kwargs).evaluate(text)
