"""Query result containers and serialization.

:class:`SelectResult` is list-like over solution rows; each row maps
variable names to terms (or ``None`` for unbound). JSON output follows the
W3C "SPARQL 1.1 Query Results JSON Format"; CSV output follows the CSV
results format (lexical forms only).
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..rdf.terms import BNode, Literal, Term, URIRef, Variable

#: One solution: variable → term (absent/None = unbound).
Row = Dict[Variable, Term]


class SelectResult:
    """Materialized SELECT solutions with projection order preserved."""

    def __init__(self, variables: Sequence[Variable], rows: List[Row]) -> None:
        self.variables = list(variables)
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def __bool__(self) -> bool:
        return bool(self.rows)

    def values(self, variable: Any) -> List[Optional[Term]]:
        """The column of bindings for ``variable`` (None when unbound)."""
        var = Variable(str(variable))
        return [row.get(var) for row in self.rows]

    def first(self, variable: Any = None) -> Optional[Any]:
        """First row, or first binding of ``variable`` when given."""
        if not self.rows:
            return None
        if variable is None:
            return self.rows[0]
        return self.rows[0].get(Variable(str(variable)))

    def to_dicts(self) -> List[Dict[str, Term]]:
        """Rows as plain ``{str: Term}`` dicts."""
        return [
            {str(var): term for var, term in row.items()} for row in self.rows
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """W3C SPARQL JSON results format."""
        bindings = []
        for row in self.rows:
            encoded: Dict[str, Dict[str, str]] = {}
            for var, term in row.items():
                if term is None:
                    continue
                encoded[str(var)] = _encode_term(term)
            bindings.append(encoded)
        doc = {
            "head": {"vars": [str(v) for v in self.variables]},
            "results": {"bindings": bindings},
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """W3C SPARQL CSV results format (header + lexical values)."""
        import csv

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow([str(v) for v in self.variables])
        for row in self.rows:
            writer.writerow(
                [_lexical(row.get(v)) for v in self.variables]
            )
        return buffer.getvalue()

    def to_table(self, max_width: int = 40) -> str:
        """Human-readable fixed-width table (used by the examples)."""
        headers = [str(v) for v in self.variables]
        cells = [
            [_display(row.get(v), max_width) for v in self.variables]
            for row in self.rows
        ]
        widths = [
            max([len(h)] + [len(r[i]) for r in cells])
            for i, h in enumerate(headers)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row_cells in cells:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row_cells, widths))
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SelectResult(vars={[str(v) for v in self.variables]}, "
            f"rows={len(self.rows)})"
        )


def _encode_term(term: Term) -> Dict[str, str]:
    if isinstance(term, URIRef):
        return {"type": "uri", "value": str(term)}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": str(term)}
    if isinstance(term, Literal):
        encoded: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.lang:
            encoded["xml:lang"] = term.lang
        elif term.datatype:
            encoded["datatype"] = str(term.datatype)
        return encoded
    raise TypeError(f"cannot encode {term!r}")


def _lexical(term: Optional[Term]) -> str:
    if term is None:
        return ""
    if isinstance(term, Literal):
        return term.lexical
    return str(term)


def _display(term: Optional[Term], max_width: int) -> str:
    text = _lexical(term)
    if len(text) > max_width:
        return text[: max_width - 1] + "…"
    return text
