"""Abstract syntax tree for SPARQL queries.

The parser produces these nodes; the evaluator consumes them directly (the
tree doubles as the algebra — group-graph-pattern elements are evaluated
in sequence with binding propagation, which matches SPARQL semantics for
the query subset we support).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..rdf.terms import Term, Variable

#: A pattern position is either a concrete term or a variable.
PatternTerm = Term


@dataclass(frozen=True)
class TriplePatternNode:
    """A single triple pattern ``s p o``."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> List[Variable]:
        return [
            t
            for t in (self.subject, self.predicate, self.object)
            if isinstance(t, Variable)
        ]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for FILTER / ORDER BY expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class TermExpr(Expression):
    """A constant term or variable reference."""

    term: PatternTerm


@dataclass(frozen=True)
class OrExpr(Expression):
    operands: Tuple[Expression, ...]


@dataclass(frozen=True)
class AndExpr(Expression):
    operands: Tuple[Expression, ...]


@dataclass(frozen=True)
class NotExpr(Expression):
    operand: Expression


@dataclass(frozen=True)
class CompareExpr(Expression):
    """Binary comparison: ``=``, ``!=``, ``<``, ``>``, ``<=``, ``>=``."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class InExpr(Expression):
    """``expr IN (e1, e2, ...)`` — negated for ``NOT IN``."""

    operand: Expression
    choices: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class ArithExpr(Expression):
    """Binary arithmetic: ``+``, ``-``, ``*``, ``/``."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class NegExpr(Expression):
    """Unary minus."""

    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call to a builtin or extension function.

    ``name`` is either the upper-cased builtin keyword (``REGEX``,
    ``LANGMATCHES``...) or the full IRI of an extension function (e.g. the
    Virtuoso ``bif:`` functions).
    """

    name: str
    args: Tuple[Expression, ...]


@dataclass(frozen=True)
class ExistsExpr(Expression):
    """``EXISTS { ... }`` / ``NOT EXISTS { ... }``."""

    group: "GroupPattern"
    negated: bool = False


# ---------------------------------------------------------------------------
# Graph patterns
# ---------------------------------------------------------------------------


class PatternNode:
    """Base class for group-graph-pattern elements."""

    __slots__ = ()


@dataclass
class BGP(PatternNode):
    """A basic graph pattern: a conjunctive block of triple patterns."""

    triples: List[TriplePatternNode] = field(default_factory=list)


@dataclass
class FilterPattern(PatternNode):
    expression: Expression


@dataclass
class OptionalPattern(PatternNode):
    group: "GroupPattern"


@dataclass
class UnionPattern(PatternNode):
    branches: List["GroupPattern"]


@dataclass
class BindPattern(PatternNode):
    """``BIND (expr AS ?var)``."""

    expression: Expression
    variable: Variable


@dataclass
class ValuesPattern(PatternNode):
    """Inline data: ``VALUES (?a ?b) { (1 2) (UNDEF 3) }``."""

    variables: List[Variable]
    rows: List[Tuple[Optional[Term], ...]]


@dataclass
class GroupPattern(PatternNode):
    """``{ ... }`` — a sequence of pattern elements evaluated in order."""

    elements: List[PatternNode] = field(default_factory=list)


@dataclass
class GraphGraphPattern(PatternNode):
    """``GRAPH <iri> { ... }`` / ``GRAPH ?g { ... }`` — evaluate the
    group against one named graph (or every named graph, binding the
    variable)."""

    target: PatternTerm  # URIRef or Variable
    group: GroupPattern


@dataclass
class SubSelectPattern(PatternNode):
    """A nested ``{ SELECT ... }`` evaluated independently then joined."""

    query: "SelectQuery"


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass
class SelectQuery:
    """A SELECT query (also used for sub-selects)."""

    variables: List[Variable]  # empty means SELECT *
    where: GroupPattern
    distinct: bool = False
    reduced: bool = False
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    group_by: List[Expression] = field(default_factory=list)
    aggregates: List["AggregateBinding"] = field(default_factory=list)
    #: prefixes declared in the prologue (top-level queries only).
    prefixes: Dict[str, str] = field(default_factory=dict)
    #: prefixes that resolved via the DEFAULT_PREFIXES fallback —
    #: prefix name → source offset of first use (linter rule SP003).
    fallback_prefixes: Dict[str, int] = field(default_factory=dict)

    form = "SELECT"


@dataclass(frozen=True)
class AggregateBinding:
    """``(COUNT(?x) AS ?n)`` style projection element."""

    function: str  # COUNT, SUM, AVG, MIN, MAX, SAMPLE
    argument: Optional[Expression]  # None for COUNT(*)
    alias: Variable
    distinct: bool = False


@dataclass
class AskQuery:
    where: GroupPattern
    prefixes: Dict[str, str] = field(default_factory=dict)
    fallback_prefixes: Dict[str, int] = field(default_factory=dict)

    form = "ASK"


@dataclass
class ConstructQuery:
    template: List[TriplePatternNode]
    where: GroupPattern
    limit: Optional[int] = None
    offset: int = 0
    prefixes: Dict[str, str] = field(default_factory=dict)
    fallback_prefixes: Dict[str, int] = field(default_factory=dict)

    form = "CONSTRUCT"


@dataclass
class DescribeQuery:
    """``DESCRIBE <iri>`` or ``DESCRIBE ?var WHERE {...}``."""

    terms: List[PatternTerm]
    where: Optional[GroupPattern] = None
    prefixes: Dict[str, str] = field(default_factory=dict)
    fallback_prefixes: Dict[str, int] = field(default_factory=dict)

    form = "DESCRIBE"


Query = Union[SelectQuery, AskQuery, ConstructQuery, DescribeQuery]
