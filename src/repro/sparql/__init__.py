"""SPARQL engine with Virtuoso-compatible geo and full-text extensions.

This package replaces the paper's OpenLink Virtuoso deployment: a SPARQL
parser/evaluator over :class:`repro.rdf.Graph` supporting the paper's
queries verbatim — including ``bif:st_intersects`` geospatial filters and
``bif:contains`` full-text matching.
"""

from .algebra import PlanNode, lower_query, render_plan
from .ast import (
    AskQuery,
    ConstructQuery,
    DescribeQuery,
    Query,
    SelectQuery,
)
from .errors import (
    ExpressionError,
    SparqlError,
    SparqlEvalError,
    SparqlSyntaxError,
)
from .evaluator import Evaluator, query
from .fulltext import FullTextIndex, contains, tokenize_text
from .geo import (
    EARTH_RADIUS_KM,
    GeometryError,
    Point,
    haversine_km,
    parse_point,
    st_distance,
    st_intersects,
    st_point,
    try_parse_point,
)
from .parser import parse_query
from .results import Row, SelectResult

__all__ = [
    "AskQuery",
    "ConstructQuery",
    "DescribeQuery",
    "EARTH_RADIUS_KM",
    "Evaluator",
    "ExpressionError",
    "FullTextIndex",
    "GeometryError",
    "PlanNode",
    "Point",
    "Query",
    "Row",
    "SelectQuery",
    "SelectResult",
    "SparqlError",
    "SparqlEvalError",
    "SparqlSyntaxError",
    "contains",
    "haversine_km",
    "lower_query",
    "parse_point",
    "parse_query",
    "query",
    "render_plan",
    "st_distance",
    "st_intersects",
    "st_point",
    "tokenize_text",
    "try_parse_point",
]
