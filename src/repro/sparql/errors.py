"""SPARQL engine exceptions."""

from __future__ import annotations


class SparqlError(Exception):
    """Base class for all SPARQL engine errors."""


class SparqlSyntaxError(SparqlError):
    """Raised by the tokenizer/parser on malformed query text."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class SparqlEvalError(SparqlError):
    """Raised on unrecoverable evaluation errors.

    Note: *expression* errors inside FILTER follow the SPARQL spec and
    silently make the filter fail for that solution — this exception is for
    structural problems (unknown function, invalid query form).
    """


class ExpressionError(SparqlError):
    """Internal: an expression evaluated to an error value.

    Caught by FILTER/ORDER BY handling per the SPARQL error semantics;
    never propagates out of the evaluator.
    """
