"""SPARQL expression semantics: EBV, comparisons and builtin functions.

Implements the SPARQL 1.0 builtins the platform's queries use, the handful
of SPARQL 1.1 string functions that are convenient in tests, the XSD
constructor casts and the Virtuoso ``bif:`` extensions
(``bif:st_intersects``, ``bif:st_distance``, ``bif:st_point``,
``bif:contains``) the paper's virtual-album and mashup queries depend on.

Per the SPARQL error model, type errors raise :class:`ExpressionError`,
which FILTER evaluation treats as "false" and ORDER BY treats as lowest.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Sequence

from ..rdf.terms import (
    BNode,
    Literal,
    Term,
    URIRef,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from .errors import ExpressionError
from .fulltext import contains as fulltext_contains
from .geo import GeometryError, st_distance, st_intersects, st_point

TRUE = Literal("true", datatype=XSD_BOOLEAN)
FALSE = Literal("false", datatype=XSD_BOOLEAN)


def boolean(value: bool) -> Literal:
    """Python bool → xsd:boolean literal."""
    return TRUE if value else FALSE


def ebv(term: Term) -> bool:
    """Effective boolean value (SPARQL §17.2.2)."""
    if isinstance(term, Literal):
        if term.datatype == XSD_BOOLEAN:
            value = term.value
            if isinstance(value, bool):
                return value
            raise ExpressionError(f"invalid boolean literal: {term!r}")
        if term.is_numeric:
            return term.value != 0
        if term.datatype is None or term.datatype == XSD_STRING:
            return len(term.lexical) > 0
        # malformed numeric literals have EBV false per spec
        if term.datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE):
            return False
    raise ExpressionError(f"no effective boolean value for {term!r}")


def _numeric(term: Term) -> float:
    if isinstance(term, Literal) and term.is_numeric:
        return term.value
    raise ExpressionError(f"not a number: {term!r}")


def _string(term: Term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, URIRef):
        return str(term)
    raise ExpressionError(f"not a string: {term!r}")


def _plain_string(term: Term) -> str:
    if isinstance(term, Literal) and (
        term.datatype is None or term.datatype == XSD_STRING
    ):
        return term.lexical
    if isinstance(term, Literal) and term.lang:
        return term.lexical
    raise ExpressionError(f"not a string literal: {term!r}")


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def equals(left: Term, right: Term) -> bool:
    """SPARQL ``=``: value equality for literals, term equality otherwise."""
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric and right.is_numeric:
            return left.value == right.value
        left_str = left.datatype in (None, URIRef(XSD_STRING))
        right_str = right.datatype in (None, URIRef(XSD_STRING))
        if left_str and right_str and left.lang is None and right.lang is None:
            return left.lexical == right.lexical
        return (
            left.lexical == right.lexical
            and left.lang == right.lang
            and left.datatype == right.datatype
        )
    return left == right


def compare(op: str, left: Term, right: Term) -> bool:
    """Evaluate a SPARQL comparison operator."""
    if op == "=":
        return equals(left, right)
    if op == "!=":
        return not equals(left, right)
    # ordering operators
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric and right.is_numeric:
            lv, rv = left.value, right.value
        elif left.lang is None and right.lang is None and (
            left.datatype in (None, URIRef(XSD_STRING))
            and right.datatype in (None, URIRef(XSD_STRING))
        ):
            lv, rv = left.lexical, right.lexical
        elif left.datatype == right.datatype and left.datatype is not None:
            # same non-core datatype (e.g. xsd:dateTime): lexical order
            lv, rv = left.lexical, right.lexical
        else:
            raise ExpressionError(
                f"incomparable literals: {left!r} vs {right!r}"
            )
        if op == "<":
            return lv < rv
        if op == ">":
            return lv > rv
        if op == "<=":
            return lv <= rv
        if op == ">=":
            return lv >= rv
    raise ExpressionError(f"cannot apply {op} to {left!r} and {right!r}")


def arithmetic(op: str, left: Term, right: Term) -> Literal:
    """Evaluate ``+ - * /`` on numeric literals."""
    lv = _numeric(left)
    rv = _numeric(right)
    if op == "+":
        result = lv + rv
    elif op == "-":
        result = lv - rv
    elif op == "*":
        result = lv * rv
    elif op == "/":
        if rv == 0:
            raise ExpressionError("division by zero")
        result = lv / rv
    else:  # pragma: no cover - parser restricts operators
        raise ExpressionError(f"unknown operator {op}")
    if isinstance(result, int) or (
        isinstance(lv, int) and isinstance(rv, int) and op != "/"
    ):
        return Literal(int(result))
    return Literal(float(result))


# ---------------------------------------------------------------------------
# Builtin functions
# ---------------------------------------------------------------------------

FunctionImpl = Callable[[List[Term]], Term]


def _require(args: Sequence[Term], count: int, name: str) -> None:
    if len(args) != count:
        raise ExpressionError(
            f"{name} expects {count} argument(s), got {len(args)}"
        )


def fn_lang(args: List[Term]) -> Term:
    _require(args, 1, "LANG")
    term = args[0]
    if not isinstance(term, Literal):
        raise ExpressionError("LANG requires a literal")
    return Literal(term.lang or "")


def fn_langmatches(args: List[Term]) -> Term:
    _require(args, 2, "LANGMATCHES")
    tag = _string(args[0]).lower()
    lang_range = _string(args[1]).lower()
    if lang_range == "*":
        return boolean(bool(tag))
    return boolean(tag == lang_range or tag.startswith(lang_range + "-"))


def fn_str(args: List[Term]) -> Term:
    _require(args, 1, "STR")
    term = args[0]
    if isinstance(term, URIRef):
        return Literal(str(term))
    if isinstance(term, Literal):
        return Literal(term.lexical)
    raise ExpressionError("STR requires an IRI or literal")


def fn_datatype(args: List[Term]) -> Term:
    _require(args, 1, "DATATYPE")
    term = args[0]
    if not isinstance(term, Literal):
        raise ExpressionError("DATATYPE requires a literal")
    if term.datatype is not None:
        return term.datatype
    if term.lang is not None:
        return URIRef("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
    return URIRef(XSD_STRING)


def fn_regex(args: List[Term]) -> Term:
    if len(args) not in (2, 3):
        raise ExpressionError("REGEX expects 2 or 3 arguments")
    text = _plain_string(args[0])
    pattern = _string(args[1])
    flags = 0
    if len(args) == 3:
        flag_text = _string(args[2])
        if "i" in flag_text:
            flags |= re.IGNORECASE
        if "s" in flag_text:
            flags |= re.DOTALL
        if "m" in flag_text:
            flags |= re.MULTILINE
    try:
        return boolean(re.search(pattern, text, flags) is not None)
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc


def fn_sameterm(args: List[Term]) -> Term:
    _require(args, 2, "SAMETERM")
    return boolean(args[0] == args[1])


def fn_isiri(args: List[Term]) -> Term:
    _require(args, 1, "ISIRI")
    return boolean(isinstance(args[0], URIRef))


def fn_isblank(args: List[Term]) -> Term:
    _require(args, 1, "ISBLANK")
    return boolean(isinstance(args[0], BNode))


def fn_isliteral(args: List[Term]) -> Term:
    _require(args, 1, "ISLITERAL")
    return boolean(isinstance(args[0], Literal))


def fn_isnumeric(args: List[Term]) -> Term:
    _require(args, 1, "ISNUMERIC")
    return boolean(isinstance(args[0], Literal) and args[0].is_numeric)


def fn_contains(args: List[Term]) -> Term:
    _require(args, 2, "CONTAINS")
    return boolean(_plain_string(args[1]) in _plain_string(args[0]))


def fn_strstarts(args: List[Term]) -> Term:
    _require(args, 2, "STRSTARTS")
    return boolean(_plain_string(args[0]).startswith(_plain_string(args[1])))


def fn_strends(args: List[Term]) -> Term:
    _require(args, 2, "STRENDS")
    return boolean(_plain_string(args[0]).endswith(_plain_string(args[1])))


def fn_strlen(args: List[Term]) -> Term:
    _require(args, 1, "STRLEN")
    return Literal(len(_plain_string(args[0])))


def fn_substr(args: List[Term]) -> Term:
    if len(args) not in (2, 3):
        raise ExpressionError("SUBSTR expects 2 or 3 arguments")
    text = _plain_string(args[0])
    start = int(_numeric(args[1]))  # 1-based per XPath
    if len(args) == 3:
        length = int(_numeric(args[2]))
        return Literal(text[start - 1 : start - 1 + length])
    return Literal(text[start - 1 :])


def fn_ucase(args: List[Term]) -> Term:
    _require(args, 1, "UCASE")
    return Literal(_plain_string(args[0]).upper())


def fn_lcase(args: List[Term]) -> Term:
    _require(args, 1, "LCASE")
    return Literal(_plain_string(args[0]).lower())


def fn_concat(args: List[Term]) -> Term:
    return Literal("".join(_plain_string(a) for a in args))


def fn_replace(args: List[Term]) -> Term:
    if len(args) not in (3, 4):
        raise ExpressionError("REPLACE expects 3 or 4 arguments")
    text = _plain_string(args[0])
    pattern = _string(args[1])
    replacement = _string(args[2])
    flags = 0
    if len(args) == 4 and "i" in _string(args[3]):
        flags |= re.IGNORECASE
    try:
        return Literal(re.sub(pattern, replacement, text, flags=flags))
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc


def fn_strbefore(args: List[Term]) -> Term:
    _require(args, 2, "STRBEFORE")
    text = _plain_string(args[0])
    sep = _plain_string(args[1])
    idx = text.find(sep)
    return Literal(text[:idx] if idx >= 0 else "")


def fn_strafter(args: List[Term]) -> Term:
    _require(args, 2, "STRAFTER")
    text = _plain_string(args[0])
    sep = _plain_string(args[1])
    idx = text.find(sep)
    return Literal(text[idx + len(sep) :] if idx >= 0 else "")


def fn_abs(args: List[Term]) -> Term:
    _require(args, 1, "ABS")
    value = abs(_numeric(args[0]))
    return Literal(int(value) if isinstance(value, int) else value)


def fn_ceil(args: List[Term]) -> Term:
    import math

    _require(args, 1, "CEIL")
    return Literal(int(math.ceil(_numeric(args[0]))))


def fn_floor(args: List[Term]) -> Term:
    import math

    _require(args, 1, "FLOOR")
    return Literal(int(math.floor(_numeric(args[0]))))


def fn_round(args: List[Term]) -> Term:
    _require(args, 1, "ROUND")
    import math

    return Literal(int(math.floor(_numeric(args[0]) + 0.5)))


def fn_iri(args: List[Term]) -> Term:
    _require(args, 1, "IRI")
    return URIRef(_string(args[0]))


def fn_strdt(args: List[Term]) -> Term:
    _require(args, 2, "STRDT")
    if not isinstance(args[1], URIRef):
        raise ExpressionError("STRDT datatype must be an IRI")
    return Literal(_plain_string(args[0]), datatype=args[1])


def fn_strlang(args: List[Term]) -> Term:
    _require(args, 2, "STRLANG")
    return Literal(_plain_string(args[0]), lang=_string(args[1]))


# --- Virtuoso bif: extensions ---------------------------------------------


def fn_st_intersects(args: List[Term]) -> Term:
    if len(args) not in (2, 3):
        raise ExpressionError("bif:st_intersects expects 2 or 3 arguments")
    precision = _numeric(args[2]) if len(args) == 3 else 0.0
    try:
        return boolean(
            st_intersects(_string(args[0]), _string(args[1]), precision)
        )
    except GeometryError as exc:
        raise ExpressionError(str(exc)) from exc


def fn_st_distance(args: List[Term]) -> Term:
    _require(args, 2, "bif:st_distance")
    try:
        return Literal(st_distance(_string(args[0]), _string(args[1])))
    except GeometryError as exc:
        raise ExpressionError(str(exc)) from exc


def fn_st_point(args: List[Term]) -> Term:
    _require(args, 2, "bif:st_point")
    try:
        return st_point(_numeric(args[0]), _numeric(args[1]))
    except GeometryError as exc:
        raise ExpressionError(str(exc)) from exc


def fn_bif_contains(args: List[Term]) -> Term:
    _require(args, 2, "bif:contains")
    return boolean(fulltext_contains(_string(args[0]), _string(args[1])))


def _xsd_cast_factory(converter: Callable, datatype: str) -> FunctionImpl:
    def cast(args: List[Term]) -> Term:
        _require(args, 1, f"cast to {datatype}")
        term = args[0]
        if not isinstance(term, Literal):
            raise ExpressionError(f"cannot cast {term!r}")
        try:
            value = converter(term.lexical.strip())
        except (TypeError, ValueError, KeyError) as exc:
            raise ExpressionError(f"cannot cast {term!r}") from exc
        return Literal(str(value).lower() if isinstance(value, bool)
                       else str(value), datatype=datatype)

    return cast


#: Registry: upper-cased builtin name or function IRI / ``bif:`` name.
FUNCTIONS: Dict[str, FunctionImpl] = {
    "LANG": fn_lang,
    "LANGMATCHES": fn_langmatches,
    "STR": fn_str,
    "DATATYPE": fn_datatype,
    "REGEX": fn_regex,
    "SAMETERM": fn_sameterm,
    "ISIRI": fn_isiri,
    "ISURI": fn_isiri,
    "ISBLANK": fn_isblank,
    "ISLITERAL": fn_isliteral,
    "ISNUMERIC": fn_isnumeric,
    "CONTAINS": fn_contains,
    "STRSTARTS": fn_strstarts,
    "STRENDS": fn_strends,
    "STRLEN": fn_strlen,
    "SUBSTR": fn_substr,
    "UCASE": fn_ucase,
    "LCASE": fn_lcase,
    "CONCAT": fn_concat,
    "REPLACE": fn_replace,
    "STRBEFORE": fn_strbefore,
    "STRAFTER": fn_strafter,
    "ABS": fn_abs,
    "CEIL": fn_ceil,
    "FLOOR": fn_floor,
    "ROUND": fn_round,
    "IRI": fn_iri,
    "URI": fn_iri,
    "STRDT": fn_strdt,
    "STRLANG": fn_strlang,
    "bif:st_intersects": fn_st_intersects,
    "bif:st_distance": fn_st_distance,
    "bif:st_point": fn_st_point,
    "bif:contains": fn_bif_contains,
    XSD_INTEGER: _xsd_cast_factory(lambda s: int(float(s)), XSD_INTEGER),
    XSD_DOUBLE: _xsd_cast_factory(float, XSD_DOUBLE),
    XSD_DECIMAL: _xsd_cast_factory(float, XSD_DECIMAL),
    XSD_STRING: _xsd_cast_factory(str, XSD_STRING),
    XSD_BOOLEAN: _xsd_cast_factory(
        lambda s: {"true": True, "1": True, "false": False, "0": False}[s],
        XSD_BOOLEAN,
    ),
}
