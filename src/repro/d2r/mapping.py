"""D2R-style mapping model.

The paper lifts its relational gallery schema to RDF the way the D2R
server's ``dump-rdf`` feature does (§2.1): each table's primary key mints
the resource URI, intra-table columns become datatype properties,
cross-table foreign keys become object properties, and the
space-separated ``keywords`` column is split into one triple per keyword
(§2.1.1 — "an 'all keywords' information is not useful").

A mapping is a set of :class:`TableMap` objects, each holding:

* a URI pattern (``{column}`` placeholders, normally the primary key),
* an optional ``rdf:type`` class,
* :class:`PropertyMap` — column → datatype property,
* :class:`LinkMap` — FK column → object property to another table's URI,
* :class:`KeywordSplitMap` — delimited text column → one triple per token.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping as TMapping, Optional

from ..rdf.terms import Literal, URIRef, XSD_INTEGER
from ..relational.table import ColumnType

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][A-Za-z0-9_]*)\}")


class MappingError(ValueError):
    """Invalid mapping definition or a row it cannot map."""


@dataclass(frozen=True)
class UriPattern:
    """A URI template with ``{column}`` placeholders."""

    template: str

    def columns(self) -> List[str]:
        return _PLACEHOLDER_RE.findall(self.template)

    def expand(self, row: TMapping[str, Any]) -> URIRef:
        def substitute(match: re.Match) -> str:
            column = match.group(1)
            if column not in row or row[column] is None:
                raise MappingError(
                    f"URI pattern {self.template!r} needs non-null "
                    f"column {column!r}"
                )
            return _uri_escape(str(row[column]))

        return URIRef(_PLACEHOLDER_RE.sub(substitute, self.template))


def _uri_escape(text: str) -> str:
    """Percent-encode characters unsafe inside a URI path segment."""
    safe = []
    for ch in text:
        if (ch.isalnum() and ch.isascii()) or ch in "-._~":
            safe.append(ch)
        else:
            safe.append("".join(f"%{b:02X}" for b in ch.encode("utf-8")))
    return "".join(safe)


@dataclass(frozen=True)
class PropertyMap:
    """Column → datatype property triple."""

    column: str
    predicate: URIRef
    lang: Optional[str] = None
    datatype: Optional[str] = None  # overrides the type-derived default


@dataclass(frozen=True)
class LinkMap:
    """FK column → object property referencing another table's resources."""

    column: str
    predicate: URIRef
    target_table: str


@dataclass(frozen=True)
class KeywordSplitMap:
    """Delimited text column → one triple per token (paper §2.1.1)."""

    column: str
    predicate: URIRef
    separator: str = " "
    lowercase: bool = False


@dataclass
class TableMap:
    """Complete mapping for one table."""

    table: str
    uri_pattern: UriPattern
    rdf_class: Optional[URIRef] = None
    properties: List[PropertyMap] = field(default_factory=list)
    links: List[LinkMap] = field(default_factory=list)
    keyword_splits: List[KeywordSplitMap] = field(default_factory=list)

    def __post_init__(self) -> None:
        # accept a bare template string for the common case
        if isinstance(self.uri_pattern, str):
            self.uri_pattern = UriPattern(self.uri_pattern)

    def uri_for(self, row: TMapping[str, Any]) -> URIRef:
        return self.uri_pattern.expand(row)


@dataclass
class D2RMapping:
    """A set of table maps, addressable by table name."""

    table_maps: Dict[str, TableMap] = field(default_factory=dict)

    def add(self, table_map: TableMap) -> "D2RMapping":
        if table_map.table in self.table_maps:
            raise MappingError(
                f"duplicate map for table {table_map.table!r}"
            )
        self.table_maps[table_map.table] = table_map
        return self

    def for_table(self, table: str) -> TableMap:
        if table not in self.table_maps:
            raise MappingError(f"no map for table {table!r}")
        return self.table_maps[table]

    def __contains__(self, table: str) -> bool:
        return table in self.table_maps

    def __len__(self) -> int:
        return len(self.table_maps)

    @classmethod
    def from_dict(cls, spec: TMapping[str, Any]) -> "D2RMapping":
        """Build a mapping from a declarative dict (the "mapping file").

        Shape::

            {"pictures": {
                "uri": "http://host/pictures/{pid}",
                "class": "http://rdfs.org/sioc/types#MicroblogPost",
                "properties": [
                    {"column": "title", "predicate": ".../title",
                     "lang": "it"},
                ],
                "links": [
                    {"column": "owner_id", "predicate": ".../maker",
                     "table": "users"},
                ],
                "keywords": [
                    {"column": "keywords", "predicate": ".../keyword",
                     "separator": " "},
                ],
            }}
        """
        mapping = cls()
        for table, entry in spec.items():
            if "uri" not in entry:
                raise MappingError(f"map for {table!r} lacks 'uri'")
            table_map = TableMap(
                table=table,
                uri_pattern=UriPattern(entry["uri"]),
                rdf_class=URIRef(entry["class"]) if "class" in entry
                else None,
            )
            for prop in entry.get("properties", ()):
                table_map.properties.append(
                    PropertyMap(
                        column=prop["column"],
                        predicate=URIRef(prop["predicate"]),
                        lang=prop.get("lang"),
                        datatype=prop.get("datatype"),
                    )
                )
            for link in entry.get("links", ()):
                table_map.links.append(
                    LinkMap(
                        column=link["column"],
                        predicate=URIRef(link["predicate"]),
                        target_table=link["table"],
                    )
                )
            for keywords in entry.get("keywords", ()):
                table_map.keyword_splits.append(
                    KeywordSplitMap(
                        column=keywords["column"],
                        predicate=URIRef(keywords["predicate"]),
                        separator=keywords.get("separator", " "),
                        lowercase=keywords.get("lowercase", False),
                    )
                )
            mapping.add(table_map)
        return mapping


def literal_for(column_type: ColumnType, value: Any,
                lang: Optional[str] = None,
                datatype: Optional[str] = None) -> Literal:
    """Build the literal for a column value following D2R's conventions."""
    if datatype is not None:
        return Literal(str(value), datatype=datatype)
    if lang is not None:
        return Literal(str(value), lang=lang)
    if column_type is ColumnType.INTEGER:
        return Literal(int(value))
    if column_type is ColumnType.REAL:
        return Literal(float(value))
    if column_type is ColumnType.BOOLEAN:
        return Literal(bool(value))
    if column_type is ColumnType.TIMESTAMP and isinstance(value, int):
        return Literal(value, datatype=XSD_INTEGER)
    return Literal(str(value))
