"""The ``dump-rdf`` feature: materialize a relational DB as RDF.

Graph-writes: the caller-supplied (or fresh) dump target, atomically
after the relational scan completes

This is the exact workflow the paper describes (§2.1): rather than running
D2R as a live SPARQL façade, the platform dumps its relational data to
N-Triples once and bulk-loads the dump into the triple store next to the
imported LOD datasets.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..rdf.graph import Graph, Triple
from ..rdf.namespace import RDF
from ..rdf.ntriples import serialize_ntriples
from ..relational.database import Database
from .mapping import D2RMapping, MappingError, literal_for


def validate_mapping(db: Database, mapping: D2RMapping) -> None:
    """Lint ``mapping`` against ``db``'s schema before dumping.

    Raises :class:`MappingError` carrying the rendered diagnostics when
    the mapping linter finds error-severity problems.
    """
    from ..analysis import MappingLinter, Severity

    errors = [
        d for d in MappingLinter().lint(mapping, db, name="pre-dump")
        if d.severity is Severity.ERROR
    ]
    if errors:
        rendered = "; ".join(d.render() for d in errors)
        raise MappingError(
            f"mapping failed pre-dump validation: {rendered}"
        )


def dump_triples(
    db: Database, mapping: D2RMapping, validate: bool = False
) -> Iterator[Triple]:
    """Yield every triple produced by applying ``mapping`` to ``db``.

    With ``validate=True`` the mapping is linted first
    (:func:`validate_mapping`) and nothing is emitted when errors exist;
    validation happens eagerly, at call time, not on first iteration.
    """
    if validate:
        validate_mapping(db, mapping)
    return _dump_triples(db, mapping)


def _dump_triples(db: Database, mapping: D2RMapping) -> Iterator[Triple]:
    for table_name, table_map in mapping.table_maps.items():
        table = db.table(table_name)
        # validate link targets before emitting anything
        for link in table_map.links:
            if link.target_table not in mapping:
                raise MappingError(
                    f"link {table_name}.{link.column} targets unmapped "
                    f"table {link.target_table!r}"
                )
        for row in table.scan():
            subject = table_map.uri_for(row)
            if table_map.rdf_class is not None:
                yield (subject, RDF.type, table_map.rdf_class)
            for prop in table_map.properties:
                value = row.get(prop.column)
                if value is None:
                    continue
                column_type = table.column(prop.column).type
                yield (
                    subject,
                    prop.predicate,
                    literal_for(column_type, value, prop.lang,
                                prop.datatype),
                )
            for link in table_map.links:
                value = row.get(link.column)
                if value is None:
                    continue
                target_map = mapping.for_table(link.target_table)
                target_row = _target_row(db, link.target_table, value)
                if target_row is None:
                    continue
                yield (subject, link.predicate,
                       target_map.uri_for(target_row))
            for split in table_map.keyword_splits:
                value = row.get(split.column)
                if not value:
                    continue
                seen = set()
                for token in str(value).split(split.separator):
                    token = token.strip()
                    if split.lowercase:
                        token = token.lower()
                    if not token or token in seen:
                        continue
                    seen.add(token)
                    yield (subject, split.predicate, _keyword_literal(token))


def _keyword_literal(token: str):
    from ..rdf.terms import Literal

    return Literal(token)


def _target_row(db: Database, table_name: str, key):
    table = db.table(table_name)
    if table.primary_key is not None:
        return table.get(key)
    return None


def dump_graph(
    db: Database,
    mapping: D2RMapping,
    graph: Optional[Graph] = None,
    validate: bool = False,
) -> Graph:
    """Apply ``mapping`` to ``db`` and collect the triples in a graph.

    The dump is materialized *before* the store is touched: feeding the
    live generator straight to ``add_all`` would hold the store's write
    lock across the whole relational scan, and a
    :class:`~repro.d2r.mapping.MappingError` raised mid-stream (link
    validation is per-table, after earlier tables already emitted)
    would leave the target graph half-populated. This way a failing
    dump leaves ``graph`` untouched and the lock is held only for the
    bulk load.
    """
    triples = list(dump_triples(db, mapping, validate=validate))
    if graph is None:
        graph = Graph()
    graph.add_all(triples)
    return graph


def dump_ntriples(
    db: Database, mapping: D2RMapping, validate: bool = False
) -> str:
    """The D2R ``dump-rdf`` output: a deterministic N-Triples document."""
    return serialize_ntriples(dump_triples(db, mapping, validate=validate))
