"""D2R-style relational→RDF lifting (paper §2.1)."""

from .dump import dump_graph, dump_ntriples, dump_triples, validate_mapping
from .mapping import (
    D2RMapping,
    KeywordSplitMap,
    LinkMap,
    MappingError,
    PropertyMap,
    TableMap,
    UriPattern,
    literal_for,
)

__all__ = [
    "D2RMapping",
    "KeywordSplitMap",
    "LinkMap",
    "MappingError",
    "PropertyMap",
    "TableMap",
    "UriPattern",
    "dump_graph",
    "dump_ntriples",
    "dump_triples",
    "literal_for",
    "validate_mapping",
]
