"""Context management platform simulation (paper §1.1 / §2.2.1)."""

from .gazetteer import Gazetteer
from .models import (
    Buddy,
    CalendarEntry,
    CivicAddress,
    GsmCell,
    LocationContext,
    UserContext,
)
from .provider import NEARBY_RADIUS_KM, ContextPlatform
from .triple_tags import (
    KNOWN_NAMESPACES,
    TripleTag,
    TripleTagError,
    decode_value,
    encode_value,
    parse_triple_tag,
    split_tags,
    try_parse_triple_tag,
)

__all__ = [
    "Buddy",
    "CalendarEntry",
    "CivicAddress",
    "ContextPlatform",
    "Gazetteer",
    "GsmCell",
    "KNOWN_NAMESPACES",
    "LocationContext",
    "NEARBY_RADIUS_KM",
    "TripleTag",
    "TripleTagError",
    "UserContext",
    "decode_value",
    "encode_value",
    "parse_triple_tag",
    "split_tags",
    "try_parse_triple_tag",
]
