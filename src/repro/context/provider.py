"""The context management platform simulation.

Keeps per-user state (registered positions, friendships, place labels,
calendars) and answers "what was the context of user U at time T?" —
producing the :class:`~repro.context.models.UserContext` the upload
pipeline consumes, and the triple tags the legacy annotation path stores
(paper §1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rdf.namespace import TL_USER
from ..sparql.geo import Point, haversine_km
from .gazetteer import Gazetteer
from .models import Buddy, CalendarEntry, GsmCell, LocationContext, UserContext
from .triple_tags import TripleTag

#: Radius within which another user counts as a "nearby buddy".
NEARBY_RADIUS_KM = 1.0


@dataclass
class _UserRecord:
    username: str
    full_name: str
    positions: List[Tuple[int, Point]] = field(default_factory=list)
    friends: set = field(default_factory=set)
    calendar: List[CalendarEntry] = field(default_factory=list)
    place_labels: List[Tuple[Point, str, Optional[str]]] = field(
        default_factory=list
    )
    external_accounts: Tuple[str, ...] = ()


class ContextPlatform:
    """In-process context manager for a set of platform users."""

    def __init__(self, gazetteer: Optional[Gazetteer] = None) -> None:
        self.gazetteer = gazetteer or Gazetteer()
        self._users: Dict[str, _UserRecord] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_user(
        self,
        username: str,
        full_name: Optional[str] = None,
        external_accounts: Tuple[str, ...] = (),
    ) -> None:
        if username in self._users:
            raise ValueError(f"user {username!r} already registered")
        self._users[username] = _UserRecord(
            username=username,
            full_name=full_name or username,
            external_accounts=external_accounts,
        )

    def _record(self, username: str) -> _UserRecord:
        if username not in self._users:
            raise KeyError(f"unknown user: {username!r}")
        return self._users[username]

    def add_friendship(self, user_a: str, user_b: str) -> None:
        """Symmetric friendship."""
        self._record(user_a).friends.add(user_b)
        self._record(user_b).friends.add(user_a)

    def report_position(
        self, username: str, timestamp: int, point: Point
    ) -> None:
        """Record a position fix (kept sorted by time)."""
        record = self._record(username)
        record.positions.append((timestamp, point))
        record.positions.sort(key=lambda item: item[0])

    def add_calendar_entry(
        self, username: str, entry: CalendarEntry
    ) -> None:
        self._record(username).calendar.append(entry)

    def label_place(
        self,
        username: str,
        point: Point,
        label: str,
        place_type: Optional[str] = None,
    ) -> None:
        """User-defined location label ("home", "office", "crowded"...)."""
        self._record(username).place_labels.append(
            (point, label, place_type)
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def position_at(
        self, username: str, timestamp: int, max_age: int = 3600
    ) -> Optional[Point]:
        """Most recent fix at or before ``timestamp`` within ``max_age``
        seconds (deferred uploads carry their capture timestamp)."""
        record = self._record(username)
        best: Optional[Tuple[int, Point]] = None
        for fix_time, point in record.positions:
            if fix_time <= timestamp and (
                best is None or fix_time > best[0]
            ):
                best = (fix_time, point)
        if best is None or timestamp - best[0] > max_age:
            return None
        return best[1]

    def nearby_buddies(
        self, username: str, timestamp: int
    ) -> List[Buddy]:
        """Friends within :data:`NEARBY_RADIUS_KM` at ``timestamp``."""
        record = self._record(username)
        own_position = self.position_at(username, timestamp)
        if own_position is None:
            return []
        buddies: List[Buddy] = []
        for friend_name in sorted(record.friends):
            friend = self._users.get(friend_name)
            if friend is None:
                continue
            position = self.position_at(friend_name, timestamp)
            if position is None:
                continue
            if haversine_km(own_position, position) <= NEARBY_RADIUS_KM:
                buddies.append(
                    Buddy(
                        username=friend.username,
                        full_name=friend.full_name,
                        resource=TL_USER[friend.username],
                        external_accounts=friend.external_accounts,
                    )
                )
        return buddies

    def serving_cell(self, point: Point) -> GsmCell:
        """Deterministic synthetic GSM cell for a position."""
        lac = int((point.latitude + 90.0) * 100) % 65536
        ci = int((point.longitude + 180.0) * 100) % 65536
        return GsmCell(mcc=222, mnc=1, lac=lac, ci=ci)

    def place_label_at(
        self, username: str, point: Point, radius_km: float = 0.2
    ) -> Optional[Tuple[str, Optional[str]]]:
        record = self._record(username)
        for label_point, label, place_type in record.place_labels:
            if haversine_km(point, label_point) <= radius_km:
                return (label, place_type)
        return None

    # ------------------------------------------------------------------
    # The main entry point
    # ------------------------------------------------------------------
    def contextualize(self, username: str, timestamp: int) -> UserContext:
        """Full context for (user, timestamp) — §2.2.1's first step."""
        record = self._record(username)
        context = UserContext(username=username, timestamp=timestamp)
        point = self.position_at(username, timestamp)
        if point is not None:
            address = self.gazetteer.reverse_geocode(point)
            labeled = self.place_label_at(username, point)
            context.location = LocationContext(
                point=point,
                address=address,
                place_label=labeled[0] if labeled else None,
                place_type=labeled[1] if labeled else None,
                geonames_resource=self.gazetteer.geonames_reference(point),
                cell=self.serving_cell(point),
            )
            context.buddies = self.nearby_buddies(username, timestamp)
        context.calendar = [
            entry
            for entry in record.calendar
            if entry.covers(timestamp)
        ]
        return context

    def context_tags(self, context: UserContext) -> List[TripleTag]:
        """The legacy triple tags for a context (paper §1.1).

        Emits the namespaces the paper lists: ``geo`` (coordinates),
        ``address`` (civil address), ``cell`` (CGI), ``place`` (labels),
        ``people`` (nearby buddy full names) and ``event`` (calendar).
        """
        tags: List[TripleTag] = []
        location = context.location
        if location is not None:
            tags.append(
                TripleTag("geo", "lat", f"{location.point.latitude:.5f}")
            )
            tags.append(
                TripleTag("geo", "lon", f"{location.point.longitude:.5f}")
            )
            if location.address is not None:
                tags.append(
                    TripleTag("address", "city", location.address.city)
                )
                tags.append(
                    TripleTag("address", "country",
                              location.address.country)
                )
            if location.cell is not None:
                tags.append(TripleTag("cell", "cgi", location.cell.cgi))
            if location.place_label is not None:
                tags.append(
                    TripleTag("place", "name", location.place_label)
                )
            if location.place_type is not None:
                tags.append(TripleTag("place", "is", location.place_type))
        for buddy in context.buddies:
            tags.append(TripleTag("people", "fn", buddy.full_name))
        for entry in context.calendar:
            tags.append(TripleTag("event", "title", entry.title))
        return tags
