"""Context data model: what the context management platform returns.

The paper's platform (Telecom Italia's context manager) supplies, for a
user at a moment in time: a location (GPS + civil address + user-labeled
place + a guaranteed Geonames reference), nearby buddies, the serving GSM
cell and calendar entries. These dataclasses are that contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..rdf.terms import URIRef
from ..sparql.geo import Point


@dataclass(frozen=True)
class CivicAddress:
    """Reverse-geocoded civil address."""

    city: str
    country: str
    street: Optional[str] = None

    def display(self) -> str:
        parts = [p for p in (self.street, self.city, self.country) if p]
        return ", ".join(parts)


@dataclass(frozen=True)
class GsmCell:
    """Serving GSM cell in CGI form (MCC-MNC-LAC-CI)."""

    mcc: int
    mnc: int
    lac: int
    ci: int

    @property
    def cgi(self) -> str:
        return f"{self.mcc}-{self.mnc}-{self.lac}-{self.ci}"


@dataclass(frozen=True)
class LocationContext:
    """A contextualized location (paper §2.2.1)."""

    point: Point
    address: Optional[CivicAddress] = None
    place_label: Optional[str] = None   # user-defined location label
    place_type: Optional[str] = None    # e.g. "home", "office", "crowded"
    geonames_resource: Optional[URIRef] = None
    cell: Optional[GsmCell] = None


@dataclass(frozen=True)
class Buddy:
    """A nearby friend: username, full name and a local RDF resource.

    The paper evaluated linking buddies to external resources via Sindice
    but turned it off for privacy — so only the local resource plus any
    *declared* external accounts are kept.
    """

    username: str
    full_name: str
    resource: Optional[URIRef] = None
    external_accounts: tuple = ()


@dataclass(frozen=True)
class CalendarEntry:
    """A calendar entry overlapping the capture moment."""

    title: str
    start: int  # epoch seconds
    end: int

    def covers(self, timestamp: int) -> bool:
        return self.start <= timestamp <= self.end


@dataclass
class UserContext:
    """Everything the context platform knows for (user, timestamp)."""

    username: str
    timestamp: int
    location: Optional[LocationContext] = None
    buddies: List[Buddy] = field(default_factory=list)
    calendar: List[CalendarEntry] = field(default_factory=list)
