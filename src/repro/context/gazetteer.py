"""Gazetteer: GPS → civil address / nearest city / place labels.

Stands in for the paper's locationing service ("our platform converts
GPS coordinates whenever available from the device into civil
addresses"). Backed by the same synthetic world as the LOD datasets, so
the Geonames reference attached to a location is guaranteed to resolve —
the property the paper relies on ("which validity is guaranteed by the
locationing process itself").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..lod.world import CITIES, POIS, CityInfo, PoiInfo
from ..lod.geonames import geonames_uri
from ..rdf.terms import URIRef
from ..sparql.geo import Point, haversine_km
from .models import CivicAddress


class Gazetteer:
    """Nearest-city and nearest-POI lookups over the synthetic world."""

    def __init__(
        self,
        cities: Optional[List[CityInfo]] = None,
        pois: Optional[List[PoiInfo]] = None,
    ) -> None:
        self.cities = list(CITIES if cities is None else cities)
        self.pois = list(POIS if pois is None else pois)

    # ------------------------------------------------------------------
    def nearest_city(self, point: Point) -> Tuple[CityInfo, float]:
        """The nearest city and its distance in km."""
        if not self.cities:
            raise ValueError("gazetteer has no cities")
        best = min(
            self.cities,
            key=lambda city: haversine_km(
                point, Point(city.longitude, city.latitude)
            ),
        )
        return best, haversine_km(
            point, Point(best.longitude, best.latitude)
        )

    def reverse_geocode(self, point: Point) -> CivicAddress:
        """GPS → civil address (street resolved from the nearest POI when
        within walking distance)."""
        city, _ = self.nearest_city(point)
        street: Optional[str] = None
        poi = self.nearest_poi(point, max_distance_km=0.25)
        if poi is not None:
            label = poi.labels.get("en") or next(iter(poi.labels.values()))
            street = f"near {label}"
        return CivicAddress(
            city=city.labels["en"], country=city.country, street=street
        )

    def geonames_reference(self, point: Point) -> URIRef:
        """The city-level Geonames resource for ``point`` (§2.2.1)."""
        city, _ = self.nearest_city(point)
        return geonames_uri(city.geonames_id)

    # ------------------------------------------------------------------
    def nearest_poi(
        self,
        point: Point,
        max_distance_km: float = 1.0,
        exclude_commercial: bool = False,
    ) -> Optional[PoiInfo]:
        """The nearest POI within ``max_distance_km`` (None if nothing)."""
        best: Optional[PoiInfo] = None
        best_distance = max_distance_km
        for poi in self.pois:
            if exclude_commercial and poi.commercial:
                continue
            distance = haversine_km(
                point, Point(poi.longitude, poi.latitude)
            )
            if distance <= best_distance:
                best = poi
                best_distance = distance
        return best

    def search_pois(
        self,
        point: Point,
        radius_km: float = 2.0,
        category: Optional[str] = None,
    ) -> List[Tuple[PoiInfo, float]]:
        """POIs within ``radius_km`` of ``point``, nearest first.

        This is the platform's POI search provider (the "Google Local"
        stand-in) that the mobile app queries when a user associates a
        content to a POI.
        """
        hits: List[Tuple[PoiInfo, float]] = []
        for poi in self.pois:
            if category is not None and poi.category != category:
                continue
            distance = haversine_km(
                point, Point(poi.longitude, poi.latitude)
            )
            if distance <= radius_km:
                hits.append((poi, distance))
        hits.sort(key=lambda item: item[1])
        return hits

    def poi_by_recs_id(self, recs_id: int) -> Optional[PoiInfo]:
        """Resolve the opaque ``poi:recs_id=N`` tag value to a POI.

        The platform assigns sequential ids over its provider list; we
        use the POI's position in the world list, 1-based.
        """
        if 1 <= recs_id <= len(self.pois):
            return self.pois[recs_id - 1]
        return None

    def recs_id_for(self, poi: PoiInfo) -> int:
        """Inverse of :meth:`poi_by_recs_id`."""
        return self.pois.index(poi) + 1
