"""Triple tags (machine tags) — the platform's pre-semantic annotation.

The original platform (paper §1.1) carried "semantics" in triple tags of
the form ``namespace:predicate=value`` — e.g. ``people:fn=Walter+Goix``,
``cell:cgi=460-0-9522-3661``, ``place:is=crowded``, ``poi:recs_id=72`` —
following the convention popularized by Flickr machine tags. This module
is the codec plus the namespace registry, and it is the baseline the
semantic layer replaces.

Values are encoded with ``+`` for spaces (as in the paper's examples) and
percent-escapes for the reserved characters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Optional

#: Namespaces the platform emits; the paper highlights that ``address``
#: and ``people`` were newly proposed next to the common geo namespaces.
KNOWN_NAMESPACES = frozenset(
    {"geo", "address", "people", "cell", "place", "poi", "time", "event"}
)

_TAG_RE = re.compile(
    r"^(?P<namespace>[a-z][a-z0-9]*):(?P<predicate>[A-Za-z_][A-Za-z0-9_]*)"
    r"=(?P<value>.*)$"
)


class TripleTagError(ValueError):
    """Raised on malformed triple-tag text."""


def encode_value(value: str) -> str:
    """Encode a tag value: spaces become ``+``, reserved chars escape."""
    out = []
    for ch in value:
        if ch == " ":
            out.append("+")
        elif ch in "%+=:":
            out.append(f"%{ord(ch):02X}")
        else:
            out.append(ch)
    return "".join(out)


def decode_value(text: str) -> str:
    """Inverse of :func:`encode_value`."""
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "+":
            out.append(" ")
            i += 1
        elif ch == "%":
            if i + 2 >= len(text) + 1:
                raise TripleTagError(f"truncated escape in {text!r}")
            try:
                out.append(chr(int(text[i + 1 : i + 3], 16)))
            except ValueError as exc:
                raise TripleTagError(
                    f"bad escape in {text!r}"
                ) from exc
            i += 3
        else:
            out.append(ch)
            i += 1
    return "".join(out)


@dataclass(frozen=True)
class TripleTag:
    """One machine tag: ``namespace:predicate=value``."""

    namespace: str
    predicate: str
    value: str

    def format(self) -> str:
        return (
            f"{self.namespace}:{self.predicate}={encode_value(self.value)}"
        )

    @property
    def is_known_namespace(self) -> bool:
        return self.namespace in KNOWN_NAMESPACES

    def display(self) -> str:
        """The "friendly format" the platform GUI shows for context tags."""
        return f"{self.predicate}: {self.value}"

    def __str__(self) -> str:
        return self.format()


def parse_triple_tag(text: str) -> TripleTag:
    """Parse one ``namespace:predicate=value`` tag."""
    match = _TAG_RE.match(text.strip())
    if not match:
        raise TripleTagError(f"not a triple tag: {text!r}")
    return TripleTag(
        namespace=match.group("namespace"),
        predicate=match.group("predicate"),
        value=decode_value(match.group("value")),
    )


def try_parse_triple_tag(text: str) -> Optional[TripleTag]:
    """Like :func:`parse_triple_tag` but returns ``None`` on plain tags."""
    try:
        return parse_triple_tag(text)
    except TripleTagError:
        return None


def split_tags(tags: Iterable[str]) -> tuple:
    """Partition a tag list into (triple_tags, plain_tags).

    This is the GUI optimization the paper mentions: context tags are
    displayed separately from user-defined tags.
    """
    triple_tags: List[TripleTag] = []
    plain_tags: List[str] = []
    for tag in tags:
        parsed = try_parse_triple_tag(tag)
        if parsed is not None:
            triple_tags.append(parsed)
        else:
            plain_tags.append(tag)
    return triple_tags, plain_tags
