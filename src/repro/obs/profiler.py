"""Zero-dependency sampling wall-clock profiler.

Concurrency: thread-safe
Graph-writes: none

:class:`SamplingProfiler` snapshots every live thread's Python stack
via :func:`sys._current_frames` from a daemon sampler thread at a
configurable rate (default ~67 Hz — deliberately off the 100 Hz / 10 ms
scheduler harmonics so periodic work is not systematically missed or
double-counted). Samples aggregate per thread into collapsed call
stacks — the ``thread;frame;frame;leaf count`` text format Brendan
Gregg's ``flamegraph.pl`` and speedscope consume directly — so a load
run can be profiled and the hot paths read without any third-party
package.

Thread-safety model: only the sampler thread mutates the aggregation
dict while running; readers (:meth:`collapsed`, :meth:`top`,
:meth:`stats`) are meant to run after :meth:`stop`, which joins the
sampler. ``start``/``stop`` themselves are guarded by a small state
lock so double-starts raise instead of leaking threads. The sampler
never samples itself.

Overhead is bounded by design — each tick costs one frames snapshot
plus a dict update, and :meth:`stats` reports the measured sampler duty
cycle so the ``bench_loadgen`` guard can assert the documented ≤1.10x
envelope. Attach one to any run with ``profile_from_env()`` honoring
``REPRO_PROFILE`` (``1``/``0`` or an output path) and
``REPRO_PROFILE_HZ``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "ProfileStats",
    "ProfilerError",
    "SamplingProfiler",
    "profile_from_env",
]

_DEFAULT_HZ = 67.0


class ProfilerError(RuntimeError):
    """Invalid profiler configuration or lifecycle misuse."""


class ProfileStats:
    """Measured sampler accounting for one start/stop window."""

    __slots__ = (
        "samples", "threads_seen", "wall_seconds", "sampler_seconds",
    )

    def __init__(
        self,
        samples: int,
        threads_seen: int,
        wall_seconds: float,
        sampler_seconds: float,
    ) -> None:
        self.samples = samples
        self.threads_seen = threads_seen
        self.wall_seconds = wall_seconds
        self.sampler_seconds = sampler_seconds

    @property
    def duty_cycle(self) -> float:
        """Fraction of wall time spent inside the sampler itself."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.sampler_seconds / self.wall_seconds

    def to_dict(self) -> Dict[str, float]:
        return {
            "samples": self.samples,
            "threads_seen": self.threads_seen,
            "wall_seconds": self.wall_seconds,
            "sampler_seconds": self.sampler_seconds,
            "duty_cycle": self.duty_cycle,
        }


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{Path(code.co_filename).stem}.{code.co_name}"


class SamplingProfiler:
    """Collapsed-stack wall-clock profiler over all Python threads."""

    def __init__(self, hz: float = _DEFAULT_HZ) -> None:
        if hz <= 0 or hz > 1000:
            raise ProfilerError("sampling rate must be in (0, 1000] Hz")
        self.hz = hz
        self._interval = 1.0 / hz
        self._state_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._thread_idents: set = set()
        self._samples = 0
        self._sampler_seconds = 0.0
        self._started_at = 0.0
        self._wall_seconds = 0.0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SamplingProfiler":
        with self._state_lock:
            if self._thread is not None:
                raise ProfilerError("profiler already running")
            self._stop_event.clear()
            self._stacks.clear()
            self._thread_idents.clear()
            self._samples = 0
            self._sampler_seconds = 0.0
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
        self._started_at = time.perf_counter()
        self._thread.start()  # cc: allow=CC001 (set under lock above)
        return self

    def stop(self) -> ProfileStats:
        with self._state_lock:
            thread = self._thread
            if thread is None:
                raise ProfilerError("profiler is not running")
            self._thread = None
        self._stop_event.set()  # cc: allow=CC001 (Event is thread-safe)
        thread.join()
        self._wall_seconds = time.perf_counter() - self._started_at
        return self.stats()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampler loop (the only mutator while running) -----------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        interval = self._interval
        stop_wait = self._stop_event.wait  # cc: allow=CC001 (Event is thread-safe)
        while not stop_wait(interval):
            tick_began = time.perf_counter()
            names = {
                t.ident: t.name for t in threading.enumerate()
                if t.ident is not None
            }
            for ident, frame in sys._current_frames().items():
                if ident == own_ident:
                    continue
                stack: List[str] = []
                while frame is not None:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                stack.append(names.get(ident, f"thread-{ident}"))
                key = tuple(reversed(stack))
                self._stacks[key] = self._stacks.get(key, 0) + 1  # cc: allow=CC001 (sampler-thread exclusive)
                self._thread_idents.add(ident)  # cc: allow=CC001 (sampler-thread exclusive)
            self._samples += 1  # cc: allow=CC001 (sampler-thread exclusive)
            self._sampler_seconds += (  # cc: allow=CC001 (sampler-thread exclusive)
                time.perf_counter() - tick_began
            )

    # -- results (read after stop) -------------------------------------
    def stats(self) -> ProfileStats:
        wall = self._wall_seconds
        if wall == 0.0 and self._started_at:
            wall = time.perf_counter() - self._started_at
        return ProfileStats(
            samples=self._samples,  # cc: allow=CC001 (read after join)
            threads_seen=len(self._thread_idents),  # cc: allow=CC001 (read after join)
            wall_seconds=wall,
            sampler_seconds=self._sampler_seconds,  # cc: allow=CC001 (read after join)
        )

    def collapsed(self) -> str:
        """Flamegraph-compatible text: ``thread;f1;f2;leaf count``."""
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(self._stacks.items())  # cc: allow=CC001 (read after join)
        ]
        return "\n".join(lines)

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` hottest leaf frames by inclusive sample count."""
        leaves: Dict[str, int] = {}
        for stack, count in self._stacks.items():  # cc: allow=CC001 (read after join)
            leaf = stack[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def write_collapsed(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        text = self.collapsed()
        target.write_text(text + ("\n" if text else ""), encoding="utf-8")
        return target


def profile_from_env(
    environ: Optional[Dict[str, str]] = None,
) -> Tuple[Optional[SamplingProfiler], Optional[Path]]:
    """Build a profiler from ``REPRO_PROFILE``/``REPRO_PROFILE_HZ``.

    ``REPRO_PROFILE`` unset, empty, or ``0`` disables profiling and
    returns ``(None, None)``. ``1`` enables it with no output file; any
    other value is treated as the collapsed-stack output path. The
    caller starts/stops the profiler and writes the file.
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_PROFILE", "").strip()
    if raw in ("", "0"):
        return None, None
    hz_raw = env.get("REPRO_PROFILE_HZ", "").strip()
    try:
        hz = float(hz_raw) if hz_raw else _DEFAULT_HZ
    except ValueError:
        raise ProfilerError(
            f"REPRO_PROFILE_HZ is not a number: {hz_raw!r}"
        ) from None
    profiler = SamplingProfiler(hz=hz)
    output = None if raw == "1" else Path(raw)
    return profiler, output
