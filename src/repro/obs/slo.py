"""Declarative SLOs evaluated against a metrics snapshot.

Concurrency: single-threaded
Graph-writes: none

An :class:`SLOSpec` is a named list of :class:`Objective` rows — each
one binds a metric family from :class:`~repro.obs.metrics.
MetricsRegistry` to a target:

* ``latency`` / ``freshness`` — a quantile of a histogram family must
  stay at or below a threshold (seconds);
* ``error_rate`` — the ``status="error"`` share of a counter family
  must stay at or below a ratio;
* ``throughput`` — a histogram family's observation count divided by
  the run's wall-clock seconds must stay at or *above* a floor.

Evaluation (:func:`evaluate_slo`) runs over the plain-JSON
``registry.snapshot()`` structure, never the live registry, so the
same code judges an in-process load run and a ``--save-metrics`` file
loaded back hours later in CI. The verdict is an :class:`SLOReport`:
one :class:`ObjectiveResult` per objective with the observed value,
the target, the **burn** ratio (observed/target — how much of the
objective's budget the run consumed; >1.0 is a breach) and a pass/fail
flag, plus the overall verdict and a JSON form CI uploads as an
artifact.

Objectives with no matching series *fail* (``no data``) rather than
vacuously pass — a load run that never exercised an op, or a renamed
metric, must not look healthy. :func:`default_slo` is the spec the
``repro obs loadgen --slo`` smoke run and ``bench_loadgen`` guard
enforce; custom specs load from JSON via :meth:`SLOSpec.load`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Objective",
    "ObjectiveResult",
    "SLOError",
    "SLOReport",
    "SLOSpec",
    "default_slo",
    "evaluate_slo",
    "quantile_from_series",
]

#: Objective kinds and the comparison direction they imply.
_KINDS = ("latency", "freshness", "error_rate", "throughput")


class SLOError(ValueError):
    """A malformed SLO spec or an unevaluable objective."""


@dataclass(frozen=True)
class Objective:
    """One service-level objective over one metric family."""

    name: str
    kind: str                   # latency|freshness|error_rate|throughput
    metric: str                 # metric family name in the snapshot
    threshold: float            # seconds / ratio / ops-per-second floor
    quantile: float = 0.95      # latency + freshness only
    labels: Mapping[str, str] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SLOError(
                f"unknown objective kind {self.kind!r} "
                f"(allowed: {', '.join(_KINDS)})"
            )
        if not 0.0 <= self.quantile <= 1.0:
            raise SLOError("objective quantile must be within [0, 1]")
        if self.threshold < 0:
            raise SLOError("objective threshold must be >= 0")

    def target_text(self) -> str:
        if self.kind in ("latency", "freshness"):
            return (
                f"p{round(self.quantile * 100)} <= "
                f"{self.threshold * 1000.0:g} ms"
            )
        if self.kind == "error_rate":
            return f"errors <= {self.threshold:.2%}"
        return f">= {self.threshold:g} op/s"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "threshold": self.threshold,
            "quantile": self.quantile,
            "labels": dict(self.labels),
            "description": self.description,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Objective":
        try:
            return Objective(
                name=str(data["name"]),
                kind=str(data["kind"]),
                metric=str(data["metric"]),
                threshold=float(data["threshold"]),
                quantile=float(data.get("quantile", 0.95)),
                labels={
                    str(k): str(v)
                    for k, v in dict(data.get("labels", {})).items()
                },
                description=str(data.get("description", "")),
            )
        except KeyError as exc:
            raise SLOError(f"objective missing field {exc}") from None


@dataclass(frozen=True)
class SLOSpec:
    """A named set of objectives, loadable from JSON."""

    name: str
    objectives: Tuple[Objective, ...]

    def __post_init__(self) -> None:
        if not self.objectives:
            raise SLOError(f"SLO spec {self.name!r} has no objectives")
        seen = set()
        for objective in self.objectives:
            if objective.name in seen:
                raise SLOError(
                    f"duplicate objective name {objective.name!r}"
                )
            seen.add(objective.name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "objectives": [o.to_dict() for o in self.objectives],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SLOSpec":
        objectives = data.get("objectives")
        if not isinstance(objectives, list):
            raise SLOError("SLO spec needs an 'objectives' array")
        return SLOSpec(
            name=str(data.get("name", "unnamed")),
            objectives=tuple(
                Objective.from_dict(entry) for entry in objectives
            ),
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "SLOSpec":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SLOError(f"cannot load SLO spec {path}: {exc}") from exc
        return SLOSpec.from_dict(data)


@dataclass
class ObjectiveResult:
    """The judged outcome of one objective."""

    objective: Objective
    observed: Optional[float]   # None when no data matched
    ok: bool
    burn: Optional[float]       # observed budget share; > 1.0 breaches
    samples: int
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "metric": self.objective.metric,
            "target": self.objective.threshold,
            "target_text": self.objective.target_text(),
            "observed": self.observed,
            "ok": self.ok,
            "burn": self.burn,
            "samples": self.samples,
            "detail": self.detail,
        }


@dataclass
class SLOReport:
    """Structured pass/fail verdict over one metrics snapshot."""

    spec_name: str
    results: List[ObjectiveResult]
    wall_seconds: Optional[float] = None

    @property
    def passed(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def breaches(self) -> List[ObjectiveResult]:
        return [result for result in self.results if not result.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "passed": self.passed,
            "wall_seconds": self.wall_seconds,
            "objectives": [result.to_dict() for result in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """A fixed-width verdict table, worst burn first."""
        lines = [
            f"SLO report: {self.spec_name} — "
            f"{'PASS' if self.passed else 'FAIL'}"
            f" ({len(self.results) - len(self.breaches)}/"
            f"{len(self.results)} objective(s) met)"
        ]
        header = (
            f"  {'objective':<22} {'target':<22} {'observed':>12} "
            f"{'burn':>6} {'n':>6}  verdict"
        )
        lines.append(header)
        ordered = sorted(
            self.results,
            key=lambda r: -(r.burn if r.burn is not None else math.inf),
        )
        for result in ordered:
            objective = result.objective
            if result.observed is None:
                observed = "-"
            elif objective.kind in ("latency", "freshness"):
                observed = f"{result.observed * 1000.0:.1f} ms"
            elif objective.kind == "error_rate":
                observed = f"{result.observed:.2%}"
            else:
                observed = f"{result.observed:.1f} op/s"
            burn = f"{result.burn:.2f}" if result.burn is not None else "-"
            verdict = "ok" if result.ok else "BREACH"
            if result.detail and not result.ok:
                verdict += f" ({result.detail})"
            lines.append(
                f"  {objective.name:<22} {objective.target_text():<22} "
                f"{observed:>12} {burn:>6} {result.samples:>6}  {verdict}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# snapshot arithmetic
# ----------------------------------------------------------------------
def _parse_edge(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _labels_match(
    wanted: Mapping[str, str], labels: Mapping[str, str]
) -> bool:
    return all(labels.get(key) == value for key, value in wanted.items())


def _merge_histogram_series(
    series: List[Mapping[str, Any]],
) -> Tuple[List[Tuple[float, int]], int, float]:
    """Sum matching histogram children into one (edges, count, max)."""
    merged: Dict[float, int] = {}
    count = 0
    maximum = 0.0
    for entry in series:
        count += int(entry.get("count", 0))
        maximum = max(maximum, float(entry.get("max", 0.0)))
        for edge_text, bucket_count in entry.get("buckets", {}).items():
            edge = _parse_edge(edge_text)
            merged[edge] = merged.get(edge, 0) + int(bucket_count)
    return sorted(merged.items()), count, maximum


def quantile_from_series(
    series: List[Mapping[str, Any]], q: float
) -> Tuple[Optional[float], int]:
    """Bucket-interpolated quantile over snapshot histogram children.

    Mirrors :meth:`HistogramChild.quantile` (including the exact-max
    behavior at ``q == 1.0``) but runs on the JSON snapshot structure.
    Returns ``(estimate, total samples)``; the estimate is ``None``
    when no samples matched.
    """
    if not 0.0 <= q <= 1.0:
        raise SLOError("quantile must be within [0, 1]")
    buckets, total, maximum = _merge_histogram_series(series)
    if total == 0:
        return None, 0
    if q == 1.0:
        return maximum, total
    rank = q * total
    cumulative = 0
    previous_edge = 0.0
    for index, (edge, bucket_count) in enumerate(buckets):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank and bucket_count:
            lower = previous_edge
            upper = maximum if math.isinf(edge) else edge
            upper = max(min(upper, maximum), lower)
            fraction = (rank - previous) / bucket_count
            return lower + (upper - lower) * fraction, total
        if not math.isinf(edge):
            previous_edge = edge
    return maximum, total


def _histogram_series(
    snapshot: Mapping[str, Any], objective: Objective
) -> Tuple[Optional[List[Mapping[str, Any]]], str]:
    family = snapshot.get(objective.metric)
    if family is None:
        return None, f"metric {objective.metric!r} absent"
    if family.get("type") != "histogram":
        return None, f"metric {objective.metric!r} is not a histogram"
    matched = [
        entry for entry in family.get("series", [])
        if _labels_match(objective.labels, entry.get("labels", {}))
    ]
    if not matched:
        return None, "no series matched the label filter"
    return matched, ""


def _evaluate_quantile(
    snapshot: Mapping[str, Any], objective: Objective
) -> ObjectiveResult:
    matched, problem = _histogram_series(snapshot, objective)
    if matched is None:
        return ObjectiveResult(objective, None, False, None, 0, problem)
    observed, samples = quantile_from_series(matched, objective.quantile)
    if observed is None:
        return ObjectiveResult(
            objective, None, False, None, 0, "no data"
        )
    burn = (
        observed / objective.threshold if objective.threshold > 0
        else math.inf
    )
    return ObjectiveResult(
        objective, observed, observed <= objective.threshold,
        burn, samples,
    )


def _evaluate_error_rate(
    snapshot: Mapping[str, Any], objective: Objective
) -> ObjectiveResult:
    family = snapshot.get(objective.metric)
    if family is None:
        return ObjectiveResult(
            objective, None, False, None, 0,
            f"metric {objective.metric!r} absent",
        )
    total = 0.0
    errors = 0.0
    for entry in family.get("series", []):
        labels = entry.get("labels", {})
        if not _labels_match(objective.labels, labels):
            continue
        value = float(entry.get("value", 0.0))
        total += value
        if labels.get("status") == "error":
            errors += value
    if total == 0:
        return ObjectiveResult(objective, None, False, None, 0, "no data")
    observed = errors / total
    burn = (
        observed / objective.threshold if objective.threshold > 0
        else (math.inf if observed else 0.0)
    )
    return ObjectiveResult(
        objective, observed, observed <= objective.threshold,
        burn, int(total),
    )


def _evaluate_throughput(
    snapshot: Mapping[str, Any],
    objective: Objective,
    wall_seconds: Optional[float],
) -> ObjectiveResult:
    matched, problem = _histogram_series(snapshot, objective)
    if matched is None:
        return ObjectiveResult(objective, None, False, None, 0, problem)
    samples = sum(int(entry.get("count", 0)) for entry in matched)
    if wall_seconds is None or wall_seconds <= 0:
        return ObjectiveResult(
            objective, None, False, None, samples,
            "wall-clock seconds unknown",
        )
    observed = samples / wall_seconds
    burn = (
        objective.threshold / observed if observed > 0 else math.inf
    )
    return ObjectiveResult(
        objective, observed, observed >= objective.threshold,
        burn, samples,
    )


def evaluate_slo(
    spec: SLOSpec,
    snapshot: Mapping[str, Any],
    wall_seconds: Optional[float] = None,
) -> SLOReport:
    """Judge every objective of ``spec`` against ``snapshot``.

    ``snapshot`` is the structure :meth:`MetricsRegistry.snapshot`
    returns (or the same loaded back from JSON); ``wall_seconds`` is
    required for ``throughput`` objectives to have a denominator.
    """
    results: List[ObjectiveResult] = []
    for objective in spec.objectives:
        if objective.kind in ("latency", "freshness"):
            results.append(_evaluate_quantile(snapshot, objective))
        elif objective.kind == "error_rate":
            results.append(_evaluate_error_rate(snapshot, objective))
        else:
            results.append(
                _evaluate_throughput(snapshot, objective, wall_seconds)
            )
    return SLOReport(spec.name, results, wall_seconds)


def default_slo() -> SLOSpec:
    """The stock spec for ``repro.workloads.loadgen`` runs.

    Targets are deliberately loose enough for a shared CI runner at the
    smoke scale (tens of ops, 2–4 workers) while still catching order-
    of-magnitude regressions: interactive reads must stay sub-second at
    p95, the write path sub-250 ms at p99, upload→queryable freshness
    within 15 s, and the run must not crawl or error.
    """
    return SLOSpec(
        name="loadgen-default",
        objectives=(
            Objective(
                name="search_p95", kind="latency",
                metric="repro_loadgen_op_seconds",
                labels={"op": "search"}, quantile=0.95, threshold=0.50,
                description="incremental search suggestion latency",
            ),
            Objective(
                name="browse_p95", kind="latency",
                metric="repro_loadgen_op_seconds",
                labels={"op": "browse"}, quantile=0.95, threshold=0.50,
                description="web pagination latency",
            ),
            Objective(
                name="album_p95", kind="latency",
                metric="repro_loadgen_op_seconds",
                labels={"op": "album"}, quantile=0.95, threshold=2.0,
                description="virtual-album SPARQL latency",
            ),
            Objective(
                name="mashup_p95", kind="latency",
                metric="repro_loadgen_op_seconds",
                labels={"op": "mashup"}, quantile=0.95, threshold=4.0,
                description="About-mashup SPARQL latency",
            ),
            Objective(
                name="store_write_p99", kind="latency",
                metric="repro_loadgen_op_seconds",
                labels={"op": "store_write"}, quantile=0.99,
                threshold=0.25,
                description="StoreGraph autocommit write latency",
            ),
            Objective(
                name="upload_p95", kind="latency",
                metric="repro_loadgen_op_seconds",
                labels={"op": "upload"}, quantile=0.95, threshold=10.0,
                description="upload + annotate + store sync latency",
            ),
            Objective(
                name="freshness_p95", kind="freshness",
                metric="repro_loadgen_freshness_seconds",
                quantile=0.95, threshold=15.0,
                description="upload-to-queryable staleness window",
            ),
            Objective(
                name="error_rate", kind="error_rate",
                metric="repro_loadgen_ops_total", threshold=0.01,
                description="failed operations across the whole mix",
            ),
            Objective(
                name="throughput_floor", kind="throughput",
                metric="repro_loadgen_op_seconds", threshold=2.0,
                description="overall completed ops per second",
            ),
        ),
    )
