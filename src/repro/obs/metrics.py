"""Zero-dependency metrics registry.

Named :class:`Counter` / :class:`Gauge` / :class:`Histogram` families
with label support, collected in a thread-safe
:class:`MetricsRegistry`. Two expositions:

* :meth:`MetricsRegistry.snapshot` — a plain-JSON structure for
  programmatic consumers (benchmark records, tests, dashboards);
* :meth:`MetricsRegistry.prometheus` — the Prometheus text format
  (one ``# HELP`` / ``# TYPE`` pair per family, ``_bucket``/``_sum``/
  ``_count`` series per histogram child).

Histograms use fixed log-scale latency buckets by default
(:data:`DEFAULT_LATENCY_BUCKETS` — three per decade, 100 µs to 10 s),
so every latency metric in the system is comparable bucket-for-bucket.

Instrument families are created idempotently: asking a registry for an
existing name returns the existing family (and raises if the kind or
buckets disagree — a config bug worth failing loudly on).
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
]

#: Log-scale latency buckets in seconds: 3 per decade, 100 µs → 10 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 3.0), 6)
    for exponent in range(-12, 4)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric name, label, or conflicting registration."""


def _labels_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _render_labels(key: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


# ----------------------------------------------------------------------
# Children (one per unique label set)
# ----------------------------------------------------------------------
class CounterChild:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeChild:
    """A value that can go up, down, or be set outright."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Keep the running maximum of observed values."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramChild:
    """Cumulative bucket counts plus sum/count/max."""

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count", "_max")

    def __init__(
        self, lock: threading.Lock, buckets: Tuple[float, ...]
    ) -> None:
        self._lock = lock
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf bucket last."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise MetricError("quantile must be within [0, 1]")
        with self._lock:
            total = self._count
            counts = list(self._counts)
            maximum = self._max
        if total == 0:
            return 0.0
        if q == 1.0:
            # The tracked maximum is exact; interpolating to the upper
            # bucket edge would overstate the tail.
            return maximum
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets) else maximum
                )
                upper = max(min(upper, maximum), lower)
                fraction = (
                    (rank - previous) / bucket_count
                    if bucket_count else 0.0
                )
                return lower + (upper - lower) * fraction
        return maximum


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
class _Family:
    """A named metric with zero or more labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._children: Dict[Tuple[Tuple[str, str], ...], Any] = {}

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        for label in labels:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        key = _labels_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def children(self) -> List[Tuple[Dict[str, str], Any]]:
        with self._lock:
            return [
                (dict(key), child)
                for key, child in sorted(self._children.items())
            ]

    # unlabeled convenience: family.inc() == family.labels().inc()
    def _default(self):
        return self.labels()


class Counter(_Family):
    kind = "counter"

    def _new_child(self) -> CounterChild:
        return CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class Gauge(_Family):
    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        return GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set_max(self, value: float) -> None:
        self._default().set_max(value)

    @property
    def value(self) -> float:
        return self._default().value


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help)
        chosen = tuple(buckets or DEFAULT_LATENCY_BUCKETS)
        if not chosen:
            raise MetricError("histogram needs at least one bucket")
        if list(chosen) != sorted(chosen):
            raise MetricError("histogram buckets must be sorted")
        self.buckets = chosen

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def sum(self) -> float:
        return self._default().sum

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def max(self) -> float:
        return self._default().max


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A named collection of metric families, thread-safe.

    One process-wide registry exists by default
    (:func:`repro.obs.get_registry`); components take an injectable
    ``registry`` so tests and multi-tenant embeddings can isolate
    their counters.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- family constructors -------------------------------------------
    def _register(self, family_cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, family_cls):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                buckets = kwargs.get("buckets")
                if (
                    buckets is not None
                    and tuple(buckets) != existing.buckets
                ):
                    raise MetricError(
                        f"histogram {name!r} already registered with "
                        "different buckets"
                    )
                return existing
            family = family_cls(name, help, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    # -- introspection -------------------------------------------------
    def families(self) -> List[_Family]:
        with self._lock:
            return [
                self._families[name]
                for name in sorted(self._families)
            ]

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def clear(self) -> None:
        """Drop every family — test isolation helper."""
        with self._lock:
            self._families.clear()

    # -- expositions ---------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able view of every family and child."""
        result: Dict[str, Any] = {}
        for family in self.families():
            series = []
            for labels, child in family.children():
                if isinstance(child, HistogramChild):
                    series.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "max": child.max,
                        "buckets": {
                            _format_value(edge): count
                            for edge, count in zip(
                                list(family.buckets) + [math.inf],
                                child.bucket_counts(),
                            )
                        },
                    })
                else:
                    series.append(
                        {"labels": labels, "value": child.value}
                    )
            result[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return result

    def snapshot_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def prometheus(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.children():
                key = _labels_key(labels)
                if isinstance(child, HistogramChild):
                    cumulative = 0
                    edges = list(family.buckets) + [math.inf]
                    for edge, count in zip(
                        edges, child.bucket_counts()
                    ):
                        cumulative += count
                        le = (
                            f'le="{_format_value(edge)}"'
                        )
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_render_labels(key, le)} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(key)} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(key)} "
                        f"{child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(key)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
