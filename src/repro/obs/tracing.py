"""Zero-dependency tracing core.

A :class:`Tracer` produces nested :class:`Span` records — name,
attributes, monotonic start/duration, status, parent id — with
*thread-local* context propagation: a span opened on a thread becomes
the parent of every span opened on that same thread until it closes.
Cross-thread parenting (a :class:`~repro.core.batch.BatchAnnotator`
worker attaching its item span to the batch root span that lives on
the coordinating thread) is explicit: pass ``parent=``.

Exporters receive every finished span. Three ship in-tree:

* :class:`InMemorySpanExporter` — a bounded ring buffer, the default
  sink for CLI ``--trace`` runs and tests;
* :class:`JsonLinesExporter` — one JSON object per finished span,
  appended to a file (or any writable handle);
* :func:`render_span_tree` — not an exporter but the human-readable
  companion: renders a batch of finished spans as an indented tree
  with per-span durations.

A disabled tracer (``Tracer(enabled=False)`` — the process-wide
default) hands out a shared no-op span, so instrumented hot paths pay
one attribute load and one ``if`` when tracing is off.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "InMemorySpanExporter",
    "JsonLinesExporter",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "render_span_tree",
]


class _NoopSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_status(self, status: str, error: Optional[str] = None) -> None:
        pass

    @property
    def is_recording(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed operation; a context manager.

    ``start`` is a monotonic clock reading (``time.perf_counter``),
    ``duration`` is in seconds; ``started_at`` is wall-clock epoch time
    for log correlation. ``status`` is ``"ok"`` or ``"error"`` (set
    automatically when the ``with`` body raises).
    """

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "start",
        "started_at", "duration", "status", "error", "attributes",
        "_tracer", "_explicit_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional["Span"] = None,
    ) -> None:
        self._tracer = tracer
        self._explicit_parent = parent
        self.name = name
        # adopted, not copied — hot instrumentation sites pass fresh
        # (or frozen shared) dicts and never mutate them afterwards
        self.attributes: Dict[str, Any] = (
            attributes if attributes is not None else {}
        )
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.trace_id: Optional[int] = None
        self.start: Optional[float] = None
        self.started_at: Optional[float] = None
        self.duration: Optional[float] = None
        self.status: str = "unset"
        self.error: Optional[str] = None

    # -- context management -------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        elif self.status == "unset":
            self.status = "ok"
        self._tracer._finish(self)
        return False

    # -- mutation ------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_status(self, status: str, error: Optional[str] = None) -> None:
        self.status = status
        if error is not None:
            self.error = error

    @property
    def is_recording(self) -> bool:
        return True

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "started_at": self.started_at,
            "duration_ms": (
                self.duration * 1000.0
                if self.duration is not None else None
            ),
            "status": self.status,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} id={self.span_id} "
            f"parent={self.parent_id} status={self.status}>"
        )


class Tracer:
    """Produces spans and feeds finished ones to its exporters.

    ``enabled=False`` makes :meth:`span` return the shared no-op span —
    the cheap path instrumented code takes in production when nobody is
    tracing.
    """

    def __init__(
        self,
        enabled: bool = True,
        exporters: Optional[Sequence] = None,
    ) -> None:
        self.enabled = enabled
        self.exporters: List = list(exporters or ())
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- public API ----------------------------------------------------
    def span(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional[Span] = None,
    ):
        """A context manager for one operation.

        ``parent`` overrides the thread-local context — the cross-thread
        hand-off (a no-op span passed as parent is ignored, so callers
        can thread through whatever an outer ``span()`` returned).
        """
        if not self.enabled:
            return NOOP_SPAN
        if not isinstance(parent, Span):
            parent = None
        return Span(self, name, attributes, parent)

    def record_span(
        self,
        name: str,
        duration: float,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional[Span] = None,
    ) -> Optional[Span]:
        """Export an already-measured operation as a finished span.

        For code that times itself (e.g. generator pipelines where a
        ``with`` block cannot bracket the work): the span parents to
        the current thread-local span unless ``parent`` says otherwise.
        """
        if not self.enabled:
            return None
        span = Span(self, name, attributes, parent)
        span.span_id = next(self._ids)
        anchor = parent if isinstance(parent, Span) else self.current_span()
        if anchor is not None:
            span.parent_id = anchor.span_id
            span.trace_id = anchor.trace_id
        else:
            span.trace_id = span.span_id
        span.started_at = time.time() - duration
        span.start = time.perf_counter() - duration
        span.duration = duration
        span.status = "ok"
        self._export(span)
        return span

    def current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def add_exporter(self, exporter) -> None:
        self.exporters.append(exporter)

    # -- span lifecycle (called by Span) -------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _begin(self, span: Span) -> None:
        span.span_id = next(self._ids)
        local = self._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = []
            local.stack = stack
        parent = span._explicit_parent
        if parent is None and stack:
            parent = stack[-1]
        if parent is not None and parent.span_id is not None:
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
        else:
            span.trace_id = span.span_id
        stack.append(span)
        span.started_at = time.time()
        span.start = time.perf_counter()

    def _finish(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.start
        stack = getattr(self._local, "stack", None)
        if stack:
            if stack[-1] is span:
                stack.pop()
            else:  # defensive: tolerate out-of-order exits
                try:
                    stack.remove(span)
                except ValueError:
                    pass
        self._export(span)

    def _export(self, span: Span) -> None:
        for exporter in self.exporters:
            exporter.export(span)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class InMemorySpanExporter:
    """Bounded ring buffer of finished spans, thread-safe."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self.dropped = 0

    def export(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


class JsonLinesExporter:
    """Appends one JSON object per finished span to ``target``.

    ``target`` is a path (opened lazily, append mode) or any object
    with a ``write`` method. Writes are serialized by a lock so worker
    threads never interleave half-lines.
    """

    def __init__(self, target) -> None:
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self._handle = target
            self._path = None
        else:
            self._handle = None
            self._path = target

    def export(self, span: Span) -> None:
        line = json.dumps(
            span.to_dict(), sort_keys=True, default=str
        )
        # Lazy open happens OUTSIDE the lock: the filesystem can block
        # arbitrarily long and every exporting thread would queue
        # behind it (CC003). Double-checked publication keeps exactly
        # one handle; a loser of the race closes its extra one.
        handle = self._handle  # cc: allow=CC001 (racy fast-path peek)
        if handle is None:
            opened = open(self._path, "a", encoding="utf-8")
            stale = None
            with self._lock:
                if self._handle is None:
                    self._handle = opened
                else:
                    stale = opened
            if stale is not None:
                stale.close()
        with self._lock:
            # the write itself is the resource this lock serializes
            self._handle.write(line + "\n")  # cc: allow=CC003

    def close(self) -> None:
        stale = None
        with self._lock:
            if self._handle is not None and self._path is not None:
                stale = self._handle
                self._handle = None
        if stale is not None:
            stale.close()  # flush outside the lock (CC003)


# ----------------------------------------------------------------------
# Tree rendering
# ----------------------------------------------------------------------
def render_span_tree(
    spans: Iterable[Span],
    attributes: bool = True,
) -> str:
    """Render finished spans as an indented tree with durations.

    Spans whose parent is absent from the batch (e.g. evicted from the
    ring buffer) are treated as roots. Siblings sort by start time, so
    the tree reads in execution order even when spans finished out of
    order.
    """
    batch = [s for s in spans if s.span_id is not None]
    by_id = {span.span_id: span for span in batch}
    children: Dict[Optional[int], List[Span]] = {}
    roots: List[Span] = []
    for span in batch:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    def sort_key(span: Span):
        return (span.start or 0.0, span.span_id)

    width = max(
        (len(span.name) + _depth(span, by_id) * 3 for span in batch),
        default=0,
    )
    lines: List[str] = []

    def visit(span: Span, prefix: str, tail: str) -> None:
        label = tail + span.name
        duration = (
            f"{span.duration * 1000.0:10.2f} ms"
            if span.duration is not None else " " * 13
        )
        text = f"{label:<{width + 2}} {duration}"
        if span.status == "error":
            text += "  !error"
            if span.error:
                text += f" {span.error}"
        if attributes and span.attributes:
            rendered = " ".join(
                f"{key}={value}"
                for key, value in sorted(span.attributes.items())
            )
            text += f"  [{rendered}]"
        lines.append(text.rstrip())
        kids = sorted(children.get(span.span_id, ()), key=sort_key)
        for index, child in enumerate(kids):
            last = index == len(kids) - 1
            connector = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            visit(child, prefix + extension, prefix + connector)

    for root in sorted(roots, key=sort_key):
        visit(root, "", "")
    return "\n".join(lines)


def _depth(span: Span, by_id: Dict[int, Span]) -> int:
    depth = 0
    seen = set()
    while (
        span.parent_id is not None
        and span.parent_id in by_id
        and span.parent_id not in seen
    ):
        seen.add(span.parent_id)
        span = by_id[span.parent_id]
        depth += 1
    return depth
