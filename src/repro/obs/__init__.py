"""Observability: tracing + metrics for the whole pipeline.

One process-wide :class:`Tracer` (disabled by default — instrumented
code pays a single ``if`` until someone turns it on) and one
process-wide :class:`MetricsRegistry` (always on; counters are cheap).
Both are injectable for tests and embeddings via the ``set_*``
functions; instrumented components call ``get_*`` at use time, never
at import time, so swaps take effect immediately.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.profiler import (
    ProfilerError,
    ProfileStats,
    SamplingProfiler,
    profile_from_env,
)
from repro.obs.slo import (
    Objective,
    ObjectiveResult,
    SLOError,
    SLOReport,
    SLOSpec,
    default_slo,
    evaluate_slo,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    InMemorySpanExporter,
    JsonLinesExporter,
    Span,
    Tracer,
    render_span_tree,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemorySpanExporter",
    "JsonLinesExporter",
    "MetricError",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Objective",
    "ObjectiveResult",
    "ProfileStats",
    "ProfilerError",
    "SLOError",
    "SLOReport",
    "SLOSpec",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "default_slo",
    "evaluate_slo",
    "get_registry",
    "get_tracer",
    "profile_from_env",
    "render_span_tree",
    "set_registry",
    "set_tracer",
]

_tracer: Tracer = Tracer(enabled=False)
_registry: MetricsRegistry = MetricsRegistry()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless someone enabled it)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous
