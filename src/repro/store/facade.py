"""Mutable :class:`~repro.rdf.graph.Graph` facade over one store context.

Concurrency: single-writer
Graph-writes: the backing quad-store, via generation-stamped commits

:class:`StoreGraph` lets everything written against the ``Graph`` API —
``BatchAnnotator``, the D2R loader, tests — run unchanged on top of a
:class:`~repro.store.engine.QuadStore`. Reads answer from the store's
*current* head (plus any locally buffered ops); writes become store
commits:

* **autocommit** (default): every mutation is one committed generation,
  matching ``Graph``'s immediate-visibility semantics;
* **buffered** (``buffered=True``): mutations accumulate locally and
  :meth:`flush` commits them as one generation-stamped batch — this is
  what ``BatchAnnotator`` drives at its checkpoint watermark, so one
  annotation batch becomes one WAL record and one MVCC generation.

The buffer is guarded by the facade's own ``_lock`` (reentrant, like
``Graph``'s); the store serializes actual commits on its commit lock.
Reads are *live* (each call re-pins the head) — pin
:meth:`QuadStore.head` directly when generation-stable iteration is
required.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..rdf.graph import Graph, Triple, TriplePattern
from ..rdf.namespace import NamespaceManager
from ..rdf.terms import Term, term_from_python
from .engine import BatchOp, ContextKey, QuadStore, _as_context
from .persistence import DEFAULT_GRAPH_IRI
from .wal import OP_ADD, OP_REMOVE

__all__ = ["StoreGraph"]


def _matches(pattern: TriplePattern, triple: Triple) -> bool:
    return all(
        want is None or want == have
        for want, have in zip(pattern, triple)
    )


class StoreGraph(Graph):
    """A live, writable view of one quad-store context."""

    def __init__(
        self,
        store: QuadStore,
        context: Any = None,
        *,
        buffered: bool = False,
    ) -> None:
        # No Graph.__init__: the facade owns no indexes; ``_size`` and
        # ``_version`` are derived properties instead of counters.
        self.store = store
        self.context: ContextKey = _as_context(context)
        self.identifier = (
            self.context if self.context is not None else DEFAULT_GRAPH_IRI
        )
        self.namespaces = store.namespaces
        self.buffered = buffered
        #: last buffered op per triple (insertion-ordered, so flush
        #: preserves op order; one entry per triple keeps it small)
        self._pending: Dict[Triple, str] = {}
        self._lock = threading.RLock()

    # -- derived Graph attributes ---------------------------------------
    @property
    def _size(self) -> int:  # type: ignore[override]
        # pin the store view *inside* the lock so the view and the
        # buffer belong to the same moment with respect to this
        # facade's writers (pinning before the lock let a concurrent
        # flush land between the two reads)
        with self._lock:
            # pinning a snapshot is one atomic reference read, no IO,
            # and the store never calls back into this facade
            view = self.store.graph(self.context)  # cc: allow=CC003
            size = len(view)
            for triple, op in self._pending.items():
                visible = view._contains(*triple)
                if op == OP_ADD and not visible:
                    size += 1
                elif op == OP_REMOVE and visible:
                    size -= 1
        return size

    @property
    def _version(self):  # type: ignore[override]
        """Staleness key for cached statistics: (generation, buffer)."""
        with self._lock:
            return (self.store.generation, len(self._pending))

    # -- mutation -------------------------------------------------------
    def insert(self, triple: Iterable[Any]) -> bool:
        s, p, o = triple
        concrete = (
            self._as_node(s),
            self._as_predicate(p),
            term_from_python(o),
        )
        if not self.buffered:
            _, effective = self.store.apply(
                [(OP_ADD, concrete, self.context)]
            )
            return effective > 0
        with self._lock:
            if self._visible(concrete):
                return False
            self._push(OP_ADD, concrete)
        return True

    def add(self, triple: Iterable[Any]) -> "Graph":
        self.insert(triple)
        return self

    def add_all(self, triples: Iterable[Iterable[Any]]) -> "Graph":
        if not self.buffered:
            batch = self.store.batch().add_all(triples, self.context)
            self.store.apply(batch.ops)
            return self
        with self._lock:
            for triple in triples:
                self.insert(triple)
        return self

    def remove(self, pattern: TriplePattern) -> int:
        if not self.buffered:
            # the store matches and removes under its commit lock, so
            # no writer can slip a commit between match and removal
            # (matching here first and applying later could remove
            # triples a concurrent commit already retracted, or miss
            # ones it just added)
            return self.store.remove(pattern, self.context)
        with self._lock:
            # match and push under one lock acquisition: a concurrent
            # buffered writer cannot interleave between the two
            matches = list(self.triples(pattern))
            for triple in matches:
                self._push(OP_REMOVE, triple)
        return len(matches)

    def clear(self) -> None:
        self.remove((None, None, None))

    def _push(self, op: str, triple: Triple) -> None:
        # last op per triple wins; re-inserting keeps flush order
        # stable (the lock is reentrant: callers already hold it)
        with self._lock:
            self._pending.pop(triple, None)
            self._pending[triple] = op

    def flush(self) -> int:
        """Commit buffered ops as one generation; returns it.

        If the commit fails (disk full, closed store) the drained ops
        are restored to the buffer — merged under any ops buffered
        concurrently, which win per triple — and the error propagates,
        so nothing is silently lost and a later flush retries."""
        with self._lock:
            drained = self._pending
            self._pending = {}
        if not drained:
            return self.store.generation
        ops: List[BatchOp] = [
            (op, triple, self.context)
            for triple, op in drained.items()
        ]
        try:
            generation, _ = self.store.apply(ops)
        except BaseException:
            with self._lock:
                merged = dict(drained)
                merged.update(self._pending)
                self._pending = merged
            raise
        return generation

    @property
    def pending_ops(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- reads ----------------------------------------------------------
    def _visible(self, triple: Triple) -> bool:
        op = self._pending.get(triple)
        if op is not None:
            return op == OP_ADD
        view = self.store.graph(self.context)
        return view._contains(*triple)

    def _contains(self, s: Term, p: Term, o: Term) -> bool:
        with self._lock:
            return self._visible((s, p, o))

    def triples(
        self, pattern: TriplePattern = (None, None, None)
    ) -> Iterator[Triple]:
        with self._lock:
            # view and buffer pinned under one acquisition (see _size —
            # the pin is an atomic reference read, safe under the lock)
            view = self.store.graph(self.context)  # cc: allow=CC003
            pending = dict(self._pending) if self._pending else None
        if pending is None:
            yield from view.triples(pattern)
            return
        for triple in view.triples(pattern):
            if pending.get(triple) != OP_REMOVE:
                yield triple
        for triple, op in pending.items():
            if (
                op == OP_ADD
                and _matches(pattern, triple)
                and not view._contains(*triple)
            ):
                yield triple

    def predicate_statistics(self) -> Dict[Term, Tuple[int, int, int]]:
        with self._lock:
            buffered = bool(self._pending)
        if not buffered:
            return self.store.graph(self.context).predicate_statistics()
        gathered: Dict[Term, Tuple[int, set, set]] = {}
        for s, p, o in self.triples():
            entry = gathered.get(p)
            if entry is None:
                entry = (0, set(), set())
            count, subjects, objects = entry
            subjects.add(s)
            objects.add(o)
            gathered[p] = (count + 1, subjects, objects)
        return {
            p: (count, len(subjects), len(objects))
            for p, (count, subjects, objects) in gathered.items()
        }

    def resource_exists(self, subject: Term) -> bool:
        for _ in self.triples((subject, None, None)):
            return True
        return False

    def copy(self) -> "Graph":
        g = Graph(self.identifier, self.namespaces)
        g.add_all(self.triples())
        return g

    def __repr__(self) -> str:
        mode = "buffered" if self.buffered else "autocommit"
        return (
            f"StoreGraph({str(self.identifier)!r}, store="
            f"{self.store.name!r}, mode={mode}, "
            f"pending={self.pending_ops})"
        )
