"""Pluggable MVCC quad-store: WAL + snapshots + generation-stamped reads.

Concurrency: thread-safe
Graph-writes: none

The storage engine extracted out of :class:`repro.rdf.graph.Graph`
(ROADMAP: "durable, concurrent quad-store backend"):

* :class:`QuadStore` — the engine: immutable published states,
  single-writer commits, per-context base+overlay segments, in-memory
  compaction, incremental planner statistics.
* :class:`SnapshotGraph` / :class:`SnapshotDataset` — generation-pinned
  read views the SPARQL evaluator and planner run against.
* :class:`StoreGraph` — a mutable ``Graph``-compatible facade so
  existing writers (``BatchAnnotator``, D2R loading) run unchanged;
  ``buffered=True`` turns its :meth:`~StoreGraph.flush` into one
  generation-stamped batch per checkpoint watermark.
* :class:`WriteAheadLog` / snapshot files — durability; opening a store
  directory *is* crash recovery (newest snapshot + WAL tail, torn tail
  truncated).

The ``repro store`` CLI (``info``/``compact``/``recover``/``load``/
``dump``) administers store directories; ``repro_store_*`` metrics in
:mod:`repro.obs` expose generations, WAL traffic and compactions.
"""

from .engine import (
    QuadStore,
    SnapshotDataset,
    SnapshotGraph,
    StoreError,
    WriteBatch,
    is_quad_store,
)
from .facade import StoreGraph
from .persistence import RecoveryReport, snapshot_files
from .wal import WalScan, WriteAheadLog, scan_wal

__all__ = [
    "QuadStore",
    "RecoveryReport",
    "SnapshotDataset",
    "SnapshotGraph",
    "StoreError",
    "StoreGraph",
    "WalScan",
    "WriteAheadLog",
    "WriteBatch",
    "is_quad_store",
    "scan_wal",
    "snapshot_files",
]
