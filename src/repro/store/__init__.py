"""Pluggable MVCC quad-store: WAL + snapshots + generation-stamped reads.

Concurrency: thread-safe
Graph-writes: none

The storage engine extracted out of :class:`repro.rdf.graph.Graph`
(ROADMAP: "durable, concurrent quad-store backend"):

* :class:`QuadStore` — the engine: immutable published states,
  single-writer commits, per-context base+overlay segments, in-memory
  compaction, incremental planner statistics.
* :class:`SnapshotGraph` / :class:`SnapshotDataset` — generation-pinned
  read views the SPARQL evaluator and planner run against.
* :class:`StoreGraph` — a mutable ``Graph``-compatible facade so
  existing writers (``BatchAnnotator``, D2R loading) run unchanged;
  ``buffered=True`` turns its :meth:`~StoreGraph.flush` into one
  generation-stamped batch per checkpoint watermark.
* :class:`WriteAheadLog` / snapshot files — durability; opening a store
  directory *is* crash recovery (newest snapshot + WAL tail, torn tail
  truncated).
* :class:`CheckpointPolicy` — opt-in automatic checkpointing: WAL-byte
  and op-count watermarks evaluated after each commit trigger a
  background snapshot + WAL reset, bounding restart replay without
  explicit ``compact()`` calls (the default stays explicit-only).
* :class:`GroupCommitQueue` — opt-in group commit
  (``QuadStore(..., group_commit=True)``): concurrent writers coalesce
  into one WAL append / fsync / published generation per group, each
  submitter still observing its serial-equivalent result.

The ``repro store`` CLI (``info``/``compact``/``recover``/``load``/
``dump``, plus the ``--checkpoint-ops``/``--checkpoint-wal-bytes``/
``--group-commit`` policy flags) administers store directories;
``repro_store_*`` metrics in :mod:`repro.obs` expose generations, WAL
traffic, compactions, automatic checkpoints and group-commit batching.
"""

from .engine import (
    CheckpointPolicy,
    GroupCommitQueue,
    QuadStore,
    SnapshotDataset,
    SnapshotGraph,
    StoreError,
    WriteBatch,
    is_quad_store,
)
from .facade import StoreGraph
from .persistence import RecoveryReport, snapshot_files
from .wal import WalScan, WriteAheadLog, scan_wal

__all__ = [
    "CheckpointPolicy",
    "GroupCommitQueue",
    "QuadStore",
    "RecoveryReport",
    "SnapshotDataset",
    "SnapshotGraph",
    "StoreError",
    "StoreGraph",
    "WalScan",
    "WriteAheadLog",
    "WriteBatch",
    "is_quad_store",
    "scan_wal",
    "snapshot_files",
]
