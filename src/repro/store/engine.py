"""Generation-stamped MVCC quad-store engine.

Concurrency: thread-safe
Graph-writes: the store's private base and overlay graphs only

:class:`QuadStore` is the storage engine extracted out of
:class:`repro.rdf.graph.Graph`. It holds quads (triples grouped into an
optional named context) in an *immutable published state*: a generation
number plus, per context, a frozen base graph and a small frozen
add/remove overlay. Readers pin the current state with one attribute
read and keep it for as long as they like — a
:class:`SnapshotGraph`/:class:`SnapshotDataset` never changes under a
reader, so query evaluation cannot observe an in-flight write batch and
the mutation-during-iteration hazard the store sanitizer polices at
runtime is retired by construction.

Writers serialize on one commit lock. A commit computes the *effective*
ops (no-ops are dropped), appends one WAL record
(:mod:`repro.store.wal`), derives the next state by copying only the
touched overlays (``O(overlay)``, not ``O(store)``), maintains
:class:`repro.analysis.stats.GraphStatistics` incrementally from the
delta, and publishes the new state with a single atomic reference swap.
Overlays are folded into a fresh base once they exceed
``overlay_limit`` so reads stay index-fast.

Durability: WAL + periodic :meth:`QuadStore.checkpoint` snapshot files
(:mod:`repro.store.persistence`); restart replays snapshot + WAL tail.
An in-memory store (``directory=None``) skips all file IO.

Throughput machinery around that write path:

* :class:`CheckpointPolicy` — WAL-byte / op-count watermarks evaluated
  after every commit; when one trips, a background checkpointer thread
  runs :meth:`QuadStore.checkpoint` off the commit hot path so WAL
  replay time stays bounded without anyone calling ``repro store
  compact``. The default policy is *explicit-only* (no watermarks,
  no thread) — exactly the historical behavior.
* :class:`GroupCommitQueue` (``QuadStore(group_commit=True)``) — sits
  in front of the commit lock and coalesces concurrently submitted
  batches into **one** WAL append, one fsync and one published
  generation; each submitter still gets its own effective-op count
  back, so N small autocommit writers cost ~1 disk flush per window
  instead of N.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..obs import get_registry, get_tracer
from ..rdf.graph import (
    Dataset,
    FrozenGraph,
    FrozenGraphError,
    Graph,
    Triple,
    TriplePattern,
    freeze,
)
from ..rdf.namespace import NamespaceManager
from ..rdf.nquads import Quad, serialize_quad
from ..rdf.terms import Term, URIRef, term_from_python
from .persistence import (
    DEFAULT_GRAPH_IRI,
    WAL_FILENAME,
    RecoveryReport,
    load_snapshot,
    prune_snapshots,
    snapshot_files,
    write_snapshot,
)
from .wal import OP_ADD, OP_REMOVE, WriteAheadLog, scan_wal, truncate_wal

__all__ = [
    "CheckpointPolicy",
    "GroupCommitQueue",
    "QuadStore",
    "SnapshotDataset",
    "SnapshotGraph",
    "StoreError",
    "WriteBatch",
]


class StoreError(ValueError):
    """A store operation that cannot be performed."""


class _Union:
    """Sentinel scope meaning "all contexts merged"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<union>"


_UNION = _Union()

#: A context key: ``None`` is the default context.
ContextKey = Optional[URIRef]

#: One batch operation: ``(op, triple, context key)``.
BatchOp = Tuple[str, Triple, ContextKey]


def _as_context(value: Any) -> ContextKey:
    if value is None:
        return None
    if isinstance(value, URIRef):
        return value
    if isinstance(value, Graph):
        return URIRef(str(value.identifier))
    if isinstance(value, str):
        return URIRef(value)
    raise TypeError(f"invalid context: {value!r}")


class _ContextState:
    """Immutable per-context segment: frozen base + frozen overlay.

    Invariants: ``adds`` is disjoint from ``base``; ``removes`` is a
    subset of ``base``. A triple is visible iff it is in ``adds`` or in
    ``base`` without being in ``removes``. ``size`` is the visible
    count, maintained exactly by the engine.
    """

    __slots__ = ("base", "adds", "removes", "size")

    def __init__(
        self,
        base: Graph,
        adds: Graph,
        removes: frozenset,
        size: int,
    ) -> None:
        self.base = base
        self.adds = adds
        self.removes = removes
        self.size = size

    @property
    def overlay(self) -> int:
        return len(self.adds) + len(self.removes)


class _State:
    """One published store state; everything but ``stats`` is fixed.

    ``stats`` starts ``None`` and is filled in at most once (lazily on
    first use, or eagerly by incremental maintenance at commit) — an
    idempotent publication, so no lock guards it.
    """

    __slots__ = ("generation", "contexts", "union_size", "stats")

    def __init__(
        self,
        generation: int,
        contexts: Dict[ContextKey, _ContextState],
        union_size: int,
        stats: Any = None,
    ) -> None:
        self.generation = generation
        self.contexts = contexts
        self.union_size = union_size
        self.stats = stats


def _context_visible(cs: _ContextState, triple: Triple) -> bool:
    if triple in cs.adds:
        return True
    return triple in cs.base and triple not in cs.removes


def _context_triples(
    cs: _ContextState, pattern: TriplePattern
) -> Iterator[Triple]:
    if cs.removes:
        for triple in cs.base.triples(pattern):
            if triple not in cs.removes:
                yield triple
    else:
        yield from cs.base.triples(pattern)
    yield from cs.adds.triples(pattern)


class SnapshotGraph(FrozenGraph):
    """A read-only graph view pinned to one store generation.

    Shares :class:`~repro.rdf.graph.Graph`'s read API (``triples``,
    ``subjects``, ``value``, ``len`` …) but answers everything from the
    pinned :class:`_State` — concurrent commits publish *new* states and
    never touch this one. Mutation raises
    :class:`~repro.rdf.graph.FrozenGraphError` (inherited).

    Deliberately has no ``_version`` attribute and no lock: staleness
    for cached statistics is keyed on :attr:`generation` (see
    ``repro.analysis.stats``), and an immutable view needs no guard.
    """

    def __init__(
        self,
        store: "QuadStore",
        state: _State,
        scope: Union[_Union, ContextKey],
    ) -> None:
        # No Graph.__init__: a snapshot owns no indexes and must not
        # carry the mutable-graph machinery (_spo/_lock/_version).
        self._store = store
        self._state = state
        self._scope = scope
        self.namespaces = store.namespaces
        self.generation = state.generation
        if scope is _UNION:
            self.identifier = URIRef(
                f"urn:store:{store.name}:union:g{state.generation}"
            )
            self._size = state.union_size
        else:
            self.identifier = (
                scope if scope is not None else DEFAULT_GRAPH_IRI
            )
            cs = state.contexts.get(scope)
            self._size = cs.size if cs is not None else 0

    # -- pinned reads ---------------------------------------------------
    def _scope_contexts(self) -> List[_ContextState]:
        if self._scope is _UNION:
            return list(self._state.contexts.values())
        cs = self._state.contexts.get(self._scope)
        return [cs] if cs is not None else []

    def triples(
        self, pattern: TriplePattern = (None, None, None)
    ) -> Iterator[Triple]:
        contexts = self._scope_contexts()
        if len(contexts) == 1:
            yield from _context_triples(contexts[0], pattern)
            return
        seen: Set[Triple] = set()
        for cs in contexts:
            for triple in _context_triples(cs, pattern):
                if triple not in seen:
                    seen.add(triple)
                    yield triple

    def _contains(self, s: Term, p: Term, o: Term) -> bool:
        triple = (s, p, o)
        return any(
            _context_visible(cs, triple)
            for cs in self._scope_contexts()
        )

    def resource_exists(self, subject: Term) -> bool:
        for _ in self.triples((subject, None, None)):
            return True
        return False

    def predicate_statistics(self) -> Dict[Term, Tuple[int, int, int]]:
        contexts = self._scope_contexts()
        if len(contexts) == 1 and contexts[0].overlay == 0:
            # post-compaction fast path: one frozen base, index-backed
            return contexts[0].base.predicate_statistics()
        gathered: Dict[Term, Tuple[int, Set[Term], Set[Term]]] = {}
        for s, p, o in self.triples():
            entry = gathered.get(p)
            if entry is None:
                entry = (0, set(), set())
            count, subjects, objects = entry
            subjects.add(s)
            objects.add(o)
            gathered[p] = (count + 1, subjects, objects)
        return {
            p: (count, len(subjects), len(objects))
            for p, (count, subjects, objects) in gathered.items()
        }

    # -- statistics cache, shared across snapshots of one state --------
    @property
    def _stats_cache(self):
        if self._scope is _UNION:
            return self._state.stats
        return self.__dict__.get("_local_stats_cache")

    @_stats_cache.setter
    def _stats_cache(self, stats: Any) -> None:
        if self._scope is _UNION:
            # idempotent publication: every writer derived this from the
            # same immutable state, so last-write-wins is safe
            self._state.stats = stats
        else:
            self.__dict__["_local_stats_cache"] = stats

    def __repr__(self) -> str:
        return (
            f"SnapshotGraph({str(self.identifier)!r}, "
            f"generation={self.generation}, triples={self._size})"
        )


class SnapshotDataset(Dataset):
    """A read-only :class:`~repro.rdf.graph.Dataset` view pinned to one
    store generation — the evaluator's ``GRAPH`` patterns and
    ``union_graph()`` all answer from the same state."""

    def __init__(self, store: "QuadStore", state: _State) -> None:
        # No Dataset.__init__: members are pinned snapshot views.
        self._store = store
        self._state = state
        self.generation = state.generation
        self.default = SnapshotGraph(store, state, None)
        self._named = {
            key: SnapshotGraph(store, state, key)
            for key in state.contexts
            if key is not None
        }

    def graph(self, identifier: Any) -> Graph:
        key = _as_context(identifier)
        existing = self._named.get(key)
        if existing is not None:
            return existing
        # read-only: unknown names resolve to an empty pinned view
        # instead of creating a context in the store
        return SnapshotGraph(self._store, self._state, key)

    def remove_graph(self, identifier: Any) -> bool:
        raise FrozenGraphError(
            "remove_graph() on a generation-pinned dataset view; "
            "write through the store instead"
        )

    def union_graph(self) -> Graph:
        return SnapshotGraph(self._store, self._state, _UNION)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SnapshotDataset(store={self._store.name!r}, "
            f"generation={self.generation})"
        )


class WriteBatch:
    """An ordered list of quad ops applied atomically by ``commit``.

    Terms are coerced on entry (same rules as ``Graph.add``); ops keep
    their order, so add-then-remove of the same triple nets out."""

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: List[BatchOp] = []

    def _coerce(self, triple: Iterable[Any]) -> Triple:
        s, p, o = triple
        return (
            Graph._as_node(s),
            Graph._as_predicate(p),
            term_from_python(o),
        )

    def insert(
        self, triple: Iterable[Any], context: Any = None
    ) -> "WriteBatch":
        self.ops.append(
            (OP_ADD, self._coerce(triple), _as_context(context))
        )
        return self

    def remove(
        self, triple: Iterable[Any], context: Any = None
    ) -> "WriteBatch":
        self.ops.append(
            (OP_REMOVE, self._coerce(triple), _as_context(context))
        )
        return self

    def add_all(
        self, triples: Iterable[Iterable[Any]], context: Any = None
    ) -> "WriteBatch":
        key = _as_context(context)
        for triple in triples:
            self.ops.append((OP_ADD, self._coerce(triple), key))
        return self

    def __len__(self) -> int:
        return len(self.ops)


class _Working:
    """Mutable scratch copy of one context during a commit."""

    __slots__ = ("base", "adds", "removes", "size")

    def __init__(self, cs: Optional[_ContextState], key: ContextKey,
                 namespaces: NamespaceManager) -> None:
        if cs is None:
            identifier = key if key is not None else DEFAULT_GRAPH_IRI
            self.base: Graph = freeze(Graph(identifier, namespaces))
            self.adds = Graph(identifier, namespaces)
            self.removes: Set[Triple] = set()
            self.size = 0
        else:
            self.base = cs.base
            self.adds = cs.adds.copy()
            self.removes = set(cs.removes)
            self.size = cs.size

    def visible(self, triple: Triple) -> bool:
        if triple in self.adds:
            return True
        return triple in self.base and triple not in self.removes


class CheckpointPolicy:
    """When the store checkpoints on its own.

    Two independent watermarks, evaluated after every commit (both
    reads happen under the commit lock, so they are exact):

    * ``wal_bytes`` — checkpoint once the WAL tail (what a restart
      would replay) exceeds this many bytes;
    * ``ops`` — checkpoint once this many effective ops were committed
      since the last checkpoint.

    Leaving both unset (the default) is *explicit-only* mode: nothing
    checkpoints automatically and no background thread is started —
    the store behaves exactly as before this policy existed.
    """

    __slots__ = ("wal_bytes", "ops")

    def __init__(
        self,
        *,
        wal_bytes: Optional[int] = None,
        ops: Optional[int] = None,
    ) -> None:
        for name, value in (("wal_bytes", wal_bytes), ("ops", ops)):
            if value is not None and value <= 0:
                raise ValueError(
                    f"CheckpointPolicy {name} watermark must be "
                    f"positive, got {value!r}"
                )
        self.wal_bytes = wal_bytes
        self.ops = ops

    @property
    def explicit_only(self) -> bool:
        return self.wal_bytes is None and self.ops is None

    def due(self, wal_tail_bytes: int, ops_since: int) -> bool:
        """Does the current WAL tail / op backlog trip a watermark?"""
        if self.wal_bytes is not None and wal_tail_bytes >= self.wal_bytes:
            return True
        return self.ops is not None and ops_since >= self.ops

    def as_dict(self) -> dict:
        return {
            "mode": "explicit-only" if self.explicit_only else "auto",
            "wal_bytes": self.wal_bytes,
            "ops": self.ops,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.explicit_only:
            return "CheckpointPolicy(explicit-only)"
        return (
            f"CheckpointPolicy(wal_bytes={self.wal_bytes}, "
            f"ops={self.ops})"
        )


class _Checkpointer:
    """Background thread running :meth:`QuadStore.checkpoint` when a
    :class:`CheckpointPolicy` watermark trips.

    Commits only :meth:`request` a checkpoint (one condition notify —
    the snapshot IO happens on this thread, off the commit hot path).
    Requests are idempotent: a request arriving while a checkpoint is
    already due or running coalesces into the next run. ``close``
    drains a pending request (one final checkpoint) and joins the
    thread. All flags are guarded by the condition's lock; the
    checkpoint itself runs with no checkpointer lock held.
    """

    def __init__(self, store: "QuadStore") -> None:
        self._store = store
        self._cond = threading.Condition()
        self._due = False
        self._running = False
        self._closing = False
        #: completed / failed runs (guarded by the condition's lock).
        self._runs = 0
        self._failures = 0
        self._last_error: Optional[str] = None
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-store-checkpointer-{store.name}",
            daemon=True,
        )
        self._thread.start()

    def request(self) -> None:
        """Ask for a checkpoint soon; cheap and idempotent."""
        with self._cond:
            if self._closing:
                return
            self._due = True
            self._cond.notify_all()

    def wait_until_idle(self, timeout: float = 10.0) -> bool:
        """Block until no checkpoint is due or running (tests/CLI)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._due or self._running:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def close(self) -> None:
        """Drain any pending request, then stop and join the thread."""
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        self._thread.join()

    def stats(self) -> dict:
        with self._cond:
            return {
                "runs": self._runs,
                "failures": self._failures,
                "last_error": self._last_error,
                "pending": self._due or self._running,
            }

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._due and not self._closing:
                    self._cond.wait()
                if not self._due:  # closing with nothing left to drain
                    return
                self._due = False
                self._running = True
            error: Optional[str] = None
            run_began = time.perf_counter()
            with get_tracer().span(
                "store.auto_checkpoint", {"store": self._store.name}
            ) as span:
                try:
                    path = self._store.checkpoint()
                    # superseded snapshots would otherwise accumulate
                    # one per watermark trip; keep only the one just
                    # written
                    written = int(path.stem.split("-")[1])
                    prune_snapshots(self._store.directory, written)
                except Exception as exc:
                    # disk full / closed WAL: record, stay alive — the
                    # next commit past the watermark re-requests a
                    # checkpoint
                    error = f"{type(exc).__name__}: {exc}"
                    span.set_attribute("error", error)
                span.set_attribute(
                    "outcome", "error" if error else "ok"
                )
            _observe_auto_checkpoint(
                self._store,
                failed=error is not None,
                seconds=time.perf_counter() - run_began,
            )
            with self._cond:
                self._running = False
                if error is None:
                    self._runs += 1
                else:
                    self._failures += 1
                    self._last_error = error
                self._cond.notify_all()


class _Submission:
    """One batch handed to the group-commit queue, and its result."""

    __slots__ = (
        "ops", "done", "generation", "effective", "error",
        "flushed", "lead",
    )

    def __init__(self, ops: List[BatchOp]) -> None:
        self.ops = ops
        self.done = False
        self.generation = 0
        self.effective = 0
        self.error: Optional[BaseException] = None
        #: signalled when the batch was flushed — or when this
        #: submission is promoted to leader of the next group.
        self.flushed = threading.Event()
        self.lead = False

    def resolve(
        self,
        generation: int,
        effective: int,
        error: Optional[BaseException],
    ) -> None:
        self.generation = generation
        self.effective = effective
        self.error = error
        self.done = True
        self.flushed.set()


class GroupCommitQueue:
    """Coalesces concurrently submitted batches into one commit.

    Leader/follower protocol: a submitter enqueues its ops and, if no
    leader is active, becomes the leader; otherwise it waits on its
    submission's event without ever touching the commit lock. The
    leader takes the store's commit lock, drains every submission
    enqueued so far and commits them as **one** WAL append, one fsync
    (``sync=True`` stores) and one published generation;
    per-submission effective-op counts come back from the engine's
    segment accounting, so each submitter observes exactly the result
    serial commits would have given it. On finishing, the leader
    promotes the head of whatever queued meanwhile to leader of the
    next group (waking it through the same event).

    Keeping followers off the commit lock is what makes the groups
    large: if followers queued on the lock instead, every flush would
    wake a convoy of already-committed waiters whose serialized
    acquire/release cycles let only a couple of fresh submissions
    accumulate per group. With event-parked followers the batching
    window is the leader's full flush, so a group grows toward *all*
    concurrent writers.

    A failed group commit (WAL append error) publishes nothing: every
    submission in the group gets the error and re-raises it in its own
    thread. Stats and the queue are guarded by the queue's own mutex,
    which is only ever taken *after* the commit lock (never the
    reverse), so the lock order stays acyclic.
    """

    def __init__(self, store: "QuadStore") -> None:
        self._store = store
        self._mutex = threading.Lock()
        self._pending: List[_Submission] = []
        self._busy = False  # a leader is flushing (guarded by mutex)
        #: lifetime stats (guarded by ``_mutex``).
        self._groups = 0
        self._submissions = 0
        self._batched = 0
        self._largest_group = 0

    def submit(self, ops: Sequence[BatchOp]) -> Tuple[int, int]:
        """Commit ``ops`` through the queue; returns
        ``(generation, effective op count)`` like ``QuadStore.apply``.
        """
        sub = _Submission(list(ops))
        began = time.perf_counter()
        with self._mutex:
            self._pending.append(sub)
            self._submissions += 1
            if not self._busy:
                self._busy = True
                sub.lead = True
        if not sub.lead:
            sub.flushed.wait()  # a leader flushes or promotes us
        # queue wait: park time for a resolved follower, promotion
        # delay for an heir, ~0 for an uncontended leader
        waited = time.perf_counter() - began
        if sub.lead:
            try:
                with self._store._commit_lock:
                    with self._mutex:
                        drained = self._pending
                        self._pending = []
                    self._commit_group(drained)
            finally:
                with self._mutex:
                    if self._pending:
                        heir = self._pending[0]
                        heir.lead = True
                        heir.flushed.set()
                    else:
                        self._busy = False
        elapsed = time.perf_counter() - began
        role = "leader" if sub.lead else "follower"
        _observe_group_flush(self._store, elapsed, role, waited)
        # parents to the *submitting* thread's active span, so a
        # follower's commit shows up in its own request trace even
        # though another thread did the flush
        get_tracer().record_span(
            "store.group_commit",
            elapsed,
            attributes={
                "store": self._store.name,
                "role": role,
                "generation": sub.generation,
                "error": sub.error is not None,
            },
        )
        if sub.error is not None:
            raise sub.error
        return sub.generation, sub.effective

    def _commit_group(self, group: List[_Submission]) -> None:
        # commit lock held; ``group`` always contains the leader's own
        # submission (promotion happens before the next drain)
        try:
            generation, counts = self._store._apply_segments_locked(
                [sub.ops for sub in group]
            )
        except BaseException as exc:
            for sub in group:
                sub.resolve(0, 0, exc)
        else:
            for sub, effective in zip(group, counts):
                sub.resolve(generation, effective, None)
        with self._mutex:
            self._groups += 1
            self._batched += len(group) - 1
            if len(group) > self._largest_group:
                self._largest_group = len(group)
        _observe_group_commit(self._store, len(group))

    def stats(self) -> dict:
        with self._mutex:
            return {
                "submissions": self._submissions,
                "groups": self._groups,
                "batched": self._batched,
                "largest_group": self._largest_group,
            }


class QuadStore:
    """The pluggable MVCC storage engine (see module docstring).

    Parameters
    ----------
    directory:
        Where the WAL and snapshot files live; ``None`` keeps the store
        purely in memory (no durability, same MVCC semantics). Opening
        a directory *is* recovery: newest readable snapshot + WAL tail,
        with any torn tail truncated away (see :attr:`recovery`).
    sync:
        ``fsync`` every WAL record before acknowledging the commit.
    overlay_limit:
        Fold a context's overlay into a fresh base once it exceeds this
        many ops (in-memory compaction; no file IO).
    checkpoint_policy:
        When to checkpoint automatically (see
        :class:`CheckpointPolicy`). The default is explicit-only;
        a policy with watermarks requires a durable store and starts
        one background checkpointer thread.
    group_commit:
        Route :meth:`apply` through a :class:`GroupCommitQueue` so
        concurrent small writers share WAL appends and fsyncs.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        name: Optional[str] = None,
        sync: bool = False,
        overlay_limit: int = 1024,
        namespaces: Optional[NamespaceManager] = None,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
        group_commit: bool = False,
    ) -> None:
        self.namespaces = namespaces or NamespaceManager()
        self.directory = (
            Path(directory) if directory is not None else None
        )
        self.name = name or (
            self.directory.name if self.directory is not None
            else "ephemeral"
        )
        self.overlay_limit = overlay_limit
        self.checkpoint_policy = checkpoint_policy or CheckpointPolicy()
        if (
            not self.checkpoint_policy.explicit_only
            and self.directory is None
        ):
            raise StoreError(
                "checkpoint-policy watermarks require a durable store "
                "(directory=...); an in-memory store has no WAL to bound"
            )
        self._commit_lock = threading.Lock()
        #: effective ops committed since the last checkpoint (guarded
        #: by the commit lock; reset by ``checkpoint``).
        self._ops_since_checkpoint = 0
        self._wal: Optional[WriteAheadLog] = None
        self.recovery: Optional[RecoveryReport] = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._state = self._bootstrap()
            self._wal = WriteAheadLog(
                self.directory / WAL_FILENAME, sync=sync
            )
            _observe_recovery(self)
        else:
            self._state = _State(0, {}, 0, None)
        self._group = GroupCommitQueue(self) if group_commit else None
        self._checkpointer = (
            _Checkpointer(self)
            if not self.checkpoint_policy.explicit_only
            else None
        )
        _observe_generation(self)

    # -- recovery -------------------------------------------------------
    def _bootstrap(self) -> _State:
        """Load newest readable snapshot, replay the WAL tail, repair."""
        report = RecoveryReport(directory=str(self.directory))
        bases: Dict[ContextKey, Graph] = {}
        for generation, path in reversed(snapshot_files(self.directory)):
            try:
                bases, count = load_snapshot(path, self.namespaces)
            except (ValueError, OSError) as exc:
                report.snapshot_errors.append(f"{path.name}: {exc}")
                continue
            report.snapshot_path = str(path)
            report.snapshot_generation = generation
            report.snapshot_quads = count
            break
        wal_path = self.directory / WAL_FILENAME
        scan = scan_wal(wal_path)
        generation = report.snapshot_generation
        for batch in scan.batches:
            if batch.generation <= report.snapshot_generation:
                continue  # already folded into the snapshot
            self._replay_batch(bases, batch.ops)
            report.ops_replayed += len(batch.ops)
            report.batches_replayed += 1
            generation = batch.generation
        if scan.torn_bytes:
            report.torn_bytes = scan.torn_bytes
            report.torn_reason = scan.torn_reason
            truncate_wal(wal_path, scan.valid_bytes)
        report.generation = generation
        self.recovery = report
        return _publish_bases(bases, generation)

    def _replay_batch(
        self, bases: Dict[ContextKey, Graph], ops: Sequence[Tuple[str, Quad]]
    ) -> None:
        for op, (s, p, o, key) in ops:
            graph = bases.get(key)
            if graph is None:
                identifier = key if key is not None else DEFAULT_GRAPH_IRI
                graph = Graph(identifier, self.namespaces)
                bases[key] = graph
            if op == OP_ADD:
                graph.insert((s, p, o))
            else:
                graph.remove((s, p, o))

    # -- pinned read views ----------------------------------------------
    @property
    def generation(self) -> int:
        # single atomic reference read — the MVCC publication point;
        # commits swap self._state, they never mutate a published state
        return self._state.generation  # cc: allow=CC001

    def head(self) -> SnapshotGraph:
        """The current union view, pinned: later commits never affect it."""
        return SnapshotGraph(self, self._state, _UNION)  # cc: allow=CC001

    def graph(self, context: Any = None) -> SnapshotGraph:
        """A pinned view of one context (``None`` = default context)."""
        state = self._state  # cc: allow=CC001 (atomic reference read)
        return SnapshotGraph(self, state, _as_context(context))

    def dataset_snapshot(self) -> SnapshotDataset:
        """A pinned Dataset view (default + named graphs + union)."""
        return SnapshotDataset(self, self._state)  # cc: allow=CC001

    def contexts(self) -> List[ContextKey]:
        return sorted(
            self._state.contexts,  # cc: allow=CC001
            key=lambda key: "" if key is None else str(key),
        )

    def quads(self) -> Iterator[Quad]:
        """Every quad of the pinned current state, context by context."""
        state = self._state  # cc: allow=CC001 (atomic reference read)
        for key in sorted(
            state.contexts, key=lambda k: "" if k is None else str(k)
        ):
            cs = state.contexts[key]
            for s, p, o in _context_triples(cs, (None, None, None)):
                yield (s, p, o, key)

    def to_nquads(self) -> str:
        """Canonical N-Quads text of the current state (sorted lines).

        Byte-identical for equal contents — the recovery tests compare
        this against the pre-crash dump."""
        lines = sorted(serialize_quad(quad) for quad in self.quads())
        return "\n".join(lines) + ("\n" if lines else "")

    @property
    def size(self) -> int:
        """Total quads across contexts (union view may be smaller)."""
        state = self._state  # cc: allow=CC001 (atomic reference read)
        return sum(cs.size for cs in state.contexts.values())

    # -- writes ---------------------------------------------------------
    def batch(self) -> WriteBatch:
        return WriteBatch()

    def commit(self, batch: Union[WriteBatch, Iterable[BatchOp]]) -> int:
        """Apply a batch atomically; returns the resulting generation.

        A batch with no effect (all ops already satisfied) does not
        bump the generation and writes nothing to the WAL."""
        generation, _ = self.apply(
            batch.ops if isinstance(batch, WriteBatch) else list(batch)
        )
        return generation

    def apply(self, ops: Sequence[BatchOp]) -> Tuple[int, int]:
        """Like :meth:`commit` but also returns the effective op count."""
        if not ops:
            return self._state.generation, 0  # cc: allow=CC001
        if self._group is not None:
            return self._group.submit(ops)
        with self._commit_lock:
            return self._apply_locked(ops)

    def insert(self, triple: Iterable[Any], context: Any = None) -> bool:
        """Add one quad; True when it was not already visible there."""
        batch = WriteBatch().insert(triple, context)
        _, effective = self.apply(batch.ops)
        return effective > 0

    def remove(
        self, pattern: TriplePattern, context: Any = None
    ) -> int:
        """Remove triples matching ``pattern`` in one context."""
        key = _as_context(context)
        with self._commit_lock:
            view = SnapshotGraph(self, self._state, key)
            matches = list(view.triples(pattern))
            if not matches:
                return 0
            ops: List[BatchOp] = [
                (OP_REMOVE, triple, key) for triple in matches
            ]
            self._apply_locked(ops)
        return len(matches)

    def _apply_locked(self, ops: Sequence[BatchOp]) -> Tuple[int, int]:
        # callers hold self._commit_lock (the analyzer cannot see the
        # cross-function acquire)
        generation, counts = self._apply_segments_locked([ops])
        return generation, counts[0]

    def _apply_segments_locked(
        self, segments: Sequence[Sequence[BatchOp]]
    ) -> Tuple[int, List[int]]:
        """Commit several op lists as **one** generation (lock held).

        One WAL append, one fsync, one state publication for the whole
        group; returns the generation plus the effective op count of
        each segment — what that segment would have reported had it
        committed serially in this order."""
        if self.directory is not None and self._wal is None:
            # a closed durable store must refuse writes: they would be
            # acknowledged in memory but never reach the WAL
            raise StoreError(
                f"store {self.name!r} is closed; commit refused"
            )
        state = self._state  # cc: allow=CC001
        outcome = self._advance(state, segments, state.generation + 1)
        if outcome is None:
            return state.generation, [0] * len(segments)
        (new_state, effective, seg_counts,
         union_added, union_removed, folded) = outcome
        wal_bytes = 0
        wal_seconds = 0.0
        fsync_seconds = 0.0
        if self._wal is not None:
            wal_began = time.perf_counter()
            wal_bytes = self._wal.append(new_state.generation, effective)
            wal_seconds = time.perf_counter() - wal_began
            fsync_seconds = self._wal.last_fsync_seconds
        _maintain_stats(state, new_state, union_added, union_removed)
        self._state = new_state  # cc: allow=CC001 (commit lock held)
        self._ops_since_checkpoint += len(effective)  # cc: allow=CC001
        if self._checkpointer is not None and self.checkpoint_policy.due(
            self._wal.tail_bytes if self._wal is not None else 0,
            self._ops_since_checkpoint,  # cc: allow=CC001 (lock held)
        ):
            # one condition notify; the snapshot IO runs on the
            # checkpointer thread after this commit releases the lock
            self._checkpointer.request()
        _observe_commit(
            self, len(effective), wal_bytes, folded,
            wal_seconds, fsync_seconds,
        )
        return new_state.generation, seg_counts

    def _advance(
        self,
        state: _State,
        segments: Sequence[Sequence[BatchOp]],
        generation: int,
    ) -> Optional[
        Tuple[_State, List[Tuple[str, Quad]], List[int],
              List[Triple], List[Triple], int]
    ]:
        """Pure derivation of the next state; ``None`` when no-op."""
        touched: Dict[ContextKey, _Working] = {}

        def working(key: ContextKey) -> _Working:
            scratch = touched.get(key)
            if scratch is None:
                scratch = _Working(
                    state.contexts.get(key), key, self.namespaces
                )
                touched[key] = scratch
            return scratch

        def ctx_visible(key: ContextKey, triple: Triple) -> bool:
            scratch = touched.get(key)
            if scratch is not None:
                return scratch.visible(triple)
            cs = state.contexts.get(key)
            return cs is not None and _context_visible(cs, triple)

        def union_visible(triple: Triple) -> bool:
            keys = set(state.contexts)
            keys.update(touched)
            return any(ctx_visible(key, triple) for key in keys)

        effective: List[Tuple[str, Quad]] = []
        seg_counts: List[int] = []
        union_added: List[Triple] = []
        union_removed: List[Triple] = []
        union_delta = 0
        for ops in segments:
            seg_start = len(effective)
            for op, triple, key in ops:
                if op == OP_ADD:
                    if ctx_visible(key, triple):
                        continue
                    seen_before = union_visible(triple)
                    scratch = working(key)
                    if triple in scratch.removes:
                        scratch.removes.discard(triple)
                    else:
                        scratch.adds.insert(triple)
                    scratch.size += 1
                    effective.append((op, triple + (key,)))
                    if not seen_before:
                        union_added.append(triple)
                        union_delta += 1
                elif op == OP_REMOVE:
                    if not ctx_visible(key, triple):
                        continue
                    scratch = working(key)
                    if triple in scratch.adds:
                        scratch.adds.remove(triple)
                    else:
                        scratch.removes.add(triple)
                    scratch.size -= 1
                    effective.append((op, triple + (key,)))
                    if not union_visible(triple):
                        union_removed.append(triple)
                        union_delta -= 1
                else:  # pragma: no cover - WriteBatch only emits +/-
                    raise StoreError(f"unknown op {op!r}")
            seg_counts.append(len(effective) - seg_start)
        if not effective:
            return None

        contexts = dict(state.contexts)
        folded = 0
        for key, scratch in touched.items():
            if scratch.size <= 0:
                contexts.pop(key, None)
                continue
            if len(scratch.adds) + len(scratch.removes) > self.overlay_limit:
                contexts[key] = _fold_context(
                    scratch, key, self.namespaces
                )
                folded += 1
            else:
                contexts[key] = _ContextState(
                    scratch.base,
                    freeze(scratch.adds),
                    frozenset(scratch.removes),
                    scratch.size,
                )
        new_state = _State(
            generation, contexts, state.union_size + union_delta, None
        )
        return (new_state, effective, seg_counts,
                union_added, union_removed, folded)

    # -- durability operations ------------------------------------------
    def checkpoint(self) -> Path:
        """Write a snapshot of the head and reset the WAL.

        Commits are blocked for the duration so no committed batch can
        fall between the snapshot and the log reset; the snapshot write
        is atomic (tmp + fsync + rename), and the WAL is only reset
        *after* the snapshot is safely in place."""
        if self.directory is None or self._wal is None:
            raise StoreError(
                "checkpoint() requires a durable store (directory=...)"
            )
        with get_tracer().span(
            "store.checkpoint", {"store": self.name}
        ):
            with self._commit_lock:
                state = self._state
                lines = [
                    serialize_quad((s, p, o, key))
                    for key, cs in state.contexts.items()
                    for s, p, o in _context_triples(
                        cs, (None, None, None)
                    )
                ]
                # File IO under the commit lock is deliberate — see the
                # docstring; writers are paused, readers unaffected.
                # The clock reads bracketing it are nanosecond-cheap.
                snap_began = time.perf_counter()  # cc: allow=CC003
                path = write_snapshot(
                    self.directory, state.generation, lines
                )
                snap_took = (
                    time.perf_counter() - snap_began  # cc: allow=CC003
                )
                # bounded file op on our own WAL handle; commits must
                # stay blocked until the log matching the snapshot is
                # empty
                self._wal.reset()  # cc: allow=CC003
                self._ops_since_checkpoint = 0
            _observe_checkpoint(self, snap_took)
        return path

    def compact(self) -> dict:
        """Fold all overlays, checkpoint, and prune old snapshots.

        Returns a summary dict (folded contexts, pruned files, the
        snapshot written). In-memory stores fold overlays only."""
        folded = 0
        with self._commit_lock:
            state = self._state
            contexts: Dict[ContextKey, _ContextState] = {}
            for key, cs in state.contexts.items():
                if cs.overlay == 0:
                    contexts[key] = cs
                    continue
                scratch = _Working(cs, key, self.namespaces)
                contexts[key] = _fold_context(
                    scratch, key, self.namespaces
                )
                folded += 1
            # same generation, same content — readers are unaffected
            self._state = _State(
                state.generation, contexts, state.union_size, state.stats
            )
        summary = {
            "store": self.name,
            "generation": self.generation,
            "folded_contexts": folded,
            "snapshot": None,
            "pruned": [],
        }
        if self.directory is not None:
            path = self.checkpoint()
            summary["snapshot"] = str(path)
            summary["pruned"] = [
                str(p)
                for p in prune_snapshots(self.directory, self.generation)
            ]
        if folded:
            _observe_fold(self, folded)
        return summary

    # -- statistics ------------------------------------------------------
    def statistics(self):
        """Planner statistics for the current head, generation-cached."""
        from ..analysis.stats import GraphStatistics

        return GraphStatistics.cached(self.head())

    # -- dataset interop -------------------------------------------------
    def sync_dataset(self, dataset: Dataset) -> int:
        """Commit the delta that makes this store equal ``dataset``.

        One generation for the whole reconciliation; unchanged quads
        cost nothing. Returns the resulting generation."""
        desired: Dict[ContextKey, Set[Triple]] = {
            None: set(dataset.default.triples())
        }
        for graph in dataset.graphs():
            key = _as_context(graph.identifier)
            desired[key] = set(graph.triples())
        batch = WriteBatch()
        state = self._state  # cc: allow=CC001 (atomic reference read)
        for key, cs in state.contexts.items():
            want = desired.get(key, set())
            for triple in _context_triples(cs, (None, None, None)):
                if triple not in want:
                    batch.ops.append((OP_REMOVE, triple, key))
        for key, want in desired.items():
            cs = state.contexts.get(key)
            for triple in sorted(want):
                if cs is None or not _context_visible(cs, triple):
                    batch.ops.append((OP_ADD, triple, key))
        return self.commit(batch)

    # -- admin -----------------------------------------------------------
    def info(self) -> dict:
        state = self._state  # cc: allow=CC001 (atomic reference read)
        overlay = sum(cs.overlay for cs in state.contexts.values())
        data = {
            "name": self.name,
            "directory": (
                str(self.directory) if self.directory is not None else None
            ),
            "generation": state.generation,
            "quads": sum(cs.size for cs in state.contexts.values()),
            "union_triples": state.union_size,
            "contexts": {
                (str(key) if key is not None else "default"): cs.size
                for key, cs in state.contexts.items()
            },
            "overlay_ops": overlay,
            "overlay_limit": self.overlay_limit,
            "statistics_cached": state.stats is not None,
        }
        if self.directory is not None and self._wal is not None:
            data["wal"] = {
                "path": str(self._wal.path),
                "bytes": self._wal.size(),
                "records_this_session": self._wal.records,
                "sync": self._wal.sync,
            }
            data["snapshots"] = [
                {"generation": generation, "path": str(path),
                 "bytes": path.stat().st_size}
                for generation, path in snapshot_files(self.directory)
            ]
        data["checkpoint_policy"] = self.checkpoint_policy.as_dict()
        if self._checkpointer is not None:
            data["auto_checkpoint"] = self._checkpointer.stats()
        data["group_commit"] = (
            self._group.stats() if self._group is not None else None
        )
        if self.recovery is not None:
            data["recovery"] = self.recovery.as_dict()
        return data

    def wait_for_checkpoints(self, timeout: float = 10.0) -> bool:
        """Block until no automatic checkpoint is due or running.

        ``True`` immediately for explicit-only stores. Tests and the
        CLI use this to observe a settled WAL; commits arriving while
        waiting can re-arm the policy and extend the wait."""
        if self._checkpointer is None:
            return True
        return self._checkpointer.wait_until_idle(timeout)

    def close(self) -> None:
        # stop the checkpointer first: it may be mid-checkpoint and
        # needs the WAL alive to reset it
        if self._checkpointer is not None:
            self._checkpointer.close()
            self._checkpointer = None
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "QuadStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuadStore({self.name!r}, generation={self.generation}, "
            f"quads={self.size})"
        )


def is_quad_store(obj: Any) -> bool:
    """Duck-typed check used by consumers that must not import this
    package eagerly (the evaluator — see the import-cycle note there)."""
    return (
        hasattr(obj, "head")
        and hasattr(obj, "commit")
        and hasattr(obj, "dataset_snapshot")
    )


# ---------------------------------------------------------------------
# state construction helpers (kept free of len()+write straddles so the
# effects analyzer can see reads and writes in separate functions)
# ---------------------------------------------------------------------
def _fold_context(
    scratch: _Working, key: ContextKey, namespaces: NamespaceManager
) -> _ContextState:
    """Materialize base+overlay into a fresh base with an empty overlay."""
    identifier = key if key is not None else DEFAULT_GRAPH_IRI
    fresh = Graph(identifier, namespaces)
    visible = [
        triple
        for triple in scratch.base.triples()
        if triple not in scratch.removes
    ]
    fresh.add_all(visible)
    fresh.add_all(list(scratch.adds.triples()))
    return _ContextState(
        freeze(fresh),
        Graph(identifier, namespaces),
        frozenset(),
        scratch.size,
    )


def _publish_bases(
    bases: Dict[ContextKey, Graph], generation: int
) -> _State:
    """Freeze freshly built base graphs into a published state."""
    contexts: Dict[ContextKey, _ContextState] = {}
    for key, graph in bases.items():
        size = len(graph)
        if size == 0:
            continue
        contexts[key] = _ContextState(
            freeze(graph),
            Graph(graph.identifier, graph.namespaces),
            frozenset(),
            size,
        )
    if len(contexts) <= 1:
        union_size = sum(cs.size for cs in contexts.values())
    else:
        union: Set[Triple] = set()
        for cs in contexts.values():
            union.update(cs.base.triples())
        union_size = len(union)
    return _State(generation, contexts, union_size, None)


def _maintain_stats(
    old: _State,
    new: _State,
    union_added: List[Triple],
    union_removed: List[Triple],
) -> None:
    """Carry planner statistics across a commit incrementally."""
    stats = old.stats
    if stats is None or stats.fingerprint != old.generation:
        return  # nothing cached (or stale): rebuilt lazily on demand
    before = _StateView(old)
    after = _StateView(new)
    new.stats = stats.apply_delta(
        union_added,
        union_removed,
        before,
        after,
        fingerprint=new.generation,
    )


class _StateView:
    """Minimal union-membership probe over a state (for stats deltas)."""

    __slots__ = ("_state",)

    def __init__(self, state: _State) -> None:
        self._state = state

    def __contains__(self, triple: Triple) -> bool:
        return any(
            _context_visible(cs, triple)
            for cs in self._state.contexts.values()
        )

    def triples(
        self, pattern: TriplePattern = (None, None, None)
    ) -> Iterator[Triple]:
        contexts = list(self._state.contexts.values())
        if len(contexts) == 1:
            yield from _context_triples(contexts[0], pattern)
            return
        seen: Set[Triple] = set()
        for cs in contexts:
            for triple in _context_triples(cs, pattern):
                if triple not in seen:
                    seen.add(triple)
                    yield triple


# ---------------------------------------------------------------------
# metrics (emitted outside the commit lock)
# ---------------------------------------------------------------------
def _observe_generation(store: QuadStore) -> None:
    get_registry().gauge(
        "repro_store_generation",
        "Current generation of each quad store",
    ).labels(store=store.name).set(store.generation)


def _observe_commit(
    store: QuadStore,
    ops: int,
    wal_bytes: int,
    folded: int,
    wal_seconds: float = 0.0,
    fsync_seconds: float = 0.0,
) -> None:
    registry = get_registry()
    labels = {"store": store.name}
    registry.counter(
        "repro_store_commits_total",
        "Committed write batches per store",
    ).labels(**labels).inc()
    registry.counter(
        "repro_store_committed_ops_total",
        "Effective quad ops committed per store",
    ).labels(**labels).inc(ops)
    if wal_bytes:
        registry.counter(
            "repro_store_wal_records_total",
            "WAL records appended per store",
        ).labels(**labels).inc()
        registry.counter(
            "repro_store_wal_bytes_total",
            "WAL bytes appended per store",
        ).labels(**labels).inc(wal_bytes)
        registry.histogram(
            "repro_store_wal_append_seconds",
            "WAL append latency per commit (serialize + write + flush)",
        ).labels(**labels).observe(wal_seconds)
        if fsync_seconds:
            registry.histogram(
                "repro_store_wal_fsync_seconds",
                "fsync share of each WAL append (sync=True stores)",
            ).labels(**labels).observe(fsync_seconds)
    if folded:
        _observe_fold(store, folded)
    _observe_generation(store)


def _observe_fold(store: QuadStore, folded: int) -> None:
    get_registry().counter(
        "repro_store_compactions_total",
        "Context overlays folded into fresh bases per store",
    ).labels(store=store.name).inc(folded)


def _observe_checkpoint(
    store: QuadStore, snapshot_seconds: float = 0.0
) -> None:
    registry = get_registry()
    registry.counter(
        "repro_store_checkpoints_total",
        "Snapshot checkpoints written per store",
    ).labels(store=store.name).inc()
    if snapshot_seconds:
        registry.histogram(
            "repro_store_snapshot_write_seconds",
            "Snapshot file write latency per checkpoint",
        ).labels(store=store.name).observe(snapshot_seconds)


def _observe_auto_checkpoint(
    store: QuadStore, *, failed: bool, seconds: float = 0.0
) -> None:
    outcome = "error" if failed else "ok"
    registry = get_registry()
    registry.counter(
        "repro_store_auto_checkpoints_total",
        "Policy-triggered background checkpoints per store and outcome",
    ).labels(store=store.name, outcome=outcome).inc()
    registry.histogram(
        "repro_store_checkpoint_seconds",
        "Background checkpointer run duration per store and outcome",
    ).labels(store=store.name, outcome=outcome).observe(seconds)


def _observe_group_commit(store: QuadStore, group_size: int) -> None:
    registry = get_registry()
    labels = {"store": store.name}
    registry.counter(
        "repro_store_group_commit_groups_total",
        "Group commits flushed per store",
    ).labels(**labels).inc()
    if group_size > 1:
        registry.counter(
            "repro_store_group_commit_batched_total",
            "Submissions that shared another submitter's WAL flush",
        ).labels(**labels).inc(group_size - 1)
    registry.histogram(
        "repro_store_group_batch_size",
        "Submissions coalesced into each group commit",
        buckets=(1, 2, 4, 8, 16, 32, 64, 128),
    ).labels(**labels).observe(group_size)


def _observe_group_flush(
    store: QuadStore,
    seconds: float,
    role: str = "leader",
    wait_seconds: float = 0.0,
) -> None:
    registry = get_registry()
    labels = {"store": store.name, "role": role}
    registry.histogram(
        "repro_store_flush_seconds",
        "Group-commit latency per submitted batch (queue wait + flush)",
    ).labels(**labels).observe(seconds)
    registry.histogram(
        "repro_store_group_wait_seconds",
        "Queue wait before each submission's flush began, by role",
    ).labels(**labels).observe(wait_seconds)


def _observe_recovery(store: QuadStore) -> None:
    report = store.recovery
    if report is None:
        return
    registry = get_registry()
    labels = {"store": store.name}
    registry.counter(
        "repro_store_recoveries_total",
        "Store opens that replayed durable state",
    ).labels(**labels).inc()
    if report.torn_bytes:
        registry.counter(
            "repro_store_torn_bytes_total",
            "WAL bytes discarded as torn tails during recovery",
        ).labels(**labels).inc(report.torn_bytes)
    registry.counter(
        "repro_store_replayed_ops_total",
        "WAL ops replayed during recovery",
    ).labels(**labels).inc(report.ops_replayed)
